#include "analysis/lint.h"

#include <algorithm>
#include <string>
#include <unordered_set>
#include <vector>

#include "analysis/static_xred.h"

namespace motsim {

namespace {

bool is_logic_gate(GateType t) noexcept {
  return !is_frame_input(t);
}

/// Extracts one concrete combinational cycle, given the set of nodes
/// Kahn's algorithm could not order. Every such node has at least one
/// combinational fanin that is also unordered, so walking unordered
/// fanins must revisit a node; the segment between the two visits is a
/// cycle.
std::vector<NodeIndex> extract_cycle(const Netlist& nl, NodeIndex start,
                                     const std::vector<std::uint8_t>& ordered) {
  std::vector<NodeIndex> path;
  std::vector<std::uint32_t> visited_at(nl.node_count(), kNoNode);
  NodeIndex cur = start;
  while (visited_at[cur] == kNoNode) {
    visited_at[cur] = static_cast<std::uint32_t>(path.size());
    path.push_back(cur);
    NodeIndex next = kNoNode;
    for (NodeIndex f : nl.gate(cur).fanins) {
      if (f != kNoNode && ordered[f] == 0 && !is_frame_input(nl.type(f))) {
        next = f;
        break;
      }
    }
    if (next == kNoNode) return {};  // cannot happen on a true cycle set
    cur = next;
  }
  path.erase(path.begin(), path.begin() + visited_at[cur]);
  std::reverse(path.begin(), path.end());  // fanin walk goes against edges
  return path;
}

}  // namespace

DiagnosticReport run_lint(const Netlist& nl) {
  DiagnosticReport report(nl.name());
  const std::size_t count = nl.node_count();

  // ---- undriven pins (errors) ---------------------------------------
  for (NodeIndex n = 0; n < count; ++n) {
    if (!is_logic_gate(nl.type(n)) && nl.type(n) != GateType::Dff) continue;
    const auto& fanins = nl.gate(n).fanins;
    if (fanins.empty()) {
      report.add(nl, "lint.undriven-pin", Severity::Error, n,
                 std::string(to_cstring(nl.type(n))) + " gate has no fanins");
      continue;
    }
    for (std::size_t pin = 0; pin < fanins.size(); ++pin) {
      if (fanins[pin] == kNoNode) {
        report.add(nl, "lint.undriven-pin", Severity::Error, n,
                   "input pin " + std::to_string(pin) + " is undriven");
      }
    }
  }

  // ---- combinational cycles (error), via local Kahn ordering --------
  // indegree counts combinational dependencies only: DFFs consume
  // their D through a frame boundary and never contribute an edge.
  std::vector<std::uint32_t> indegree(count, 0);
  for (NodeIndex n = 0; n < count; ++n) {
    if (!is_logic_gate(nl.type(n))) continue;
    for (NodeIndex f : nl.gate(n).fanins) {
      if (f != kNoNode) ++indegree[n];
    }
  }
  // Local fanout view (finalize() may not have run).
  std::vector<std::vector<NodeIndex>> sinks(count);
  for (NodeIndex n = 0; n < count; ++n) {
    for (NodeIndex f : nl.gate(n).fanins) {
      if (f != kNoNode) sinks[f].push_back(n);
    }
  }
  std::vector<NodeIndex> topo;
  topo.reserve(count);
  std::vector<std::uint8_t> ordered(count, 0);
  for (NodeIndex n = 0; n < count; ++n) {
    if (indegree[n] == 0) {
      topo.push_back(n);
      ordered[n] = 1;
    }
  }
  for (std::size_t head = 0; head < topo.size(); ++head) {
    for (NodeIndex s : sinks[topo[head]]) {
      if (is_logic_gate(nl.type(s)) && --indegree[s] == 0) {
        topo.push_back(s);
        ordered[s] = 1;
      }
    }
  }
  if (topo.size() < count) {
    NodeIndex witness = kNoNode;
    for (NodeIndex n = 0; n < count; ++n) {
      if (ordered[n] == 0) {
        witness = n;
        break;
      }
    }
    const std::vector<NodeIndex> cycle = extract_cycle(nl, witness, ordered);
    std::string names;
    for (NodeIndex n : cycle) {
      if (!names.empty()) names += " -> ";
      names += nl.gate(n).name;
    }
    report.add(nl, "lint.comb-cycle", Severity::Error,
               cycle.empty() ? witness : cycle.front(),
               "combinational cycle: " + names);
  }

  // ---- floating inputs and dangling nets (warnings) -----------------
  for (NodeIndex n = 0; n < count; ++n) {
    if (!sinks[n].empty() || nl.is_output(n)) continue;
    if (nl.type(n) == GateType::Input) {
      report.add(nl, "lint.floating-input", Severity::Warning, n,
                 "primary input drives nothing");
    } else {
      report.add(nl, "lint.dangling-net", Severity::Warning, n,
                 "net has no sink and is not an output");
    }
  }

  // ---- unobservable cones (warnings) --------------------------------
  // Backward reachability from {POs} ∪ {DFFs}, same seeds as
  // StaticXRedAnalysis (a value is observed at an output or via the
  // state it leaves in a flip-flop).
  std::vector<std::uint8_t> observable(count, 0);
  std::vector<NodeIndex> stack;
  auto seed = [&](NodeIndex n) {
    if (observable[n] == 0) {
      observable[n] = 1;
      stack.push_back(n);
    }
  };
  for (NodeIndex n : nl.outputs()) seed(n);
  for (NodeIndex n : nl.dffs()) seed(n);
  while (!stack.empty()) {
    const NodeIndex n = stack.back();
    stack.pop_back();
    for (NodeIndex f : nl.gate(n).fanins) {
      if (f != kNoNode) seed(f);
    }
  }
  for (NodeIndex n = 0; n < count; ++n) {
    if (observable[n] == 0) {
      report.add(nl, "lint.unobservable", Severity::Warning, n,
                 "no output or flip-flop is reachable from this node");
    }
  }

  // ---- constant-propagating gates (warnings) ------------------------
  const std::vector<ConstVal> consts = structural_constants(nl, topo);
  for (NodeIndex n = 0; n < count; ++n) {
    if (!is_logic_gate(nl.type(n)) || consts[n] == ConstVal::Unknown) {
      continue;
    }
    report.add(nl, "lint.const-gate", Severity::Warning, n,
               std::string("gate output is structurally constant ") +
                   (consts[n] == ConstVal::One ? "1" : "0"));
  }

  // ---- duplicate fanins (warnings) ----------------------------------
  for (NodeIndex n = 0; n < count; ++n) {
    const auto& fanins = nl.gate(n).fanins;
    std::unordered_set<NodeIndex> fanin_set;
    for (NodeIndex f : fanins) {
      if (f == kNoNode) continue;
      if (!fanin_set.insert(f).second) {
        const bool parity =
            nl.type(n) == GateType::Xor || nl.type(n) == GateType::Xnor;
        report.add(nl, "lint.duplicate-fanin", Severity::Warning, n,
                   parity ? "same net feeds two pins of a parity gate "
                            "(output constant for binary inputs)"
                          : "same net feeds two pins");
        break;
      }
    }
  }

  return report;
}

}  // namespace motsim
