#ifndef MOTSIM_ANALYSIS_IMPLICATION_H
#define MOTSIM_ANALYSIS_IMPLICATION_H

#include <cstdint>
#include <vector>

#include "analysis/cone.h"
#include "analysis/static_xred.h"
#include "circuit/netlist.h"
#include "faults/fault.h"

namespace motsim {

/// Counters of what the static implication engine derived.
struct ImplicationStats {
  /// Pairwise direct implication sites of the netlist (2 per pin of an
  /// AND/NAND/OR/NOR gate, 4 per BUF/NOT, none for XOR/XNOR).
  std::size_t direct_implications = 0;
  /// Indirect implications discovered by static learning and stored as
  /// contrapositive edges (SOCRATES-style).
  std::size_t learned_implications = 0;
  /// Every-frame constants found by plain structural propagation.
  std::size_t structural_constants = 0;
  /// Every-frame constants found only by conflict learning (assuming
  /// the opposite value is frame-locally contradictory).
  std::size_t learned_constants = 0;
  /// Nets that are not every-frame constant but provably settle to a
  /// binary value from some frame on (cross-flip-flop propagation).
  std::size_t settled_constants = 0;
};

/// A net that provably carries one binary value from `from_frame`
/// (1-based) on, for every initial state and every input sequence.
/// Unknown value means "never proven to settle".
struct SettledConst {
  ConstVal value = ConstVal::Unknown;
  std::uint32_t from_frame = 0;
};

/// Extends a sound every-frame-constant vector across flip-flop
/// boundaries into settled constants: a flip-flop whose D input is
/// provably constant v from frame k carries v from frame k + 1 on (its
/// power-up value stays unconstrained), and constants re-propagate
/// combinationally to a fixpoint. Every-frame constants settle at
/// frame 1. Sound for any sound `constants` input — structural or
/// implication-learned — and shared by the ImplicationEngine and the
/// trimming pass (analysis/trim.h).
[[nodiscard]] std::vector<SettledConst> settle_constants(
    const Netlist& netlist, const std::vector<ConstVal>& constants);

/// Static implication engine over the gate-level netlist.
///
/// All implications are *frame-local*: they are derived from the gate
/// functions alone, treating every frame input (primary input or
/// flip-flop output) as a free variable, so a derived fact holds in
/// every frame of every three-valued or symbolic simulation — in
/// particular in frame 1 under the unknown power-up state. Three
/// layers are computed at construction:
///
///  1. direct implications — the per-gate forward and backward unit
///     rules (controlling values, forced side inputs, parity);
///  2. learned indirect implications — SOCRATES-style static learning:
///     for every literal l the engine propagates l to a fixpoint and
///     stores the contrapositive (not-m implies not-l) of every
///     indirectly derived literal m, making later propagations more
///     complete (the contrapositive law);
///  3. a constant-propagation fixpoint — a literal whose assumption is
///     frame-locally contradictory proves the opposite value is an
///     every-frame constant; learned constants feed back into further
///     learning until nothing changes. Every-frame constants are then
///     extended *across flip-flop boundaries* into settled constants
///     (a flip-flop whose D input is constant v carries v from frame 2
///     on), which are reported but never used for pruning: under the
///     unknown power-up state a flip-flop output is never every-frame
///     constant, so only internal nets are ever tied or assumed.
///
/// On top of the implication layers the engine performs FIRE-style
/// fault-independent untestability identification
/// (is_static_untestable / classify): a stuck-at fault whose mandatory
/// activation assignment is contradictory, whose site has no
/// structural path to any primary output across any number of frames,
/// or whose effect is provably blocked by constant or implied
/// controlling side inputs outside the fault's own sequential cone, is
/// untestable by *any* input sequence under every observation
/// strategy (FaultStatus::StaticUntestable). docs/ANALYSIS.md carries
/// the soundness argument for each rule.
///
/// The engine is immutable after construction but keeps internal
/// scratch state for queries, so it is NOT thread-safe; use one
/// instance per thread. Requires a finalized netlist.
class ImplicationEngine {
 public:
  explicit ImplicationEngine(const Netlist& netlist);

  /// Every-frame constants per node (structural + conflict-learned).
  /// Frame inputs other than constant sources are always Unknown.
  [[nodiscard]] const std::vector<ConstVal>& constants() const noexcept {
    return const_;
  }

  /// Every-frame constants restricted to internal (non-frame-input)
  /// nets — the set the symbolic engines may tie to constant OBDDs
  /// (see SymTrueValueSim::set_tied_constants). Entries for frame
  /// inputs and constant sources are Unknown.
  [[nodiscard]] std::vector<ConstVal> tied_constants() const;

  /// Number of internal nets tied_constants() would tie.
  [[nodiscard]] std::size_t tied_constant_count() const noexcept {
    return tied_count_;
  }

  /// Settled constants per node (see SettledConst). An every-frame
  /// constant settles at frame 1.
  [[nodiscard]] const std::vector<SettledConst>& settled() const noexcept {
    return settled_;
  }

  [[nodiscard]] const ImplicationStats& stats() const noexcept {
    return stats_;
  }

  /// Frame-local implication query: does assuming node a = av force
  /// node b = bv (over direct rules, learned edges and constants)?
  /// A contradictory assumption implies everything (vacuous truth).
  [[nodiscard]] bool implies(NodeIndex a, bool av, NodeIndex b,
                             bool bv) const;

  /// True when assuming node = value is frame-locally contradictory —
  /// i.e. the opposite value is an every-frame constant (possibly
  /// only derivable through learned implications).
  [[nodiscard]] bool contradicts(NodeIndex node, bool value) const;

  /// True when no input sequence whatsoever can detect `fault` under
  /// any observation strategy (nor under three-valued simulation).
  [[nodiscard]] bool is_static_untestable(const Fault& fault) const;

  /// Upgrades every Undetected entry whose fault is statically
  /// untestable to StaticUntestable; other entries (including
  /// StaticXRed) are left untouched. `status` must be aligned with
  /// `faults`. Returns the number of upgraded entries.
  std::size_t classify(const std::vector<Fault>& faults,
                       std::vector<FaultStatus>& status) const;

  [[nodiscard]] const Netlist& netlist() const noexcept { return *netlist_; }

 private:
  static constexpr std::uint32_t lit(NodeIndex n, bool v) noexcept {
    return 2 * n + (v ? 1u : 0u);
  }

  /// -1 unknown, else 0/1 (scratch assignment overlaid on constants).
  [[nodiscard]] int value_of(NodeIndex n) const;
  bool assign(NodeIndex n, int v) const;
  bool examine_gate(NodeIndex h) const;
  bool drain() const;
  /// Clears the scratch assignment and propagates one assumption to a
  /// fixpoint; false = frame-local conflict. The assignment stays
  /// readable through value_of until the next propagate call.
  bool propagate(NodeIndex n, bool v) const;

  void count_direct_implications();
  void run_static_learning();
  void compute_settled();
  void compute_po_cone();

  /// Sequential forward reach of divergence from `origin`'s output net
  /// (through gates and flip-flops); results readable via in_r0.
  void compute_r0(NodeIndex origin) const;
  [[nodiscard]] bool in_r0(NodeIndex n) const;
  /// True when gate h, entered via pin p, is forced by a side input
  /// outside the fault cone (constant or implied controlling value
  /// under the current propagate() assignment).
  [[nodiscard]] bool gate_blocked(NodeIndex h, std::uint32_t p,
                                  bool use_assignment) const;
  /// Constant-blocked refined reachability: can divergence entering at
  /// `origin` (via `origin_pin` when the origin is a gate crossing)
  /// ever reach a primary output, with edges through permanently
  /// forced gates removed? R0 must be current (compute_r0).
  [[nodiscard]] bool refined_reaches_po(NodeIndex origin,
                                        std::uint32_t origin_pin) const;

  const Netlist* netlist_;
  std::vector<ConstVal> const_;
  std::vector<SettledConst> settled_;
  std::vector<std::vector<std::uint32_t>> learned_;  ///< per literal
  std::vector<std::uint8_t> po_cone_;  ///< net can reach a PO (any frame)
  bool has_const_blockers_ = false;
  std::size_t tied_count_ = 0;
  ImplicationStats stats_;

  // Scratch (epoch-stamped so queries never pay a full clear). R0
  // fault cones run through the shared cone kernel; the refined (R1)
  // walk stays hand-rolled because its edges are guarded per pin.
  mutable std::vector<std::uint32_t> epoch_of_;
  mutable std::vector<std::uint8_t> val_;
  mutable std::vector<NodeIndex> queue_;
  mutable std::uint32_t epoch_ = 0;
  mutable ConeWalker cone_;
  mutable std::vector<std::uint32_t> r1_epoch_;
  mutable std::uint32_t r1_gen_ = 0;
};

}  // namespace motsim

#endif  // MOTSIM_ANALYSIS_IMPLICATION_H
