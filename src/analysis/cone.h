#ifndef MOTSIM_ANALYSIS_CONE_H
#define MOTSIM_ANALYSIS_CONE_H

#include <cstdint>
#include <initializer_list>
#include <vector>

#include "circuit/netlist.h"
#include "faults/fault.h"

namespace motsim {

/// Direction of a structural reach over the netlist graph.
enum class ConeDir : std::uint8_t {
  Forward,   ///< follow fanouts (cone of influence)
  Backward,  ///< follow fanins (support cone)
};

/// Single shared BFS/reach implementation over a CSR-flattened view of
/// the netlist graph. Every cone-style walk in the analysis layer
/// (static X-redundancy observability, the implication engine's PO
/// cone and R0 fault cones, the trimming pass's per-fault cones) runs
/// through this one kernel, so the DFF-crossing conventions live in
/// exactly one place.
///
/// The adjacency is built once at construction; each run() is an
/// epoch-stamped BFS, so repeated queries (one per fault) never pay a
/// full clear. Not thread-safe — use one walker per thread.
class ConeWalker {
 public:
  explicit ConeWalker(const Netlist& netlist);

  /// Marks everything reachable from `seeds` (seeds included) in the
  /// given direction. `cross_dffs` controls sequential depth: true
  /// walks straight through flip-flops (reach over ANY number of
  /// frames — a forward walk continues from a DFF's Q output, a
  /// backward walk descends into its D input); false stops at the
  /// flip-flop boundary (the DFF node itself is still marked — it is
  /// the frame's observation/support point). Invalid (kNoNode) seeds
  /// are ignored.
  void run(ConeDir dir, const NodeIndex* seeds, std::size_t count,
           bool cross_dffs = true);
  void run(ConeDir dir, std::initializer_list<NodeIndex> seeds,
           bool cross_dffs = true) {
    run(dir, seeds.begin(), seeds.size(), cross_dffs);
  }
  void run(ConeDir dir, const std::vector<NodeIndex>& seeds,
           bool cross_dffs = true) {
    run(dir, seeds.data(), seeds.size(), cross_dffs);
  }

  /// True when `node` was reached by the most recent run().
  [[nodiscard]] bool reached(NodeIndex node) const {
    return mark_[node] == gen_;
  }

  /// Nodes reached by the most recent run(), in visit order (the seeds
  /// first). Valid until the next run().
  [[nodiscard]] const std::vector<NodeIndex>& visited() const noexcept {
    return visited_;
  }

  [[nodiscard]] const Netlist& netlist() const noexcept { return *netlist_; }

 private:
  const Netlist* netlist_;
  // CSR adjacency, one flattened edge array per direction.
  std::vector<std::uint32_t> fwd_offset_;
  std::vector<NodeIndex> fwd_edges_;
  std::vector<std::uint32_t> bwd_offset_;
  std::vector<NodeIndex> bwd_edges_;
  std::vector<std::uint32_t> mark_;  ///< epoch stamps, no per-run clear
  std::uint32_t gen_ = 0;
  std::vector<NodeIndex> visited_;
};

/// Per-fault cone-of-influence summary (docs/ANALYSIS.md, trimming
/// pass). All reaches cross flip-flop boundaries, so the counts answer
/// "over any number of frames".
struct ConeSummary {
  /// Nodes forward-reachable from the divergence origin (origin
  /// included).
  std::size_t forward_size = 0;
  /// Nodes in the backward support of the activation net.
  std::size_t support_size = 0;
  /// Primary outputs the divergence can structurally reach.
  std::size_t outputs_reached = 0;
  /// Flip-flops the divergence can structurally reach.
  std::size_t dffs_reached = 0;
  /// Order-independent FNV-1a hash of the reached observation set
  /// (output positions then flip-flop positions): faults with equal
  /// signatures share their cone of influence on every observation
  /// point, which is what makes them profitable shard-mates.
  std::uint64_t signature = 0;
};

/// One cluster of faults sharing a cone-of-influence signature.
struct ConeCluster {
  std::uint64_t signature = 0;
  /// Indices into the fault list handed to cluster_faults, in their
  /// original order.
  std::vector<std::size_t> fault_indices;
  /// Representative cone summary (every member reaches the same
  /// observation set; sizes are the first member's).
  ConeSummary summary;
};

/// Static per-fault cone analysis: forward cone of influence, backward
/// support, and signature-based clustering. Deterministic — a pure
/// function of the netlist and the fault list. Not thread-safe (one
/// walker inside); use one instance per thread.
class ConeAnalysis {
 public:
  explicit ConeAnalysis(const Netlist& netlist);

  /// Cone summary of one fault (see ConeSummary).
  [[nodiscard]] ConeSummary fault_cone(const Fault& fault);

  /// Groups `faults` by cone signature. Clusters are ordered by first
  /// occurrence in the fault list; members keep their original order.
  [[nodiscard]] std::vector<ConeCluster> cluster_faults(
      const std::vector<Fault>& faults);

 private:
  const Netlist* netlist_;
  ConeWalker walker_;
};

/// The node whose fault-free value is the fault's activation function:
/// the faulted net itself for a stem fault, the driving net for a
/// branch fault (the branch copies the driver's fault-free value). A
/// frame activates the fault exactly when this net's fault-free value
/// differs from the stuck value. kNoNode when the site is malformed
/// (out-of-range pin or missing driver).
[[nodiscard]] NodeIndex activation_node(const Netlist& netlist,
                                        const Fault& fault);

/// Reorders the `live` fault indices so faults sharing a cone of
/// influence become shard neighbours: clusters keep their
/// first-occurrence order and members their relative order, so the
/// result is a pure function of (netlist, faults, live) — never of
/// thread count or scheduling. Used by ParallelSymSim's cluster-aware
/// shard assignment (docs/DESIGN.md).
[[nodiscard]] std::vector<std::size_t> cluster_live_order(
    const Netlist& netlist, const std::vector<Fault>& faults,
    const std::vector<std::size_t>& live);

}  // namespace motsim

#endif  // MOTSIM_ANALYSIS_CONE_H
