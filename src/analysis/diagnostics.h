#ifndef MOTSIM_ANALYSIS_DIAGNOSTICS_H
#define MOTSIM_ANALYSIS_DIAGNOSTICS_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "circuit/netlist.h"
#include "util/expected.h"

namespace motsim {

/// Severity of a static-analysis finding. Notes are informational
/// facts (e.g. static X-redundancy annotations), warnings mark
/// suspicious-but-simulatable structure, errors mark structure no
/// simulator can run (combinational cycles, undriven pins).
enum class Severity : std::uint8_t {
  Note,
  Warning,
  Error,
};

/// Printable mnemonic ("note", "warning", "error").
[[nodiscard]] const char* to_cstring(Severity s) noexcept;

/// One static-analysis finding.
///
/// `id` is a stable dotted identifier from the catalog in
/// docs/ANALYSIS.md (e.g. "lint.dangling-net") — scripts filter on it,
/// never on the free-form `message`. `node` anchors the finding
/// (kNoNode for circuit-level findings); `name` is the anchored node's
/// name, captured eagerly so a Diagnostic outlives its Netlist.
struct Diagnostic {
  std::string id;
  Severity severity = Severity::Warning;
  NodeIndex node = kNoNode;
  std::string name;
  std::string message;

  friend bool operator==(const Diagnostic&, const Diagnostic&) = default;
};

/// Ordered collector of one analysis run's findings over one circuit,
/// with text and JSON renderers. Passes append through add(); the CLI
/// maps worst_severity() to its exit code (0 clean — notes allowed —
/// 1 warnings, 2 errors).
class DiagnosticReport {
 public:
  DiagnosticReport() = default;
  explicit DiagnosticReport(std::string circuit)
      : circuit_(std::move(circuit)) {}

  /// Appends a finding; the node name is looked up in `netlist`
  /// (pass kNoNode for circuit-level findings).
  void add(const Netlist& netlist, std::string id, Severity severity,
           NodeIndex node, std::string message);

  /// Appends a fully spelled-out finding (used by from_json and tests).
  void add(Diagnostic diagnostic);

  [[nodiscard]] const std::string& circuit() const noexcept {
    return circuit_;
  }
  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const noexcept {
    return diagnostics_;
  }

  /// True when no finding of any severity was recorded.
  [[nodiscard]] bool clean() const noexcept { return diagnostics_.empty(); }

  [[nodiscard]] std::size_t count(Severity s) const noexcept;

  /// True if any finding carries the given id.
  [[nodiscard]] bool has(std::string_view id) const noexcept;

  /// Nodes of every finding with the given id, in report order.
  [[nodiscard]] std::vector<NodeIndex> nodes_with(std::string_view id) const;

  /// Severity-based process exit code: 2 if any error, 1 if any
  /// warning (and no error), 0 otherwise — notes never fail a run.
  [[nodiscard]] int exit_code() const noexcept;

  /// One "severity[id] name: message" line per finding plus a summary
  /// line, prefixed with the circuit name.
  [[nodiscard]] std::string to_text() const;

  /// Multi-line JSON document:
  ///   {"circuit": ..., "counts": {"errors": n, "warnings": n,
  ///    "notes": n}, "diagnostics": [{"id": ..., "severity": ...,
  ///    "node": ..., "name": ..., "message": ...}, ...]}
  [[nodiscard]] std::string to_json() const;

  /// Inverse of to_json(): parses a rendered report back (unknown keys
  /// are ignored, key order is free). to_json() -> from_json() is the
  /// identity; see test_analysis.cpp.
  [[nodiscard]] static Expected<DiagnosticReport, std::string> from_json(
      const std::string& text);

  friend bool operator==(const DiagnosticReport&,
                         const DiagnosticReport&) = default;

 private:
  std::string circuit_;
  std::vector<Diagnostic> diagnostics_;
};

}  // namespace motsim

#endif  // MOTSIM_ANALYSIS_DIAGNOSTICS_H
