#include "sim3/parallel_fault_sim3.h"

#include <stdexcept>

#include "sim3/good_sim3.h"

namespace motsim {

namespace {

/// Applies a stem force: the forced slots are overwritten, all other
/// slots keep their computed value.
PackedVal3 apply_force(PackedVal3 value, PackedVal3 force) {
  const std::uint64_t mask = force.ones | force.zeros;
  return {(value.ones & ~mask) | force.ones,
          (value.zeros & ~mask) | force.zeros};
}

/// Evaluates one gate over packed operands. `get(i)` returns operand i
/// (already including any branch-fault override).
template <typename Getter>
PackedVal3 eval_gate_packed(GateType type, std::size_t arity, Getter get) {
  switch (type) {
    case GateType::Const0:
      return broadcast(Val3::Zero);
    case GateType::Const1:
      return broadcast(Val3::One);
    case GateType::Buf:
      return get(0);
    case GateType::Not:
      return pnot(get(0));
    case GateType::And:
    case GateType::Nand: {
      PackedVal3 acc = broadcast(Val3::One);
      for (std::size_t i = 0; i < arity; ++i) acc = pand(acc, get(i));
      return type == GateType::Nand ? pnot(acc) : acc;
    }
    case GateType::Or:
    case GateType::Nor: {
      PackedVal3 acc = broadcast(Val3::Zero);
      for (std::size_t i = 0; i < arity; ++i) acc = por(acc, get(i));
      return type == GateType::Nor ? pnot(acc) : acc;
    }
    case GateType::Xor:
    case GateType::Xnor: {
      PackedVal3 acc = broadcast(Val3::Zero);
      for (std::size_t i = 0; i < arity; ++i) acc = pxor(acc, get(i));
      return type == GateType::Xnor ? pnot(acc) : acc;
    }
    default:
      throw std::logic_error("eval_gate_packed: not a combinational gate");
  }
}

}  // namespace

ParallelFaultSim3::ParallelFaultSim3(const Netlist& netlist,
                                     std::vector<Fault> faults)
    : netlist_(&netlist),
      faults_(std::move(faults)),
      initial_status_(faults_.size(), FaultStatus::Undetected) {
  if (!netlist.finalized()) {
    throw std::logic_error("ParallelFaultSim3 requires a finalized netlist");
  }
}

void ParallelFaultSim3::set_initial_status(std::vector<FaultStatus> status) {
  if (status.size() != faults_.size()) {
    throw std::invalid_argument("set_initial_status: wrong size");
  }
  initial_status_ = std::move(status);
}

FaultSim3Result ParallelFaultSim3::run(
    const std::vector<std::vector<Val3>>& sequence) {
  const Netlist& nl = *netlist_;

  FaultSim3Result result;
  result.status = initial_status_;
  result.detect_frame.assign(faults_.size(), 0);

  // Build groups of up to 64 live faults, with the per-slot forcing
  // masks precomputed.
  std::vector<Group> groups;
  Group current;
  auto flush = [&] {
    if (!current.members.empty()) {
      groups.push_back(std::move(current));
      current = Group{};
    }
  };
  for (std::size_t i = 0; i < faults_.size(); ++i) {
    if (initial_status_[i] != FaultStatus::Undetected) continue;
    const unsigned slot = static_cast<unsigned>(current.members.size());
    const Fault& f = faults_[i];
    const std::uint64_t bit = std::uint64_t{1} << slot;
    const PackedVal3 force =
        f.stuck_value ? PackedVal3{bit, 0} : PackedVal3{0, bit};
    if (f.site.is_stem()) {
      current.stem_forces.emplace_back(f.site.node, force);
    } else if (nl.type(f.site.node) == GateType::Dff) {
      current.latch_forces.emplace_back(nl.dff_position(f.site.node),
                                        force);
    } else {
      current.branch_forces.emplace_back(
          f.site.node, BranchForce{f.site.pin, force.ones, force.zeros});
    }
    current.members.push_back(i);
    if (current.members.size() == 64) flush();
  }
  flush();
  result.simulated_faults = 0;
  for (const Group& g : groups) result.simulated_faults += g.members.size();

  for (const Group& group : groups) {
    simulate_group(group, sequence, result);
  }
  result.detected_count = 0;
  for (FaultStatus s : result.status) {
    result.detected_count += (s == FaultStatus::DetectedSim3);
  }
  return result;
}

void ParallelFaultSim3::simulate_group(
    const Group& group, const std::vector<std::vector<Val3>>& sequence,
    FaultSim3Result& result) {
  const Netlist& nl = *netlist_;
  const std::size_t width = group.members.size();
  const std::uint64_t full_mask =
      width == 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << width) - 1);

  // Per-node force lookup tables for this group (dense; built once).
  std::vector<PackedVal3> stem_force(nl.node_count());
  std::vector<std::uint8_t> has_stem(nl.node_count(), 0);
  std::vector<std::vector<BranchForce>> branch_force(nl.node_count());
  for (const auto& [node, force] : group.stem_forces) {
    // Both polarities of one stem can sit in the same group (distinct
    // slots); merge their disjoint masks.
    stem_force[node].ones |= force.ones;
    stem_force[node].zeros |= force.zeros;
    has_stem[node] = 1;
  }
  for (const auto& [node, force] : group.branch_forces) {
    branch_force[node].push_back(force);
  }

  GoodSim3 good(nl);
  std::vector<PackedVal3> values(nl.node_count());
  std::vector<PackedVal3> state(nl.dff_count());  // all-X start

  std::uint64_t alive = full_mask;

  for (std::size_t t = 0; t < sequence.size() && alive != 0; ++t) {
    good.step(sequence[t]);

    // Frame inputs.
    for (std::size_t i = 0; i < nl.input_count(); ++i) {
      const NodeIndex n = nl.inputs()[i];
      PackedVal3 v = broadcast(sequence[t][i]);
      if (has_stem[n]) v = apply_force(v, stem_force[n]);
      values[n] = v;
    }
    for (std::size_t i = 0; i < nl.dff_count(); ++i) {
      const NodeIndex n = nl.dffs()[i];
      PackedVal3 v = state[i];
      if (has_stem[n]) v = apply_force(v, stem_force[n]);
      values[n] = v;
    }

    // Combinational evaluation.
    for (NodeIndex n : nl.topo_order()) {
      const Gate& g = nl.gate(n);
      if (is_frame_input(g.type)) {
        if (g.type == GateType::Const0 || g.type == GateType::Const1) {
          PackedVal3 v = broadcast(
              g.type == GateType::Const1 ? Val3::One : Val3::Zero);
          if (has_stem[n]) v = apply_force(v, stem_force[n]);
          values[n] = v;
        }
        continue;
      }
      const auto& overrides = branch_force[n];
      PackedVal3 v = eval_gate_packed(
          g.type, g.fanins.size(), [&](std::size_t i) {
            PackedVal3 in = values[g.fanins[i]];
            for (const BranchForce& bf : overrides) {
              if (bf.pin == i) {
                in = apply_force(in, PackedVal3{bf.ones, bf.zeros});
              }
            }
            return in;
          });
      if (has_stem[n]) v = apply_force(v, stem_force[n]);
      values[n] = v;
    }

    // Detection: a slot is caught when some primary output has a
    // binary fault-free value and the opposite binary slot value.
    for (NodeIndex po : nl.outputs()) {
      const Val3 gv = good.values()[po];
      if (!is_binary(gv)) continue;
      const std::uint64_t caught =
          (gv == Val3::One ? values[po].zeros : values[po].ones) & alive;
      if (caught == 0) continue;
      for (unsigned slot = 0; slot < width; ++slot) {
        if (caught & (std::uint64_t{1} << slot)) {
          const std::size_t fi = group.members[slot];
          result.status[fi] = FaultStatus::DetectedSim3;
          result.detect_frame[fi] = static_cast<std::uint32_t>(t + 1);
        }
      }
      alive &= ~caught;
      if (alive == 0) break;
    }

    // Latch, including DFF D-pin branch forces.
    for (std::size_t i = 0; i < nl.dff_count(); ++i) {
      const NodeIndex d = nl.gate(nl.dffs()[i]).fanins[0];
      state[i] = values[d];
    }
    for (const auto& [pos, force] : group.latch_forces) {
      state[pos] = apply_force(state[pos], force);
    }
  }
}

}  // namespace motsim
