#include "sim3/levelized.h"

#include <algorithm>
#include <stdexcept>

namespace motsim {

LevelizedCircuit::LevelizedCircuit(const Netlist& netlist)
    : netlist_(&netlist) {
  if (!netlist.finalized()) {
    throw std::logic_error("LevelizedCircuit requires a finalized netlist");
  }

  inputs_ = netlist.inputs();
  dffs_ = netlist.dffs();
  outputs_ = netlist.outputs();
  dff_d_.reserve(dffs_.size());
  for (NodeIndex dff : dffs_) dff_d_.push_back(netlist.gate(dff).fanins[0]);

  // The netlist's topo_order is only path-monotone in level, not
  // globally sorted (Kahn with a LIFO ready stack interleaves cones),
  // so sort the combinational nodes by level explicitly: every gate of
  // level L depends only on levels < L, which makes the level-sorted
  // order a valid evaluation order and each level a contiguous run.
  std::vector<NodeIndex> order;
  order.reserve(netlist.node_count());
  for (NodeIndex n : netlist.topo_order()) {
    const Gate& g = netlist.gate(n);
    if (is_frame_input(g.type)) {
      if (g.type == GateType::Const0) consts_.emplace_back(n, Val3::Zero);
      if (g.type == GateType::Const1) consts_.emplace_back(n, Val3::One);
      continue;
    }
    order.push_back(n);
  }
  // Within a level gates are independent, so group them by opcode as a
  // secondary key: the packed kernel's dispatch then sees long runs of
  // the same operation instead of a branch-unfriendly mix.
  std::stable_sort(order.begin(), order.end(),
                   [&netlist](NodeIndex a, NodeIndex b) {
                     const std::uint32_t la = netlist.level(a);
                     const std::uint32_t lb = netlist.level(b);
                     if (la != lb) return la < lb;
                     return netlist.type(a) < netlist.type(b);
                   });

  gates_.reserve(order.size());
  std::uint32_t current_level = 0;
  level_offsets_.push_back(0);
  for (NodeIndex n : order) {
    const Gate& g = netlist.gate(n);
    // Record each level boundary as it passes (a level may contribute
    // no gates, e.g. pure-DFF levels).
    const std::uint32_t lvl = netlist.level(n);
    while (current_level < lvl) {
      level_offsets_.push_back(static_cast<std::uint32_t>(gates_.size()));
      ++current_level;
    }
    LevGate lg;
    lg.op = g.type;
    lg.arity = static_cast<std::uint16_t>(g.fanins.size());
    lg.node = n;
    if (lg.arity > 2) {
      lg.in0 = static_cast<std::uint32_t>(fanins_.size());
      fanins_.insert(fanins_.end(), g.fanins.begin(), g.fanins.end());
    } else {
      if (lg.arity >= 1) {
        lg.in0 = g.fanins[0];
        lg.in1 = lg.arity == 2 ? g.fanins[1] : g.fanins[0];
      }
      switch (g.type) {  // two-input Kleene-AND polarity form
        case GateType::And:
        case GateType::Buf:
          lg.and_form = kAndFormValid;
          break;
        case GateType::Nand:
        case GateType::Not:
          lg.and_form = kAndFormValid | kAndFormInvOut;
          break;
        case GateType::Or:
          lg.and_form =
              kAndFormValid | kAndFormInvIn0 | kAndFormInvIn1 | kAndFormInvOut;
          break;
        case GateType::Nor:
          lg.and_form = kAndFormValid | kAndFormInvIn0 | kAndFormInvIn1;
          break;
        default:  // Xor/Xnor (or arity 0): opcode switch
          break;
      }
      if (lg.arity == 0) lg.and_form = 0;
    }
    gates_.push_back(lg);
  }
  level_offsets_.push_back(static_cast<std::uint32_t>(gates_.size()));

  // Inverse map (node -> driving gate) and CSR fanout adjacency, both
  // over compiled gate indices; the sparse kernels schedule through
  // these.
  const auto for_each_fanin = [this](const LevGate& g, auto&& fn) {
    if (g.arity > 2) {
      for (std::uint32_t p = 0; p < g.arity; ++p) fn(fanins_[g.in0 + p]);
    } else {
      if (g.arity >= 1) fn(g.in0);
      if (g.arity == 2) fn(g.in1);
    }
  };
  gate_of_.assign(netlist.node_count(), kNoGate);
  for (std::size_t i = 0; i < gates_.size(); ++i) {
    gate_of_[gates_[i].node] = static_cast<std::uint32_t>(i);
  }
  fanout_offsets_.assign(netlist.node_count() + 1, 0);
  std::size_t edge_count = 0;
  for (const LevGate& g : gates_) {
    for_each_fanin(g, [&](NodeIndex f) {
      ++fanout_offsets_[f + 1];
      ++edge_count;
    });
  }
  for (std::size_t n = 1; n < fanout_offsets_.size(); ++n) {
    fanout_offsets_[n] += fanout_offsets_[n - 1];
  }
  fanout_gates_.resize(edge_count);
  std::vector<std::uint32_t> cursor(fanout_offsets_.begin(),
                                    fanout_offsets_.end() - 1);
  for (std::size_t i = 0; i < gates_.size(); ++i) {
    for_each_fanin(gates_[i], [&](NodeIndex f) {
      fanout_gates_[cursor[f]++] = static_cast<std::uint32_t>(i);
    });
  }
}

}  // namespace motsim
