#include "sim3/ndetect.h"

#include <stdexcept>

#include "sim3/fault_sim3.h"
#include "sim3/good_sim3.h"

namespace motsim {

NDetectResult run_n_detect(const Netlist& nl,
                           const std::vector<Fault>& faults,
                           const TestSequence& sequence,
                           std::uint32_t n_required) {
  if (n_required == 0) {
    throw std::invalid_argument("run_n_detect: n_required must be >= 1");
  }

  NDetectResult result;
  result.detections.assign(faults.size(), 0);
  result.detection_frames.assign(faults.size(), {});

  FaultPropagator3 propagator(nl);
  struct Live {
    std::size_t index;
    StateDiff3 diff;
  };
  std::vector<Live> live;
  live.reserve(faults.size());
  for (std::size_t i = 0; i < faults.size(); ++i) live.push_back({i, {}});

  GoodSim3 good(nl);
  for (std::size_t t = 0; t < sequence.size() && !live.empty(); ++t) {
    good.step(sequence[t]);
    const std::vector<Val3>& values = good.values();
    const std::vector<Val3>& next = good.state();

    std::size_t keep = 0;
    for (std::size_t i = 0; i < live.size(); ++i) {
      Live& lf = live[i];
      // latch_even_if_detected keeps the faulty machine coherent so
      // later frames can score further observations.
      const bool observed =
          propagator.step(faults[lf.index], lf.diff, values, next,
                          /*latch_even_if_detected=*/true);
      if (observed) {
        auto& frames = result.detection_frames[lf.index];
        frames.push_back(static_cast<std::uint32_t>(t + 1));
        if (++result.detections[lf.index] >= n_required) {
          continue;  // fully N-detected: drop
        }
      }
      if (keep != i) live[keep] = std::move(live[i]);
      ++keep;
    }
    live.resize(keep);
  }

  for (std::uint32_t d : result.detections) {
    result.detected_once_count += (d > 0);
    result.n_detected_count += (d >= n_required);
  }
  return result;
}

}  // namespace motsim
