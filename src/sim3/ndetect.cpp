#include "sim3/ndetect.h"

#include <numeric>
#include <stdexcept>

namespace motsim {

NDetectResult run_n_detect(const Netlist& nl,
                           const std::vector<Fault>& faults,
                           const TestSequence& sequence,
                           std::uint32_t n_required, Sim3Backend backend) {
  if (n_required == 0) {
    throw std::invalid_argument("run_n_detect: n_required must be >= 1");
  }

  NDetectResult result;
  result.detections.assign(faults.size(), 0);
  result.detection_frames.assign(faults.size(), {});

  // A window session from the all-X state, with the caller (not the
  // engine) deciding when a fault stops being observed: only after N
  // distinct detection frames.
  const std::unique_ptr<FaultSimulator3> sim =
      make_fault_simulator3(backend, nl, faults);
  std::vector<std::size_t> indices(faults.size());
  std::iota(indices.begin(), indices.end(), std::size_t{0});
  sim->begin_window(std::vector<Val3>(nl.dff_count(), Val3::X),
                    std::move(indices),
                    std::vector<StateDiff3>(faults.size()));

  for (std::size_t t = 0; t < sequence.size() && sim->window_live() != 0;
       ++t) {
    for (const std::uint32_t pos : sim->step_window(sequence[t])) {
      result.detection_frames[pos].push_back(static_cast<std::uint32_t>(t + 1));
      if (++result.detections[pos] >= n_required) {
        sim->drop_window_fault(pos);  // fully N-detected
      }
    }
  }
  sim->end_window();

  for (std::uint32_t d : result.detections) {
    result.detected_once_count += (d > 0);
    result.n_detected_count += (d >= n_required);
  }
  return result;
}

}  // namespace motsim
