#ifndef MOTSIM_SIM3_GOOD_SIM3_H
#define MOTSIM_SIM3_GOOD_SIM3_H

#include <memory>
#include <vector>

#include "circuit/netlist.h"
#include "logic/val3.h"
#include "sim3/levelized.h"

namespace motsim {

/// Evaluates one combinational gate in three-valued (Kleene) logic.
/// `get(i)` must return the value of input pin i.
template <typename Getter>
[[nodiscard]] Val3 eval_gate3(GateType type, std::size_t arity, Getter get) {
  switch (type) {
    case GateType::Const0:
      return Val3::Zero;
    case GateType::Const1:
      return Val3::One;
    case GateType::Buf:
      return get(0);
    case GateType::Not:
      return not3(get(0));
    case GateType::And:
    case GateType::Nand: {
      Val3 acc = Val3::One;
      for (std::size_t i = 0; i < arity; ++i) {
        acc = and3(acc, get(i));
        if (acc == Val3::Zero) break;  // controlling value
      }
      return type == GateType::Nand ? not3(acc) : acc;
    }
    case GateType::Or:
    case GateType::Nor: {
      Val3 acc = Val3::Zero;
      for (std::size_t i = 0; i < arity; ++i) {
        acc = or3(acc, get(i));
        if (acc == Val3::One) break;  // controlling value
      }
      return type == GateType::Nor ? not3(acc) : acc;
    }
    case GateType::Xor:
    case GateType::Xnor: {
      Val3 acc = Val3::Zero;
      for (std::size_t i = 0; i < arity; ++i) acc = xor3(acc, get(i));
      return type == GateType::Xnor ? not3(acc) : acc;
    }
    default:
      return Val3::X;  // frame inputs are never evaluated here
  }
}

/// Convenience overload over a materialized operand vector.
[[nodiscard]] Val3 eval_gate3(GateType type, const std::vector<Val3>& ins);

/// Three-valued true-value (fault-free) simulator.
///
/// The machine starts in the all-X state (the paper's unknown initial
/// state); step() applies one input vector, evaluates the
/// combinational network over a precomputed levelized gate order
/// (LevelizedCircuit — one flat sweep, no per-event dispatch), latches
/// the next state and returns the primary output values.
///
/// Copies share the compiled circuit, so snapshotting a machine for a
/// trial simulation (tpg/compaction) stays cheap.
class GoodSim3 {
 public:
  explicit GoodSim3(const Netlist& netlist, Val3 initial = Val3::X);

  /// Shares an already-compiled circuit (the bit-parallel engine's
  /// internal good machine uses this to avoid a second compilation).
  explicit GoodSim3(std::shared_ptr<const LevelizedCircuit> circuit,
                    Val3 initial = Val3::X);

  /// Overrides the present state (one value per flip-flop, in
  /// Netlist::dffs() order).
  void set_state(std::vector<Val3> state);
  [[nodiscard]] const std::vector<Val3>& state() const noexcept {
    return state_;
  }

  /// Applies one input vector (one value per primary input, in
  /// Netlist::inputs() order); returns the primary output values.
  std::vector<Val3> step(const std::vector<Val3>& inputs);

  /// Per-node values of the most recent frame (valid after step()).
  [[nodiscard]] const std::vector<Val3>& values() const noexcept {
    return values_;
  }

  /// Output values of the most recent frame.
  [[nodiscard]] std::vector<Val3> outputs() const;

  [[nodiscard]] const Netlist& netlist() const noexcept {
    return circuit_->netlist();
  }
  [[nodiscard]] const std::shared_ptr<const LevelizedCircuit>& circuit()
      const noexcept {
    return circuit_;
  }

 private:
  std::shared_ptr<const LevelizedCircuit> circuit_;
  std::vector<Val3> values_;  ///< per node, last frame
  std::vector<Val3> state_;   ///< per flip-flop (present state)
};

}  // namespace motsim

#endif  // MOTSIM_SIM3_GOOD_SIM3_H
