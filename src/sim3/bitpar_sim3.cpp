#include "sim3/bitpar_sim3.h"

#include <algorithm>
#include <bit>
#include <optional>
#include <stdexcept>

#include "obs/telemetry.h"

namespace motsim {

namespace {

inline constexpr std::uint8_t kStemFlag = 1;
inline constexpr std::uint8_t kBranchFlag = 2;

/// Frames of fault-free trajectory snapshotted per campaign chunk:
/// bounds the fault-free value storage (one byte per node per frame)
/// while amortizing per-group scratch setup over many frames.
inline constexpr std::size_t kChunkFrames = 32;

/// Branchless broadcast for the hot kernel: the generic broadcast() is
/// a switch, this compiles to two compares. The fault-free side
/// channel is kept as one scalar byte per node (not a materialized
/// 16-byte plane), so the per-frame good row fits L1 and every fanin
/// load re-synthesizes the plane from registers.
[[nodiscard]] inline PackedVal3 bcast(Val3 v) {
  return {~std::uint64_t{0} + (v != Val3::One),
          ~std::uint64_t{0} + (v != Val3::Zero)};
}

}  // namespace

BitParFaultSim3::Scratch::Scratch(const LevelizedCircuit& lc)
    : nodes(lc.netlist().node_count()),
      sched((lc.gates().size() + 63) / 64, 0) {}

BitParFaultSim3::BitParFaultSim3(const Netlist& netlist,
                                 std::vector<Fault> faults,
                                 std::size_t threads)
    : FaultSimulator3(std::move(faults)),
      lc_(std::make_shared<const LevelizedCircuit>(netlist)),
      threads_(threads == 0 ? ThreadPool::default_thread_count() : threads),
      good_(lc_) {}

BitParFaultSim3::Group BitParFaultSim3::build_group(
    const std::size_t* fault_indices, std::size_t count) const {
  const Netlist& nl = lc_->netlist();
  Group grp;
  grp.members.assign(fault_indices, fault_indices + count);
  grp.full_mask = count == kPackedSlots
                      ? ~std::uint64_t{0}
                      : ((std::uint64_t{1} << count) - 1);
  grp.alive = grp.full_mask;
  grp.flags.assign(nl.node_count(), 0);

  for (unsigned slot = 0; slot < count; ++slot) {
    const Fault& f = faults_[fault_indices[slot]];
    const std::uint64_t bit = std::uint64_t{1} << slot;
    const PackedVal3 force =
        f.stuck_value ? PackedVal3{bit, 0} : PackedVal3{0, bit};
    if (f.site.is_stem()) {
      // Both polarities of one stem can sit in the same group
      // (distinct slots); merge their disjoint masks.
      bool merged = false;
      for (auto& [node, existing] : grp.stem_forces) {
        if (node == f.site.node) {
          existing.ones |= force.ones;
          existing.zeros |= force.zeros;
          merged = true;
          break;
        }
      }
      if (!merged) grp.stem_forces.emplace_back(f.site.node, force);
      grp.flags[f.site.node] |= kStemFlag;
    } else if (nl.type(f.site.node) == GateType::Dff) {
      grp.latch_forces.emplace_back(nl.dff_position(f.site.node), force);
    } else {
      grp.branch_forces.emplace_back(f.site.node,
                                     BranchForce{f.site.pin, force});
      grp.flags[f.site.node] |= kBranchFlag;
    }
  }
  std::sort(grp.stem_forces.begin(), grp.stem_forces.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::sort(grp.branch_forces.begin(), grp.branch_forces.end(),
            [](const auto& a, const auto& b) {
              return a.first != b.first ? a.first < b.first
                                        : a.second.pin < b.second.pin;
            });

  // Compile the per-frame seed sets for the sparse kernel: stem forces
  // on frame inputs apply at load time; every injected compiled gate
  // is scheduled unconditionally each frame.
  const std::vector<std::uint32_t>& gate_of = lc_->gate_of();
  const std::size_t words = (lc_->gates().size() + 63) / 64;
  grp.stem_gate_bits.assign(words, 0);
  grp.branch_gate_bits.assign(words, 0);
  for (const auto& [node, force] : grp.stem_forces) {
    if (gate_of[node] != LevelizedCircuit::kNoGate) {
      const std::uint32_t gi = gate_of[node];
      grp.stem_gate_bits[gi >> 6] |= std::uint64_t{1} << (gi & 63);
      if (grp.flags[node] & kBranchFlag) {
        grp.seed_gates.push_back(gi);
      } else {
        grp.stem_gate_seeds.emplace_back(node, force);
      }
    } else if (nl.type(node) == GateType::Dff) {
      grp.stem_dff_forces.emplace_back(nl.dff_position(node), force);
    } else {
      grp.input_stem_forces.emplace_back(node, force);
    }
  }
  for (const auto& [node, bf] : grp.branch_forces) {
    const std::uint32_t gi = gate_of[node];
    grp.branch_gate_bits[gi >> 6] |= std::uint64_t{1} << (gi & 63);
    grp.seed_gates.push_back(gi);
  }
  std::sort(grp.seed_gates.begin(), grp.seed_gates.end());
  grp.seed_gates.erase(
      std::unique(grp.seed_gates.begin(), grp.seed_gates.end()),
      grp.seed_gates.end());
  return grp;
}

std::uint64_t BitParFaultSim3::eval_frame_sparse(const Group& grp,
                                                 const Val3* good,
                                                 std::uint64_t mask,
                                                 Scratch& s) const {
  const LevelizedCircuit& lc = *lc_;
  if (++s.epoch == 0) {  // stamp wrap-around: invalidate everything
    for (NodeSlot& sl : s.nodes) sl.stamp = 0;
    s.epoch = 1;
  }
  const std::uint32_t epoch = s.epoch;
  NodeSlot* nodes = s.nodes.data();
  std::uint64_t* sched = s.sched.data();

  // Branchless fallback: frontier gates mix divergent and fault-free
  // operands, so a conditional here mispredicts; a masked select of
  // the two planes is cheaper than the stalls.
  const auto load = [&](NodeIndex n) {
    const NodeSlot& sl = nodes[n];
    const std::uint64_t m = -static_cast<std::uint64_t>(sl.stamp == epoch);
    const PackedVal3 gv = bcast(good[n]);
    return PackedVal3{(sl.val.ones & m) | (gv.ones & ~m),
                      (sl.val.zeros & m) | (gv.zeros & ~m)};
  };
  // Pins the slots outside `mask` to the fault-free plane, then stores
  // the result only when it still diverges — equal planes stay
  // implicit, so nothing downstream wakes up. Scheduling a consumer is
  // one idempotent bit-set; the sweep below consumes the bits in level
  // order.
  const auto publish = [&](NodeIndex n, PackedVal3 v) {
    const PackedVal3 pg = bcast(good[n]);
    v.ones = (v.ones & mask) | (pg.ones & ~mask);
    v.zeros = (v.zeros & mask) | (pg.zeros & ~mask);
    if (v == pg) return;
    NodeSlot& sl = nodes[n];
    sl.val = v;
    sl.stamp = epoch;
    const auto [fo, fe] = lc.fanout_gates(n);
    for (const std::uint32_t* it = fo; it != fe; ++it) {
      sched[*it >> 6] |= std::uint64_t{1} << (*it & 63);
    }
  };
  const auto stem_of = [&](NodeIndex n) {
    const auto it = std::lower_bound(
        grp.stem_forces.begin(), grp.stem_forces.end(), n,
        [](const auto& a, NodeIndex key) { return a.first < key; });
    return it != grp.stem_forces.end() && it->first == n ? it->second
                                                         : PackedVal3{};
  };

  // Seed: dirty flip-flop planes (clean ones equal the fault-free
  // machine and are skipped), output-stem forces on clean flip-flops,
  // stem-forced primary inputs / constants, and the injected gates
  // themselves.
  for (std::size_t i = 0; i < lc.dffs().size(); ++i) {
    if (!grp.state_dirty[i]) continue;
    const NodeIndex n = lc.dffs()[i];
    PackedVal3 v = grp.state[i];
    if (grp.flags[n] & kStemFlag) v = apply_force(v, stem_of(n));
    publish(n, v);
  }
  for (const auto& [pos, force] : grp.stem_dff_forces) {
    if (grp.state_dirty[pos]) continue;  // force folded in above
    const NodeIndex n = lc.dffs()[pos];
    publish(n, apply_force(bcast(good[n]), force));
  }
  for (const auto& [n, force] : grp.input_stem_forces) {
    publish(n, apply_force(bcast(good[n]), force));
  }
  for (const auto& [n, force] : grp.stem_gate_seeds) {
    publish(n, apply_force(bcast(good[n]), force));
  }
  for (const std::uint32_t gi : grp.seed_gates) {
    sched[gi >> 6] |= std::uint64_t{1} << (gi & 63);
  }

  // Union-cone sweep over the pending bitset. The compiled order is
  // level-sorted and a gate only schedules gates of a strictly higher
  // level, hence a strictly greater index — so one ascending pass over
  // the words is enough, re-reading a word until it stays clean to
  // catch same-word wake-ups. Consuming every bit leaves the bitset
  // all-zero between frames.
  std::uint64_t words = 0;
  const LevGate* gates = lc.gates().data();
  const NodeIndex* fanins = lc.fanins().data();
  const std::size_t wcount = s.sched.size();
  for (std::size_t wi = 0; wi < wcount; ++wi) {
    std::uint64_t bits = sched[wi];
    if (bits != 0) {
      sched[wi] = 0;
      std::uint64_t pending = 0;
      const std::uint64_t stemw = grp.stem_gate_bits[wi];
      const std::uint64_t brw = grp.branch_gate_bits[wi];
      do {
        const unsigned k = static_cast<unsigned>(std::countr_zero(bits));
        const std::uint32_t gi = static_cast<std::uint32_t>((wi << 6) + k);
        bits &= bits - 1;
        const LevGate& g = gates[gi];
        PackedVal3 v;
        if ((brw >> k) & 1) [[unlikely]] {
          // Range of this gate's pin forces in the node-sorted list.
          const auto lo = std::lower_bound(
              grp.branch_forces.begin(), grp.branch_forces.end(), g.node,
              [](const auto& a, NodeIndex key) { return a.first < key; });
          const auto forced = [&](std::size_t i, PackedVal3 x) {
            for (auto it = lo;
                 it != grp.branch_forces.end() && it->first == g.node; ++it) {
              if (it->second.pin == i) x = apply_force(x, it->second.force);
            }
            return x;
          };
          if (g.arity <= 2) {
            v = eval_lev_gate<PackedOps>(g.op, g.arity, [&](std::size_t i) {
              return forced(i, load(i == 0 ? g.in0 : g.in1));
            });
          } else {
            const NodeIndex* in = fanins + g.in0;
            v = eval_lev_gate<PackedOps>(g.op, g.arity, [&](std::size_t i) {
              return forced(i, load(in[i]));
            });
          }
        } else if (g.and_form & kAndFormValid) {
          // Straight-line two-input Kleene AND under polarity masks —
          // no opcode dispatch. A Kleene complement of a packed plane
          // is a rail swap, done branchlessly as a masked xor-swap.
          const auto cnot = [](PackedVal3 x, std::uint64_t m) {
            const std::uint64_t t = (x.ones ^ x.zeros) & m;
            return PackedVal3{x.ones ^ t, x.zeros ^ t};
          };
          const std::uint8_t af = g.and_form;
          const PackedVal3 a = cnot(
              load(g.in0), -static_cast<std::uint64_t>(af & kAndFormInvIn0));
          const PackedVal3 b =
              cnot(load(g.in1),
                   -static_cast<std::uint64_t>((af & kAndFormInvIn1) != 0));
          v = cnot(PackedVal3{a.ones & b.ones, a.zeros | b.zeros},
                   -static_cast<std::uint64_t>((af & kAndFormInvOut) != 0));
        } else if (g.arity <= 2) {
          v = eval_lev_gate<PackedOps>(
              g.op, g.arity,
              [&](std::size_t i) { return load(i == 0 ? g.in0 : g.in1); });
        } else {
          const NodeIndex* in = fanins + g.in0;
          v = eval_lev_gate<PackedOps>(
              g.op, g.arity, [&](std::size_t i) { return load(in[i]); });
        }
        if ((stemw >> k) & 1) [[unlikely]] {
          v = apply_force(v, stem_of(g.node));
        }
        {
          // Branchless publish: the diverge-or-not pattern at the cone
          // frontier is data-dependent and mispredicts badly, so run
          // the store and the consumer bit-sets unconditionally and
          // neutralize them with a mask instead of branching. A stale
          // val under an old stamp is invisible, and OR-ing zero into
          // the schedule is a no-op.
          const NodeIndex n = g.node;
          const PackedVal3 pg = bcast(good[n]);
          v.ones = (v.ones & mask) | (pg.ones & ~mask);
          v.zeros = (v.zeros & mask) | (pg.zeros & ~mask);
          const bool diverges = !(v == pg);
          const std::uint64_t dm = -static_cast<std::uint64_t>(diverges);
          NodeSlot& sl = nodes[n];
          sl.val = v;
          sl.stamp = diverges ? epoch : sl.stamp;
          // Same-word consumers go to the `pending` register, not to
          // memory: re-reading sched[wi] here would chain every
          // iteration's branch on its own stores draining. Cross-word
          // consumers take the ordinary bit-set.
          const auto [fo, fe] = lc.fanout_gates(n);
          for (const std::uint32_t* it = fo; it != fe; ++it) {
            const std::uint32_t c = *it;
            const std::uint64_t b = (std::uint64_t{1} << (c & 63)) & dm;
            const std::uint64_t same =
                -static_cast<std::uint64_t>((c >> 6) == wi);
            sched[c >> 6] |= b & ~same;
            pending |= b & same;
          }
        }
        ++words;
        // Absorb same-word wake-ups: publish only schedules strictly
        // greater indices, so any pending bit is above `gi` and not
        // yet evaluated — merging keeps the pass ascending and every
        // gate evaluated exactly once per frame.
        bits |= pending;
        pending = 0;
      } while (bits != 0);
    }
  }
  return words;
}

void BitParFaultSim3::latch_group(Group& grp, const Val3* good,
                                  const Scratch& s) const {
  const LevelizedCircuit& lc = *lc_;
  const NodeIndex* dff_d = lc.dff_d().data();
  for (std::size_t i = 0; i < lc.dff_d().size(); ++i) {
    const NodeIndex d = dff_d[i];
    if (s.nodes[d].stamp == s.epoch) {
      grp.state[i] = s.nodes[d].val;
      grp.state_dirty[i] = 1;
    } else {
      // The D plane equals the fault-free one, so the latched state
      // does too: mark clean instead of storing it.
      grp.state_dirty[i] = 0;
    }
  }
  for (const auto& [pos, force] : grp.latch_forces) {
    const PackedVal3 base =
        grp.state_dirty[pos] ? grp.state[pos] : bcast(good[dff_d[pos]]);
    grp.state[pos] = apply_force(base, force);
    grp.state_dirty[pos] = 1;
  }
}

std::uint64_t BitParFaultSim3::simulate_frame(Group& grp, std::size_t t,
                                              const Val3* good,
                                              Scratch& scratch,
                                              FaultSim3Result& result) const {
  const LevelizedCircuit& lc = *lc_;
  const std::uint64_t words = eval_frame_sparse(grp, good, grp.alive, scratch);

  // Detection: a slot is caught when some primary output has a binary
  // fault-free value and the opposite binary slot value. An untouched
  // output plane equals the fault-free one and can never catch
  // anything.
  for (const NodeIndex po : lc.outputs()) {
    if (scratch.nodes[po].stamp != scratch.epoch) continue;
    std::uint64_t caught;
    if (good[po] == Val3::One) {
      caught = scratch.nodes[po].val.zeros & grp.alive;
    } else if (good[po] == Val3::Zero) {
      caught = scratch.nodes[po].val.ones & grp.alive;
    } else {
      continue;  // fault-free X: no observation
    }
    grp.alive &= ~caught;
    while (caught != 0) {
      const unsigned slot = static_cast<unsigned>(std::countr_zero(caught));
      caught &= caught - 1;
      const std::size_t fi = grp.members[slot];
      result.status[fi] = FaultStatus::DetectedSim3;
      result.detect_frame[fi] = static_cast<std::uint32_t>(t + 1);
    }
    if (grp.alive == 0) return words;
  }

  latch_group(grp, good, scratch);
  return words;
}

BitParFaultSim3::ChunkStats BitParFaultSim3::simulate_chunk(
    Group& grp, std::size_t base,
    const std::vector<std::vector<Val3>>& good_frames, Scratch& scratch,
    FaultSim3Result& result) const {
  ChunkStats stats;
  for (std::size_t f = 0; f < good_frames.size() && grp.alive != 0; ++f) {
    stats.words += simulate_frame(grp, base + f, good_frames[f].data(),
                                  scratch, result);
    ++stats.frames;
  }
  return stats;
}

FaultSim3Result BitParFaultSim3::run(
    const std::vector<std::vector<Val3>>& sequence) {
  const LevelizedCircuit& lc = *lc_;

  FaultSim3Result result;
  result.status = initial_status_;
  result.detect_frame.assign(faults_.size(), 0);

  // Group the live faults by cone locality: the netlist's topological
  // order is depth-first flavored, so it emits whole fanin cones
  // consecutively — packing faults whose sites are adjacent in that
  // order makes the 64 fault-effect cones of a group overlap, which
  // shrinks the union cone the sparse sweep has to evaluate. The key
  // depends only on circuit structure and the fault list, so the
  // partition stays reproducible for every thread count, and per-fault
  // results are independent of grouping entirely.
  std::vector<std::size_t> live;
  live.reserve(faults_.size());
  for (std::size_t i = 0; i < faults_.size(); ++i) {
    if (initial_status_[i] == FaultStatus::Undetected) live.push_back(i);
  }
  result.simulated_faults = live.size();
  {
    const auto& topo = lc.netlist().topo_order();
    std::vector<std::uint32_t> topo_pos(lc.netlist().node_count(), 0);
    for (std::uint32_t p = 0; p < topo.size(); ++p) topo_pos[topo[p]] = p;
    std::stable_sort(live.begin(), live.end(),
                     [&](std::size_t a, std::size_t b) {
                       return topo_pos[faults_[a].site.node] <
                              topo_pos[faults_[b].site.node];
                     });
  }

  std::vector<Group> groups;
  for (std::size_t at = 0; at < live.size(); at += kPackedSlots) {
    const std::size_t count = std::min<std::size_t>(kPackedSlots,
                                                    live.size() - at);
    groups.push_back(build_group(live.data() + at, count));
    groups.back().state.assign(lc.dffs().size(), PackedVal3{});  // all-X
    groups.back().state_dirty.assign(lc.dffs().size(), 1);
  }

  auto run_chunk = [&](Group& grp, std::size_t base,
                       const std::vector<std::vector<Val3>>& good_frames,
                       Scratch& scratch) {
    std::optional<obs::SpanTracer::Span> span;
    if (telemetry_ != nullptr) span = telemetry_->tracer.span("sim3.batch");
    const ChunkStats stats =
        simulate_chunk(grp, base, good_frames, scratch, result);
    if (telemetry_ != nullptr) {
      telemetry_->metrics.counter("sim3.words_evaluated").add(stats.words);
      telemetry_->metrics.counter("sim3.batches").add(1);
      telemetry_->metrics.counter("sim3.levels")
          .add(lc.level_count() * stats.frames);
    }
  };

  // One shared fault-free trajectory, snapshotted chunk by chunk as
  // scalar node values; the sparse kernel re-broadcasts them on the
  // fly, which keeps the per-frame good row at one byte per node.
  GoodSim3 good(lc_);
  std::vector<std::vector<Val3>> good_frames;
  std::optional<Scratch> serial_scratch;
  const std::size_t dff_count = lc.dffs().size();
  for (std::size_t base = 0; base < sequence.size(); base += kChunkFrames) {
    const std::size_t len =
        std::min<std::size_t>(kChunkFrames, sequence.size() - base);

    // Chunk-boundary compaction: once a whole group's worth of faults
    // has been detected, repack the survivors (same sorted order) into
    // fewer groups, migrating each fault's latch state slot by slot.
    // The boundary is a full barrier in both execution paths, and
    // per-fault results don't depend on grouping, so this changes
    // neither results nor their thread-count reproducibility.
    if (base != 0) {
      std::size_t still = 0;
      for (const std::size_t idx : live) {
        still += result.status[idx] == FaultStatus::Undetected ? 1 : 0;
      }
      if (live.size() - still >= kPackedSlots) {
        const std::vector<Val3>& gstate = good.state();
        std::vector<std::size_t> nlive;
        nlive.reserve(still);
        std::vector<Val3> snap;  // nlive-major, dff-minor
        snap.reserve(still * dff_count);
        for (const Group& grp : groups) {
          for (std::size_t s = 0; s < grp.members.size(); ++s) {
            const std::size_t idx = grp.members[s];
            if (result.status[idx] != FaultStatus::Undetected) continue;
            nlive.push_back(idx);
            for (std::size_t i = 0; i < dff_count; ++i) {
              snap.push_back(grp.state_dirty[i]
                                 ? slot_value(grp.state[i],
                                              static_cast<unsigned>(s))
                                 : gstate[i]);
            }
          }
        }
        groups.clear();
        for (std::size_t at = 0; at < nlive.size(); at += kPackedSlots) {
          const std::size_t count =
              std::min<std::size_t>(kPackedSlots, nlive.size() - at);
          Group grp = build_group(nlive.data() + at, count);
          grp.state.resize(dff_count);
          grp.state_dirty.assign(dff_count, 0);
          for (std::size_t i = 0; i < dff_count; ++i) {
            PackedVal3 p = broadcast(gstate[i]);
            bool dirty = false;
            for (std::size_t s = 0; s < count; ++s) {
              const Val3 v = snap[(at + s) * dff_count + i];
              if (v != gstate[i]) {
                set_slot(p, static_cast<unsigned>(s), v);
                dirty = true;
              }
            }
            grp.state[i] = p;
            grp.state_dirty[i] = dirty ? 1 : 0;
          }
          groups.push_back(std::move(grp));
        }
        live = std::move(nlive);
      }
    }
    good_frames.resize(len);
    for (std::size_t f = 0; f < len; ++f) {
      good.step(sequence[base + f]);
      good_frames[f] = good.values();
    }

    bool any_alive = false;
    if (threads_ > 1 && groups.size() > 1) {
      if (!pool_) pool_ = std::make_unique<ThreadPool>(threads_);
      for (Group& grp : groups) {
        if (grp.alive == 0) continue;
        any_alive = true;
        // Distinct groups write distinct result entries, so the tasks
        // never alias; telemetry counters are thread-safe.
        pool_->submit([&run_chunk, &grp, base, &good_frames, this] {
          Scratch scratch(*lc_);
          run_chunk(grp, base, good_frames, scratch);
        });
      }
      pool_->wait_idle();
    } else {
      // Serial path: frame-outer, group-inner — the fault-free plane
      // row and the scratch stay cache-resident across all groups
      // instead of re-streaming the whole chunk per group. Groups are
      // independent, so the visiting order cannot change results.
      if (!serial_scratch.has_value()) serial_scratch.emplace(lc);
      std::optional<obs::SpanTracer::Span> span;
      if (telemetry_ != nullptr) span = telemetry_->tracer.span("sim3.batch");
      std::uint64_t words = 0;
      std::uint64_t group_frames = 0;
      std::uint64_t batches = 0;
      for (const Group& grp : groups) batches += grp.alive != 0 ? 1 : 0;
      for (std::size_t f = 0; f < len; ++f) {
        const Val3* gvals = good_frames[f].data();
        for (Group& grp : groups) {
          if (grp.alive == 0) continue;
          any_alive = true;
          words += simulate_frame(grp, base + f, gvals, *serial_scratch,
                                  result);
          ++group_frames;
        }
      }
      if (telemetry_ != nullptr) {
        telemetry_->metrics.counter("sim3.words_evaluated").add(words);
        telemetry_->metrics.counter("sim3.batches").add(batches);
        telemetry_->metrics.counter("sim3.levels")
            .add(lc.level_count() * group_frames);
      }
    }
    if (!any_alive) break;
  }

  // Recount instead of accumulating per group: initial-status entries
  // other than Undetected were never simulated.
  for (std::size_t i = 0; i < faults_.size(); ++i) {
    if (initial_status_[i] == FaultStatus::Undetected &&
        result.status[i] == FaultStatus::DetectedSim3) {
      ++result.detected_count;
    }
  }
  return result;
}

void BitParFaultSim3::begin_window(const std::vector<Val3>& good_state,
                                   std::vector<std::size_t> fault_indices,
                                   std::vector<StateDiff3> diffs) {
  if (fault_indices.size() != diffs.size()) {
    throw std::invalid_argument("begin_window: indices/diffs mismatch");
  }
  good_.set_state(good_state);
  window_groups_.clear();
  window_size_ = fault_indices.size();
  window_live_ = window_size_;
  if (!window_scratch_) window_scratch_ = std::make_unique<Scratch>(*lc_);

  // Window position p lives in group p / 64, slot p % 64.
  for (std::size_t at = 0; at < fault_indices.size(); at += kPackedSlots) {
    const std::size_t count =
        std::min<std::size_t>(kPackedSlots, fault_indices.size() - at);
    Group grp = build_group(fault_indices.data() + at, count);
    grp.state.assign(lc_->dffs().size(), PackedVal3{});
    grp.state_dirty.assign(lc_->dffs().size(), 1);
    for (std::size_t d = 0; d < grp.state.size(); ++d) {
      grp.state[d] = broadcast(good_state[d]);
    }
    for (unsigned slot = 0; slot < count; ++slot) {
      for (const auto& [pos, v] : diffs[at + slot]) {
        set_slot(grp.state[pos], slot, v);
      }
    }
    window_groups_.push_back(std::move(grp));
  }
}

std::vector<std::uint32_t> BitParFaultSim3::step_window(
    const std::vector<Val3>& inputs) {
  good_.step(inputs);
  const Val3* gvals = good_.values().data();
  const LevelizedCircuit& lc = *lc_;
  Scratch& s = *window_scratch_;

  std::vector<std::uint32_t> observed;
  std::uint64_t words = 0;
  std::uint64_t frames = 0;
  for (std::size_t gi = 0; gi < window_groups_.size(); ++gi) {
    Group& grp = window_groups_[gi];
    std::optional<obs::SpanTracer::Span> span;
    if (telemetry_ != nullptr) span = telemetry_->tracer.span("sim3.batch");
    // Dropping only gates observation (grp.alive = not dropped): every
    // faulty machine keeps simulating exactly, so pass the full mask.
    words += eval_frame_sparse(grp, gvals, grp.full_mask, s);
    ++frames;

    std::uint64_t caught = 0;
    for (const NodeIndex po : lc.outputs()) {
      if (s.nodes[po].stamp != s.epoch) continue;
      if (gvals[po] == Val3::One) {
        caught |= s.nodes[po].val.zeros;
      } else if (gvals[po] == Val3::Zero) {
        caught |= s.nodes[po].val.ones;
      }
    }
    caught &= grp.alive;
    while (caught != 0) {
      const unsigned slot = static_cast<unsigned>(std::countr_zero(caught));
      caught &= caught - 1;
      observed.push_back(static_cast<std::uint32_t>(gi * kPackedSlots + slot));
    }

    latch_group(grp, gvals, s);
  }

  if (telemetry_ != nullptr) {
    telemetry_->metrics.counter("sim3.words_evaluated").add(words);
    telemetry_->metrics.counter("sim3.batches").add(window_groups_.size());
    telemetry_->metrics.counter("sim3.levels").add(lc.level_count() * frames);
  }
  return observed;
}

void BitParFaultSim3::drop_window_fault(std::uint32_t pos) {
  Group& grp = window_groups_[pos / kPackedSlots];
  const std::uint64_t bit = std::uint64_t{1} << (pos % kPackedSlots);
  if (grp.alive & bit) {
    grp.alive &= ~bit;
    --window_live_;
  }
}

bool BitParFaultSim3::window_fault_alive(std::uint32_t pos) const {
  const Group& grp = window_groups_[pos / kPackedSlots];
  return (grp.alive & (std::uint64_t{1} << (pos % kPackedSlots))) != 0;
}

StateDiff3 BitParFaultSim3::window_diff(std::uint32_t pos) const {
  const Group& grp = window_groups_[pos / kPackedSlots];
  const unsigned slot = pos % kPackedSlots;
  const std::vector<Val3>& good_state = good_.state();
  StateDiff3 diff;
  for (std::uint32_t d = 0; d < grp.state.size(); ++d) {
    if (!grp.state_dirty[d]) continue;  // clean: equals the good state
    const Val3 v = slot_value(grp.state[d], slot);
    if (v != good_state[d]) diff.emplace_back(d, v);
  }
  return diff;
}

void BitParFaultSim3::end_window() {
  window_groups_.clear();
  window_size_ = 0;
  window_live_ = 0;
}

}  // namespace motsim
