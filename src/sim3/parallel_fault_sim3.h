#ifndef MOTSIM_SIM3_PARALLEL_FAULT_SIM3_H
#define MOTSIM_SIM3_PARALLEL_FAULT_SIM3_H

#include <cstdint>
#include <vector>

#include "circuit/netlist.h"
#include "faults/fault.h"
#include "logic/val3.h"
#include "sim3/fault_sim3.h"

namespace motsim {

/// 64 three-valued values in two machine words ("two-rail" encoding):
/// bit i of `ones` set means slot i carries 1, bit i of `zeros` means
/// slot i carries 0, neither bit means X. The invariant
/// `ones & zeros == 0` holds for every well-formed pack.
struct PackedVal3 {
  std::uint64_t ones = 0;
  std::uint64_t zeros = 0;

  friend bool operator==(const PackedVal3&, const PackedVal3&) = default;
};

/// Slot-wise Kleene operations.
[[nodiscard]] constexpr PackedVal3 pand(PackedVal3 a, PackedVal3 b) {
  return {a.ones & b.ones, a.zeros | b.zeros};
}
[[nodiscard]] constexpr PackedVal3 por(PackedVal3 a, PackedVal3 b) {
  return {a.ones | b.ones, a.zeros & b.zeros};
}
[[nodiscard]] constexpr PackedVal3 pnot(PackedVal3 a) {
  return {a.zeros, a.ones};
}
[[nodiscard]] constexpr PackedVal3 pxor(PackedVal3 a, PackedVal3 b) {
  return {(a.ones & b.zeros) | (a.zeros & b.ones),
          (a.ones & b.ones) | (a.zeros & b.zeros)};
}

/// All 64 slots set to the same scalar value.
[[nodiscard]] constexpr PackedVal3 broadcast(Val3 v) {
  switch (v) {
    case Val3::Zero:
      return {0, ~std::uint64_t{0}};
    case Val3::One:
      return {~std::uint64_t{0}, 0};
    default:
      return {0, 0};
  }
}

/// Value of one slot.
[[nodiscard]] constexpr Val3 slot_value(PackedVal3 p, unsigned slot) {
  const std::uint64_t bit = std::uint64_t{1} << slot;
  if (p.ones & bit) return Val3::One;
  if (p.zeros & bit) return Val3::Zero;
  return Val3::X;
}

/// Bit-parallel ("PROOFS-style") three-valued fault simulator.
///
/// Packs up to 64 faulty machines into one pass: each bit slot of a
/// PackedVal3 word simulates one fault of the group, with the fault
/// permanently injected in its slot. Unlike the event-driven serial
/// simulator (FaultSim3), every frame evaluates the whole
/// combinational network once per group — the parallelism pays when
/// fault counts are large relative to circuit depth. Results
/// (detected set AND detection frames) are identical to FaultSim3;
/// bench/ablation_parallel_sim compares throughput.
///
/// Not part of the 1995 paper (its baseline is serial); provided as
/// the natural production optimization and as a cross-check oracle.
class ParallelFaultSim3 {
 public:
  ParallelFaultSim3(const Netlist& netlist, std::vector<Fault> faults);

  /// Pre-classifies faults; non-Undetected entries are not simulated.
  void set_initial_status(std::vector<FaultStatus> status);

  /// Simulates the sequence from the all-X initial state.
  [[nodiscard]] FaultSim3Result run(
      const std::vector<std::vector<Val3>>& sequence);

 private:
  struct BranchForce {
    std::uint32_t pin;
    std::uint64_t ones;
    std::uint64_t zeros;
  };
  struct Group {
    std::vector<std::size_t> members;  ///< fault indices (<= 64)
    /// Per-node output forcing masks (stem faults).
    std::vector<std::pair<NodeIndex, PackedVal3>> stem_forces;
    /// Per-node input-pin forcing masks (branch faults).
    std::vector<std::pair<NodeIndex, BranchForce>> branch_forces;
    /// Next-state forcing masks for DFF D-pin branch faults.
    std::vector<std::pair<std::uint32_t, PackedVal3>> latch_forces;
  };

  void simulate_group(const Group& group,
                      const std::vector<std::vector<Val3>>& sequence,
                      FaultSim3Result& result);

  const Netlist* netlist_;
  std::vector<Fault> faults_;
  std::vector<FaultStatus> initial_status_;
};

}  // namespace motsim

#endif  // MOTSIM_SIM3_PARALLEL_FAULT_SIM3_H
