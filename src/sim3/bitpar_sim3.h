#ifndef MOTSIM_SIM3_BITPAR_SIM3_H
#define MOTSIM_SIM3_BITPAR_SIM3_H

#include <cstdint>
#include <memory>
#include <vector>

#include "circuit/netlist.h"
#include "faults/fault.h"
#include "logic/packed_val3.h"
#include "logic/val3.h"
#include "sim3/fault_simulator.h"
#include "sim3/good_sim3.h"
#include "sim3/levelized.h"
#include "util/thread_pool.h"

namespace motsim {

/// Bit-parallel levelized three-valued fault simulator
/// (Sim3Backend::BitPar): the PPSFP engine.
///
/// Faults are packed into groups of up to 64; each bit slot of a
/// PackedVal3 plane simulates one faulty machine of the group, with
/// the fault permanently injected into its slot through forcing masks
/// (stem faults overwrite a node's output plane, branch faults
/// overwrite one input pin of one gate, DFF D-pin branch faults apply
/// at latch time). A node whose packed plane equals the broadcast
/// fault-free value is never stored: every frame seeds only the fault
/// sites and the flip-flops whose planes diverge from the good
/// machine, then propagates level by level through the fanout CSR of
/// the LevelizedCircuit — one union-cone sweep simulates 64 faulty
/// machines, instead of one event-driven cone per fault. Groups are
/// independent, so campaign runs batch them on a util/thread_pool
/// when configured with more than one worker.
///
/// Results — detected sets, FaultStatus, detect frames and next-state
/// divergences — are bit-identical to the event-driven reference
/// backend (FaultSim3) for every sequence, group packing and thread
/// count: the packed operations implement exact Kleene logic, the
/// group partition depends only on fault-list order, and result
/// writes of distinct groups never alias. bench/ablation_sim3_backends
/// enforces this; bench/sim3_microbench measures the speedup.
class BitParFaultSim3 final : public FaultSimulator3 {
 public:
  /// `threads` drives campaign-run group batching: 0 = hardware
  /// concurrency, 1 = serial (no pool).
  BitParFaultSim3(const Netlist& netlist, std::vector<Fault> faults,
                  std::size_t threads = 1);

  [[nodiscard]] Sim3Backend backend() const noexcept override {
    return Sim3Backend::BitPar;
  }

  [[nodiscard]] FaultSim3Result run(
      const std::vector<std::vector<Val3>>& sequence) override;

  void begin_window(const std::vector<Val3>& good_state,
                    std::vector<std::size_t> fault_indices,
                    std::vector<StateDiff3> diffs) override;
  [[nodiscard]] std::vector<std::uint32_t> step_window(
      const std::vector<Val3>& inputs) override;
  void drop_window_fault(std::uint32_t pos) override;
  [[nodiscard]] std::size_t window_live() const override {
    return window_live_;
  }
  [[nodiscard]] bool window_fault_alive(std::uint32_t pos) const override;
  [[nodiscard]] const std::vector<Val3>& window_state() const override {
    return good_.state();
  }
  [[nodiscard]] StateDiff3 window_diff(std::uint32_t pos) const override;
  void end_window() override;

  [[nodiscard]] const LevelizedCircuit& circuit() const noexcept {
    return *lc_;
  }

 private:
  /// One input-pin forcing mask of a branch fault.
  struct BranchForce {
    std::uint32_t pin;
    PackedVal3 force;
  };

  /// Up to 64 faults compiled into per-slot injection tables plus the
  /// packed sequential state of their faulty machines.
  struct Group {
    std::vector<std::size_t> members;  ///< fault indices, slot order
    std::uint64_t full_mask = 0;
    /// Per-node injection kind (node-indexed): bit 0 = stem force,
    /// bit 1 = branch force. The details live in the sparse lists,
    /// both sorted by node for range lookup during evaluation.
    std::vector<std::uint8_t> flags;
    std::vector<std::pair<NodeIndex, PackedVal3>> stem_forces;
    std::vector<std::pair<NodeIndex, BranchForce>> branch_forces;
    /// Next-state forcing masks for DFF D-pin branch faults.
    std::vector<std::pair<std::uint32_t, PackedVal3>> latch_forces;
    /// Stem forces on primary inputs / constants (frame-input seeds).
    std::vector<std::pair<NodeIndex, PackedVal3>> input_stem_forces;
    /// Stem forces on gates carrying no branch force: a stem overwrites
    /// the output, so the seed plane is the forced fault-free plane and
    /// the gate itself needs no evaluation (when inputs diverge the
    /// scheduled evaluation recomputes and re-publishes it).
    std::vector<std::pair<NodeIndex, PackedVal3>> stem_gate_seeds;
    /// Stem forces on flip-flop outputs as (dff position, force);
    /// seeded even when the flip-flop's plane is clean.
    std::vector<std::pair<std::uint32_t, PackedVal3>> stem_dff_forces;
    /// Compiled gates carrying an injection (stem or branch), sorted
    /// and deduplicated; scheduled unconditionally every frame so a
    /// fault re-injects even when none of its gate's inputs changed.
    std::vector<std::uint32_t> seed_gates;
    /// Gate-indexed mirrors of `flags`, one bit per compiled gate in
    /// the schedule-word layout: the sweep tests them against the
    /// schedule bit index directly, off the critical path of the gate
    /// record load.
    std::vector<std::uint64_t> stem_gate_bits;
    std::vector<std::uint64_t> branch_gate_bits;

    /// Per flip-flop planes — only valid where state_dirty is set; a
    /// clean flip-flop implicitly equals the fault-free machine, which
    /// is what lets the seed and latch loops skip it.
    std::vector<PackedVal3> state;
    std::vector<std::uint8_t> state_dirty;
    std::uint64_t alive = 0;  ///< not-detected (run) / not-dropped
  };

  /// One node's scratch record: the plane and its epoch stamp share a
  /// 32-byte block so a divergence check plus value read is one cache
  /// line instead of two arrays.
  struct alignas(32) NodeSlot {
    std::uint32_t stamp = 0;
    std::uint32_t pad_ = 0;
    PackedVal3 val;
  };

  /// Per-evaluation scratch of the sparse kernel. Epoch stamps make
  /// clearing O(1) per frame: a NodeSlot is only valid when its stamp
  /// equals the current epoch, everything else implicitly holds the
  /// broadcast fault-free plane. `sched` is one bit per compiled gate;
  /// the ascending sweep consumes and clears it, so it is all-zero
  /// between frames.
  struct Scratch {
    explicit Scratch(const LevelizedCircuit& lc);

    std::vector<NodeSlot> nodes;       ///< per node, epoch-guarded
    std::vector<std::uint64_t> sched;  ///< per gate pending bit
    std::uint32_t epoch = 0;
  };

  [[nodiscard]] Group build_group(const std::size_t* fault_indices,
                                  std::size_t count) const;
  /// Sparse frame evaluation: seeds the group's divergences against
  /// the fault-free values of this frame (`good`, one scalar per node
  /// — the kernel re-broadcasts on the fly, keeping the side channel a
  /// byte per node so it stays L1-resident), propagates level by level
  /// through the fanout CSR, and leaves the divergent planes
  /// epoch-stamped in `s`. Slots outside `mask` are pinned to the
  /// fault-free value before storing, so detected (campaign) or
  /// padding slots generate no activity. Returns the number of packed
  /// gate words evaluated.
  std::uint64_t eval_frame_sparse(const Group& group, const Val3* good,
                                  std::uint64_t mask, Scratch& s) const;
  /// Latches the planes left by the matching eval_frame_sparse()
  /// (untouched D-pins fall back to the fault-free plane).
  void latch_group(Group& group, const Val3* good, const Scratch& s) const;
  /// Campaign kernel for one group over one frame (index `t` in the
  /// sequence): sparse evaluation, SOT detection against the alive
  /// mask, then latching. Returns the packed gate words evaluated.
  /// The caller must not invoke this once `group.alive` is zero.
  std::uint64_t simulate_frame(Group& group, std::size_t t,
                               const Val3* good, Scratch& scratch,
                               FaultSim3Result& result) const;
  struct ChunkStats {
    std::uint64_t words = 0;   ///< packed gate words evaluated
    std::uint64_t frames = 0;  ///< frames advanced (early exit cuts short)
  };
  /// One group over one chunk of frames (`good_frames[f]` = fault-free
  /// node values of frame `base + f`) — the unit of thread-pool
  /// batching. The serial path instead sweeps frame-outer over all
  /// groups for cache locality; both orders visit the same
  /// (group, frame) cells, so results are identical.
  ChunkStats simulate_chunk(
      Group& group, std::size_t base,
      const std::vector<std::vector<Val3>>& good_frames,
      Scratch& scratch, FaultSim3Result& result) const;

  std::shared_ptr<const LevelizedCircuit> lc_;
  std::size_t threads_;
  std::unique_ptr<ThreadPool> pool_;

  // Window session state.
  GoodSim3 good_;
  std::vector<Group> window_groups_;
  std::unique_ptr<Scratch> window_scratch_;
  std::size_t window_size_ = 0;
  std::size_t window_live_ = 0;
};

}  // namespace motsim

#endif  // MOTSIM_SIM3_BITPAR_SIM3_H
