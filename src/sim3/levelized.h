#ifndef MOTSIM_SIM3_LEVELIZED_H
#define MOTSIM_SIM3_LEVELIZED_H

#include <cstdint>
#include <vector>

#include "circuit/netlist.h"
#include "logic/packed_val3.h"
#include "logic/val3.h"

namespace motsim {

/// One combinational gate of a LevelizedCircuit. 16 bytes, laid out so
/// the common case (arity <= 2, the vast majority of gates) needs no
/// second indirection: both fanin nets ride inline in the record and
/// one cache-line load decodes the whole gate. Wider gates fall back
/// to a run in the flat fanin array.
struct LevGate {
  GateType op;
  /// AND-form descriptor. Every arity <= 2 gate except XOR/XNOR is a
  /// two-input Kleene AND under input/output polarities (De Morgan:
  /// OR(a,b) = ~(~a & ~b); NOT(a) = ~(a & a) with in1 = in0), so the
  /// packed kernel can evaluate the common case as straight-line mask
  /// arithmetic instead of an opcode dispatch. Bit 0/1: complement
  /// fanin 0/1; bit 2: complement the result; bit 3: descriptor valid
  /// (clear means fall back to the opcode switch).
  std::uint8_t and_form = 0;
  std::uint16_t arity;
  NodeIndex node;  ///< output net (index into a values array)
  /// Fanin 0 when arity <= 2; index of the gate's fanin run in
  /// LevelizedCircuit::fanins() when arity > 2.
  std::uint32_t in0 = 0;
  /// Fanin 1 when arity == 2; a copy of fanin 0 when arity == 1 (the
  /// AND-form path always reads two operands); unused otherwise.
  std::uint32_t in1 = 0;
};

inline constexpr std::uint8_t kAndFormInvIn0 = 1;
inline constexpr std::uint8_t kAndFormInvIn1 = 2;
inline constexpr std::uint8_t kAndFormInvOut = 4;
inline constexpr std::uint8_t kAndFormValid = 8;

/// Flat, levelized compilation of a Netlist's combinational network.
///
/// The netlist's topological order is compiled once into a dense array
/// of LevGate records plus one flat fanin index array, with the frame
/// inputs (primary inputs, constants, flip-flop outputs) stripped out.
/// A frame evaluation is then a single linear sweep — no per-gate
/// vector indirection, no event queue, no frame-input branch — which
/// is what makes the word-parallel kernels of the bit-parallel engine
/// (and the scalar good machine) cache-friendly.
///
/// The compiled order is level-compatible: all gates of level L
/// precede every gate of level L+1 (level_offsets() exposes the
/// boundaries).
class LevelizedCircuit {
 public:
  explicit LevelizedCircuit(const Netlist& netlist);

  [[nodiscard]] const Netlist& netlist() const noexcept { return *netlist_; }

  [[nodiscard]] const std::vector<LevGate>& gates() const noexcept {
    return gates_;
  }
  [[nodiscard]] const std::vector<NodeIndex>& fanins() const noexcept {
    return fanins_;
  }

  /// Combinational depth: the deepest gate level (frame inputs are
  /// level 0 and are not compiled).
  [[nodiscard]] std::size_t level_count() const noexcept {
    return level_offsets_.size() >= 2 ? level_offsets_.size() - 2 : 0;
  }
  /// gates()[level_offsets()[l] .. level_offsets()[l+1]) holds the
  /// gates of level l; the level-0 segment is always empty.
  [[nodiscard]] const std::vector<std::uint32_t>& level_offsets()
      const noexcept {
    return level_offsets_;
  }

  // ---- frame-input / frame-output structure (copies, flat) -----------
  [[nodiscard]] const std::vector<NodeIndex>& inputs() const noexcept {
    return inputs_;
  }
  [[nodiscard]] const std::vector<NodeIndex>& dffs() const noexcept {
    return dffs_;
  }
  /// D-pin driver of each flip-flop, aligned with dffs().
  [[nodiscard]] const std::vector<NodeIndex>& dff_d() const noexcept {
    return dff_d_;
  }
  [[nodiscard]] const std::vector<NodeIndex>& outputs() const noexcept {
    return outputs_;
  }
  /// Constant nodes and their values.
  [[nodiscard]] const std::vector<std::pair<NodeIndex, Val3>>& consts()
      const noexcept {
    return consts_;
  }

  // ---- sparse-evaluation adjacency -----------------------------------

  /// gate_of()[n] is the index into gates() of the gate driving node n,
  /// or kNoGate for frame inputs (which are never compiled).
  static constexpr std::uint32_t kNoGate = 0xFFFFFFFFu;
  [[nodiscard]] const std::vector<std::uint32_t>& gate_of() const noexcept {
    return gate_of_;
  }

  /// Consumer gates of node n (indices into gates()), as a flat CSR
  /// range. Flip-flop D-pins are not listed — latching is a separate
  /// phase, not a schedulable gate. This is what lets the bit-parallel
  /// engine propagate only through the fault-effect cone instead of
  /// sweeping every gate.
  [[nodiscard]] std::pair<const std::uint32_t*, const std::uint32_t*>
  fanout_gates(NodeIndex n) const noexcept {
    return {fanout_gates_.data() + fanout_offsets_[n],
            fanout_gates_.data() + fanout_offsets_[n + 1]};
  }

 private:
  const Netlist* netlist_;
  std::vector<LevGate> gates_;
  std::vector<NodeIndex> fanins_;
  std::vector<std::uint32_t> level_offsets_;
  std::vector<NodeIndex> inputs_;
  std::vector<NodeIndex> dffs_;
  std::vector<NodeIndex> dff_d_;
  std::vector<NodeIndex> outputs_;
  std::vector<std::pair<NodeIndex, Val3>> consts_;
  std::vector<std::uint32_t> gate_of_;
  std::vector<std::uint32_t> fanout_offsets_;
  std::vector<std::uint32_t> fanout_gates_;
};

/// Evaluates one compiled gate over any plane type. `get(i)` returns
/// operand i; the Ops type maps the Kleene algebra onto the plane
/// (Val3Ops for scalars, PackedOps for 64-slot words).
template <typename Ops, typename Getter>
[[nodiscard]] auto eval_lev_gate(GateType op, std::size_t arity, Getter get)
    -> decltype(get(std::size_t{0})) {
  switch (op) {
    case GateType::Buf:
      return get(0);
    case GateType::Not:
      return Ops::not_(get(0));
    case GateType::And:
    case GateType::Nand: {
      auto acc = Ops::one();
      for (std::size_t i = 0; i < arity; ++i) acc = Ops::and_(acc, get(i));
      return op == GateType::Nand ? Ops::not_(acc) : acc;
    }
    case GateType::Or:
    case GateType::Nor: {
      auto acc = Ops::zero();
      for (std::size_t i = 0; i < arity; ++i) acc = Ops::or_(acc, get(i));
      return op == GateType::Nor ? Ops::not_(acc) : acc;
    }
    case GateType::Xor:
    case GateType::Xnor: {
      auto acc = Ops::zero();
      for (std::size_t i = 0; i < arity; ++i) acc = Ops::xor_(acc, get(i));
      return op == GateType::Xnor ? Ops::not_(acc) : acc;
    }
    default:
      // Frame inputs are never compiled into gates().
      return Ops::x();
  }
}

struct Val3Ops {
  static Val3 and_(Val3 a, Val3 b) { return and3(a, b); }
  static Val3 or_(Val3 a, Val3 b) { return or3(a, b); }
  static Val3 xor_(Val3 a, Val3 b) { return xor3(a, b); }
  static Val3 not_(Val3 a) { return not3(a); }
  static Val3 zero() { return Val3::Zero; }
  static Val3 one() { return Val3::One; }
  static Val3 x() { return Val3::X; }
};

struct PackedOps {
  static PackedVal3 and_(PackedVal3 a, PackedVal3 b) { return pand(a, b); }
  static PackedVal3 or_(PackedVal3 a, PackedVal3 b) { return por(a, b); }
  static PackedVal3 xor_(PackedVal3 a, PackedVal3 b) { return pxor(a, b); }
  static PackedVal3 not_(PackedVal3 a) { return pnot(a); }
  static PackedVal3 zero() { return broadcast(Val3::Zero); }
  static PackedVal3 one() { return broadcast(Val3::One); }
  static PackedVal3 x() { return PackedVal3{}; }
};

}  // namespace motsim

#endif  // MOTSIM_SIM3_LEVELIZED_H
