#ifndef MOTSIM_SIM3_FAULT_SIM3_H
#define MOTSIM_SIM3_FAULT_SIM3_H

#include <cstdint>
#include <vector>

#include "circuit/levelize.h"
#include "circuit/netlist.h"
#include "faults/fault.h"
#include "logic/val3.h"
#include "sim3/fault_simulator.h"
#include "sim3/good_sim3.h"

namespace motsim {

/// Event-driven three-valued single-fault frame kernel.
///
/// Injects one stuck-at fault into the current frame (whose fault-free
/// values are supplied), propagates the divergence in level order
/// through the cone of influence, decides SOT detection (opposite
/// binary values at a primary output) and updates the faulty machine's
/// next-state divergence. Shared by FaultSim3's campaign runs and
/// window sessions.
class FaultPropagator3 {
 public:
  explicit FaultPropagator3(const Netlist& netlist);

  /// Simulates `fault` through the current frame; `state_diff` is
  /// updated in place with the next-state divergence. Returns true if
  /// the fault is detected this frame. With the default
  /// `latch_even_if_detected = false` the next-state update is skipped
  /// on detection (the caller drops the fault anyway); N-detect
  /// callers pass true to keep the faulty machine coherent across
  /// further frames.
  bool step(const Fault& fault, StateDiff3& state_diff,
            const std::vector<Val3>& good_values,
            const std::vector<Val3>& good_next_state,
            bool latch_even_if_detected = false);

 private:
  [[nodiscard]] Val3 fval(NodeIndex node,
                          const std::vector<Val3>& good_values) const;

  const Netlist* netlist_;
  std::vector<Val3> scratch_val_;
  std::vector<std::uint32_t> scratch_stamp_;
  std::uint32_t stamp_ = 0;
  EventQueue queue_;
  std::vector<NodeIndex> changed_;
};

/// Event-driven three-valued serial fault simulator with fault
/// dropping — the paper's baseline `X01`, and the reference backend
/// (Sim3Backend::Event) of the FaultSimulator3 interface.
///
/// The machine model follows Section II: both the fault-free and every
/// faulty machine start in the unknown (all-X) state. Detection uses
/// the SOT strategy under three-valued logic: a fault is detected at
/// frame t if some primary output has a *binary* fault-free value and
/// the *opposite binary* faulty value. This yields the lower bound of
/// fault coverage that the paper's symbolic strategies improve on.
class FaultSim3 final : public FaultSimulator3 {
 public:
  FaultSim3(const Netlist& netlist, std::vector<Fault> faults);

  [[nodiscard]] Sim3Backend backend() const noexcept override {
    return Sim3Backend::Event;
  }

  [[nodiscard]] FaultSim3Result run(
      const std::vector<std::vector<Val3>>& sequence) override;

  void begin_window(const std::vector<Val3>& good_state,
                    std::vector<std::size_t> fault_indices,
                    std::vector<StateDiff3> diffs) override;
  [[nodiscard]] std::vector<std::uint32_t> step_window(
      const std::vector<Val3>& inputs) override;
  void drop_window_fault(std::uint32_t pos) override;
  [[nodiscard]] std::size_t window_live() const override {
    return window_live_;
  }
  [[nodiscard]] bool window_fault_alive(std::uint32_t pos) const override {
    return window_[pos].alive;
  }
  [[nodiscard]] const std::vector<Val3>& window_state() const override {
    return good_.state();
  }
  [[nodiscard]] StateDiff3 window_diff(std::uint32_t pos) const override {
    return window_[pos].diff;
  }
  void end_window() override;

 private:
  struct WindowFault {
    std::size_t index;  ///< into faults()
    StateDiff3 diff;
    bool alive = true;
  };

  const Netlist* netlist_;
  FaultPropagator3 propagator_;
  GoodSim3 good_;
  std::vector<WindowFault> window_;
  std::size_t window_live_ = 0;
};

}  // namespace motsim

#endif  // MOTSIM_SIM3_FAULT_SIM3_H
