#ifndef MOTSIM_SIM3_FAULT_SIM3_H
#define MOTSIM_SIM3_FAULT_SIM3_H

#include <cstdint>
#include <vector>

#include "circuit/levelize.h"
#include "circuit/netlist.h"
#include "faults/fault.h"
#include "logic/val3.h"
#include "sim3/good_sim3.h"

namespace motsim {

/// Sparse divergence of a faulty machine's present state from the
/// fault-free state: (flip-flop position, faulty value). Entries
/// always differ from the fault-free value.
using StateDiff3 = std::vector<std::pair<std::uint32_t, Val3>>;

/// Event-driven three-valued single-fault frame kernel.
///
/// Injects one stuck-at fault into the current frame (whose fault-free
/// values are supplied), propagates the divergence in level order
/// through the cone of influence, decides SOT detection (opposite
/// binary values at a primary output) and updates the faulty machine's
/// next-state divergence. Shared by FaultSim3 and by the three-valued
/// windows of the hybrid simulator.
class FaultPropagator3 {
 public:
  explicit FaultPropagator3(const Netlist& netlist);

  /// Simulates `fault` through the current frame; `state_diff` is
  /// updated in place with the next-state divergence. Returns true if
  /// the fault is detected this frame. With the default
  /// `latch_even_if_detected = false` the next-state update is skipped
  /// on detection (the caller drops the fault anyway); N-detect
  /// callers pass true to keep the faulty machine coherent across
  /// further frames.
  bool step(const Fault& fault, StateDiff3& state_diff,
            const std::vector<Val3>& good_values,
            const std::vector<Val3>& good_next_state,
            bool latch_even_if_detected = false);

 private:
  [[nodiscard]] Val3 fval(NodeIndex node,
                          const std::vector<Val3>& good_values) const;

  const Netlist* netlist_;
  std::vector<Val3> scratch_val_;
  std::vector<std::uint32_t> scratch_stamp_;
  std::uint32_t stamp_ = 0;
  EventQueue queue_;
  std::vector<NodeIndex> changed_;
};

/// Per-fault outcome of a three-valued fault simulation run.
struct FaultSim3Result {
  /// One entry per fault of the simulated list: DetectedSim3 or the
  /// entry's initial status (e.g. XRedundant faults are skipped).
  std::vector<FaultStatus> status;
  /// Frame (1-based) at which each fault was detected; 0 if never.
  std::vector<std::uint32_t> detect_frame;
  std::size_t detected_count = 0;
  std::size_t simulated_faults = 0;  ///< faults actually simulated
};

/// Event-driven three-valued serial fault simulator with fault
/// dropping — the paper's baseline `X01`.
///
/// The machine model follows Section II: both the fault-free and every
/// faulty machine start in the unknown (all-X) state. Detection uses
/// the SOT strategy under three-valued logic: a fault is detected at
/// frame t if some primary output has a *binary* fault-free value and
/// the *opposite binary* faulty value. This yields the lower bound of
/// fault coverage that the paper's symbolic strategies improve on.
class FaultSim3 {
 public:
  FaultSim3(const Netlist& netlist, std::vector<Fault> faults);

  /// Pre-classifies faults (e.g. XRedundant from ID_X-red); faults not
  /// Undetected are never simulated. Must be called before run().
  void set_initial_status(std::vector<FaultStatus> status);

  /// Simulates the whole input sequence (outer index = frame) from the
  /// all-X initial state and returns the classification.
  [[nodiscard]] FaultSim3Result run(
      const std::vector<std::vector<Val3>>& sequence);

 private:
  const Netlist* netlist_;
  std::vector<Fault> faults_;
  std::vector<FaultStatus> initial_status_;
  FaultPropagator3 propagator_;
};

}  // namespace motsim

#endif  // MOTSIM_SIM3_FAULT_SIM3_H
