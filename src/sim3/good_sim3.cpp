#include "sim3/good_sim3.h"

#include <stdexcept>

namespace motsim {

Val3 eval_gate3(GateType type, const std::vector<Val3>& ins) {
  return eval_gate3(type, ins.size(), [&](std::size_t i) { return ins[i]; });
}

GoodSim3::GoodSim3(const Netlist& netlist, Val3 initial)
    : netlist_(&netlist),
      values_(netlist.node_count(), Val3::X),
      state_(netlist.dff_count(), initial) {
  if (!netlist.finalized()) {
    throw std::logic_error("GoodSim3 requires a finalized netlist");
  }
}

void GoodSim3::set_state(std::vector<Val3> state) {
  if (state.size() != state_.size()) {
    throw std::invalid_argument("set_state: wrong state width");
  }
  state_ = std::move(state);
}

std::vector<Val3> GoodSim3::step(const std::vector<Val3>& inputs) {
  const Netlist& nl = *netlist_;
  if (inputs.size() != nl.input_count()) {
    throw std::invalid_argument("step: wrong input vector width");
  }

  // Frame inputs.
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    values_[nl.inputs()[i]] = inputs[i];
  }
  for (std::size_t i = 0; i < nl.dffs().size(); ++i) {
    values_[nl.dffs()[i]] = state_[i];
  }

  // Combinational evaluation in topological order.
  for (NodeIndex n : nl.topo_order()) {
    const Gate& g = nl.gate(n);
    if (is_frame_input(g.type)) {
      if (g.type == GateType::Const0) values_[n] = Val3::Zero;
      if (g.type == GateType::Const1) values_[n] = Val3::One;
      continue;
    }
    values_[n] = eval_gate3(g.type, g.fanins.size(),
                            [&](std::size_t i) { return values_[g.fanins[i]]; });
  }

  // Latch next state.
  for (std::size_t i = 0; i < nl.dffs().size(); ++i) {
    state_[i] = values_[nl.gate(nl.dffs()[i]).fanins[0]];
  }

  return outputs();
}

std::vector<Val3> GoodSim3::outputs() const {
  std::vector<Val3> out;
  out.reserve(netlist_->outputs().size());
  for (NodeIndex n : netlist_->outputs()) out.push_back(values_[n]);
  return out;
}

}  // namespace motsim
