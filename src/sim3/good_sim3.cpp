#include "sim3/good_sim3.h"

#include <stdexcept>

namespace motsim {

Val3 eval_gate3(GateType type, const std::vector<Val3>& ins) {
  return eval_gate3(type, ins.size(), [&](std::size_t i) { return ins[i]; });
}

GoodSim3::GoodSim3(const Netlist& netlist, Val3 initial)
    : GoodSim3(std::make_shared<const LevelizedCircuit>(netlist), initial) {}

GoodSim3::GoodSim3(std::shared_ptr<const LevelizedCircuit> circuit,
                   Val3 initial)
    : circuit_(std::move(circuit)),
      values_(circuit_->netlist().node_count(), Val3::X),
      state_(circuit_->netlist().dff_count(), initial) {
  // Constants never change; write them once.
  for (const auto& [n, v] : circuit_->consts()) values_[n] = v;
}

void GoodSim3::set_state(std::vector<Val3> state) {
  if (state.size() != state_.size()) {
    throw std::invalid_argument("set_state: wrong state width");
  }
  state_ = std::move(state);
}

std::vector<Val3> GoodSim3::step(const std::vector<Val3>& inputs) {
  const LevelizedCircuit& lc = *circuit_;
  if (inputs.size() != lc.inputs().size()) {
    throw std::invalid_argument("step: wrong input vector width");
  }

  // Frame inputs.
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    values_[lc.inputs()[i]] = inputs[i];
  }
  for (std::size_t i = 0; i < lc.dffs().size(); ++i) {
    values_[lc.dffs()[i]] = state_[i];
  }

  // Combinational evaluation: one linear sweep over the compiled
  // level order.
  const NodeIndex* fanins = lc.fanins().data();
  for (const LevGate& g : lc.gates()) {
    if (g.arity <= 2) {
      values_[g.node] = eval_lev_gate<Val3Ops>(
          g.op, g.arity,
          [&](std::size_t i) { return values_[i == 0 ? g.in0 : g.in1]; });
    } else {
      const NodeIndex* in = fanins + g.in0;
      values_[g.node] = eval_lev_gate<Val3Ops>(
          g.op, g.arity, [&](std::size_t i) { return values_[in[i]]; });
    }
  }

  // Latch next state.
  for (std::size_t i = 0; i < lc.dff_d().size(); ++i) {
    state_[i] = values_[lc.dff_d()[i]];
  }

  return outputs();
}

std::vector<Val3> GoodSim3::outputs() const {
  std::vector<Val3> out;
  out.reserve(circuit_->outputs().size());
  for (NodeIndex n : circuit_->outputs()) out.push_back(values_[n]);
  return out;
}

}  // namespace motsim

