#ifndef MOTSIM_SIM3_FAULT_SIMULATOR_H
#define MOTSIM_SIM3_FAULT_SIMULATOR_H

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "faults/fault.h"
#include "logic/val3.h"

namespace motsim {

namespace obs {
struct Telemetry;  // obs/telemetry.h
}

/// Sparse divergence of a faulty machine's present state from the
/// fault-free state: (flip-flop position, faulty value). Entries
/// always differ from the fault-free value.
using StateDiff3 = std::vector<std::pair<std::uint32_t, Val3>>;

/// Selects the three-valued fault-simulation engine. Both backends
/// are bit-identical by contract — same FaultStatus, same
/// detect_frame, same next-state divergences for every fault on every
/// sequence — so the choice is purely a performance knob and is
/// deliberately excluded from store fingerprints (a run checkpointed
/// under one backend resumes under the other).
enum class Sim3Backend : std::uint8_t {
  Event = 0,   ///< serial event-driven single-fault propagation (reference)
  BitPar = 1,  ///< bit-parallel levelized PPSFP (64 faults per word)
};

[[nodiscard]] const char* to_cstring(Sim3Backend b) noexcept;

/// Parses "event" / "bitpar"; nullopt for anything else.
[[nodiscard]] std::optional<Sim3Backend> parse_sim3_backend(
    std::string_view token);

/// Process-wide default backend: Sim3Backend::Event unless the
/// environment variable MOTSIM_SIM3_BACKEND holds a valid backend
/// token (the CI matrix uses this to run the whole test suite under
/// both engines). Read once and cached.
[[nodiscard]] Sim3Backend default_sim3_backend();

/// Per-fault outcome of a three-valued fault simulation run.
struct FaultSim3Result {
  /// One entry per fault of the simulated list: DetectedSim3 or the
  /// entry's initial status (e.g. XRedundant faults are skipped).
  std::vector<FaultStatus> status;
  /// Frame (1-based) at which each fault was detected; 0 if never.
  std::vector<std::uint32_t> detect_frame;
  std::size_t detected_count = 0;
  std::size_t simulated_faults = 0;  ///< faults actually simulated
};

/// Abstract three-valued (0/1/X) fault simulator over one fixed fault
/// list. Two interchangeable backends implement it: the serial
/// event-driven reference engine (FaultSim3) and the bit-parallel
/// levelized engine (BitParFaultSim3); make_fault_simulator3() picks
/// one at runtime.
///
/// Two entry styles, matching the two kinds of call site:
///
/// 1. Campaign runs — set_initial_status() + run(): simulate a whole
///    sequence from the all-X initial state with fault dropping; the
///    paper's baseline X01 classification.
///
/// 2. Windowed frame-step sessions — begin_window() / step_window() /
///    end_window(): the caller owns the clock and advances the
///    machines one frame at a time from an explicit boundary state.
///    This serves the hybrid simulator's three-valued fallback
///    windows, N-detect scoring and test-set compaction, which all
///    need per-frame detection reports and mid-stream snapshots.
///    Window faults are addressed by their *position* in the
///    fault_indices vector passed to begin_window(); detection only
///    reports — the caller decides when a fault is dropped
///    (drop_window_fault), so N-detect can keep observing a fault and
///    the hybrid can drop on first detection. Faulty machines always
///    latch their next state, dropped ones simply stop being reported.
///
/// The backend contract (docs/SIM3.md): for the same fault list,
/// initial statuses and inputs, every virtual below returns
/// bit-identical results on every backend, for any thread count.
class FaultSimulator3 {
 public:
  explicit FaultSimulator3(std::vector<Fault> faults);
  virtual ~FaultSimulator3() = default;

  FaultSimulator3(const FaultSimulator3&) = delete;
  FaultSimulator3& operator=(const FaultSimulator3&) = delete;

  [[nodiscard]] virtual Sim3Backend backend() const noexcept = 0;

  [[nodiscard]] const std::vector<Fault>& faults() const noexcept {
    return faults_;
  }

  /// Attaches a telemetry context (sim3.* counters and batch spans);
  /// nullptr detaches. The pointer must outlive the runs it observes.
  void set_telemetry(obs::Telemetry* telemetry) noexcept {
    telemetry_ = telemetry;
  }

  // ---- campaign entry --------------------------------------------------

  /// Pre-classifies faults (e.g. XRedundant from ID_X-red); faults not
  /// Undetected are never simulated. Must be called before run().
  void set_initial_status(std::vector<FaultStatus> status);

  /// Simulates the whole input sequence (outer index = frame) from the
  /// all-X initial state, with fault dropping, and returns the
  /// classification.
  [[nodiscard]] virtual FaultSim3Result run(
      const std::vector<std::vector<Val3>>& sequence) = 0;

  // ---- windowed frame-step session -------------------------------------

  /// Opens a frame-step session: the fault-free machine starts in
  /// `good_state` (one value per flip-flop), and one faulty machine is
  /// materialized per entry of `fault_indices` (indices into faults()),
  /// each diverging from the fault-free state by the aligned sparse
  /// `diffs` entry. Replaces any session already open.
  virtual void begin_window(const std::vector<Val3>& good_state,
                            std::vector<std::size_t> fault_indices,
                            std::vector<StateDiff3> diffs) = 0;

  /// Advances the session one frame. Returns the window positions of
  /// the (non-dropped) faults observed this frame — an output with
  /// opposite binary fault-free/faulty values — in ascending order.
  [[nodiscard]] virtual std::vector<std::uint32_t> step_window(
      const std::vector<Val3>& inputs) = 0;

  /// Stops reporting (and counting) window fault `pos`.
  virtual void drop_window_fault(std::uint32_t pos) = 0;

  /// Number of not-yet-dropped window faults.
  [[nodiscard]] virtual std::size_t window_live() const = 0;
  [[nodiscard]] virtual bool window_fault_alive(std::uint32_t pos) const = 0;

  /// Fault-free present state after the last step_window().
  [[nodiscard]] virtual const std::vector<Val3>& window_state() const = 0;

  /// Sparse present-state divergence of window fault `pos`, in
  /// ascending flip-flop position order (the snapshot form carried by
  /// checkpoints and symbolic re-seeding).
  [[nodiscard]] virtual StateDiff3 window_diff(std::uint32_t pos) const = 0;

  virtual void end_window() = 0;

 protected:
  std::vector<Fault> faults_;
  std::vector<FaultStatus> initial_status_;
  obs::Telemetry* telemetry_ = nullptr;
};

/// Engine construction knobs (not part of the result contract).
struct Sim3EngineConfig {
  /// Worker threads for the bit-parallel backend's group batching
  /// (0 = hardware concurrency, 1 = serial). Results are identical
  /// for every value. Ignored by the event backend.
  std::size_t threads = 1;
  obs::Telemetry* telemetry = nullptr;
};

/// Builds the selected backend over a fault-list copy.
[[nodiscard]] std::unique_ptr<FaultSimulator3> make_fault_simulator3(
    Sim3Backend backend, const Netlist& netlist, std::vector<Fault> faults,
    const Sim3EngineConfig& config = {});

}  // namespace motsim

#endif  // MOTSIM_SIM3_FAULT_SIMULATOR_H
