#include "sim3/sim2.h"

#include <stdexcept>

namespace motsim {

Sim2::Sim2(const Netlist& netlist, std::optional<Fault> fault)
    : netlist_(&netlist),
      fault_(fault),
      values_(netlist.node_count(), false),
      state_(netlist.dff_count(), false) {
  if (!netlist.finalized()) {
    throw std::logic_error("Sim2 requires a finalized netlist");
  }
}

void Sim2::set_state(std::vector<bool> state) {
  if (state.size() != state_.size()) {
    throw std::invalid_argument("set_state: wrong state width");
  }
  state_ = std::move(state);
}

std::vector<bool> Sim2::step(const std::vector<bool>& inputs) {
  const Netlist& nl = *netlist_;
  if (inputs.size() != nl.input_count()) {
    throw std::invalid_argument("step: wrong input vector width");
  }

  const bool stem_fault = fault_.has_value() && fault_->site.is_stem();
  const bool branch_fault = fault_.has_value() && !fault_->site.is_stem();

  for (std::size_t i = 0; i < inputs.size(); ++i) {
    values_[nl.inputs()[i]] = inputs[i];
  }
  for (std::size_t i = 0; i < nl.dffs().size(); ++i) {
    values_[nl.dffs()[i]] = state_[i];
  }
  if (stem_fault) values_[fault_->site.node] = fault_->stuck_value;

  for (NodeIndex n : nl.topo_order()) {
    const Gate& g = nl.gate(n);
    if (is_frame_input(g.type)) {
      if (g.type == GateType::Const0) values_[n] = false;
      if (g.type == GateType::Const1) values_[n] = true;
      if (stem_fault && n == fault_->site.node) {
        values_[n] = fault_->stuck_value;
      }
      continue;
    }
    if (stem_fault && n == fault_->site.node) {
      values_[n] = fault_->stuck_value;
      continue;
    }
    const bool here = branch_fault && n == fault_->site.node;
    std::vector<bool> ins(g.fanins.size());
    for (std::size_t i = 0; i < g.fanins.size(); ++i) {
      ins[i] = (here && i == fault_->site.pin) ? fault_->stuck_value
                                               : values_[g.fanins[i]];
    }
    values_[n] = eval_gate2(g.type, ins);
  }

  for (std::size_t i = 0; i < nl.dffs().size(); ++i) {
    const NodeIndex dff = nl.dffs()[i];
    bool v = values_[nl.gate(dff).fanins[0]];
    if (branch_fault && fault_->site.node == dff) v = fault_->stuck_value;
    state_[i] = v;
  }

  std::vector<bool> out;
  out.reserve(nl.outputs().size());
  for (NodeIndex n : nl.outputs()) out.push_back(values_[n]);
  return out;
}

std::vector<std::vector<bool>> Sim2::run(
    const std::vector<bool>& initial,
    const std::vector<std::vector<bool>>& sequence) {
  set_state(initial);
  std::vector<std::vector<bool>> out;
  out.reserve(sequence.size());
  for (const auto& vec : sequence) out.push_back(step(vec));
  return out;
}

std::vector<std::vector<bool>> to_bool_sequence(
    const std::vector<std::vector<Val3>>& sequence) {
  std::vector<std::vector<bool>> out;
  out.reserve(sequence.size());
  for (const auto& vec : sequence) {
    std::vector<bool> row;
    row.reserve(vec.size());
    for (Val3 v : vec) {
      if (!is_binary(v)) {
        throw std::invalid_argument("to_bool_sequence: X in test vector");
      }
      row.push_back(v == Val3::One);
    }
    out.push_back(std::move(row));
  }
  return out;
}

}  // namespace motsim
