#ifndef MOTSIM_SIM3_NDETECT_H
#define MOTSIM_SIM3_NDETECT_H

#include <cstdint>
#include <vector>

#include "circuit/netlist.h"
#include "faults/fault.h"
#include "logic/val3.h"
#include "sim3/fault_simulator.h"
#include "tpg/sequences.h"

namespace motsim {

/// Result of an N-detect three-valued fault simulation.
struct NDetectResult {
  /// Number of frames at which each fault produced an observable
  /// (binary, opposite) output difference, capped at the requested N.
  std::vector<std::uint32_t> detections;
  /// Frames (1-based) of the first min(N, total) detections per fault.
  std::vector<std::vector<std::uint32_t>> detection_frames;
  /// Faults reaching the full N detections.
  std::size_t n_detected_count = 0;
  /// Faults with at least one detection (the classic coverage).
  std::size_t detected_once_count = 0;
};

/// N-detect fault simulation (three-valued, SOT): every fault is kept
/// alive until it has been observed at N *distinct frames* (or the
/// sequence ends). N-detect coverage is the standard quality metric
/// for defect coverage beyond the plain stuck-at model: sequences that
/// detect each fault several times, through different propagation
/// paths and machine states, catch more unmodeled defects.
///
/// With n_required = 1 this degenerates to FaultSim3 (asserted by the
/// test-suite). Runs on any FaultSimulator3 backend via its window
/// session; results are backend-independent.
[[nodiscard]] NDetectResult run_n_detect(
    const Netlist& netlist, const std::vector<Fault>& faults,
    const TestSequence& sequence, std::uint32_t n_required,
    Sim3Backend backend = default_sim3_backend());

}  // namespace motsim

#endif  // MOTSIM_SIM3_NDETECT_H
