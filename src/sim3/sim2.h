#ifndef MOTSIM_SIM3_SIM2_H
#define MOTSIM_SIM3_SIM2_H

#include <optional>
#include <vector>

#include "circuit/netlist.h"
#include "faults/fault.h"
#include "logic/val3.h"

namespace motsim {

/// Concrete two-valued reference simulator with optional fault
/// injection.
///
/// Simulates the machine from a *fully specified* binary initial state
/// — the ground truth against which the three-valued and symbolic
/// simulators are validated (a Val3 simulation must abstract every
/// Sim2 run; a symbolic detection claim must hold on every enumerated
/// initial-state pair). Also used to produce circuit-under-test
/// responses for the test-evaluation demos.
class Sim2 {
 public:
  /// `fault`, if present, is permanently injected (single stuck-at).
  explicit Sim2(const Netlist& netlist,
                std::optional<Fault> fault = std::nullopt);

  /// Sets the present state (one bit per flip-flop).
  void set_state(std::vector<bool> state);
  [[nodiscard]] const std::vector<bool>& state() const noexcept {
    return state_;
  }

  /// Applies one binary input vector; returns the output values.
  std::vector<bool> step(const std::vector<bool>& inputs);

  /// Convenience: runs a whole sequence from `initial` and returns the
  /// output sequence (outer index = frame).
  [[nodiscard]] std::vector<std::vector<bool>> run(
      const std::vector<bool>& initial,
      const std::vector<std::vector<bool>>& sequence);

  /// Per-node values of the most recent frame.
  [[nodiscard]] const std::vector<bool>& values() const noexcept {
    return values_;
  }

 private:
  const Netlist* netlist_;
  std::optional<Fault> fault_;
  std::vector<bool> values_;
  std::vector<bool> state_;
};

/// Converts a binary Val3 sequence (test vectors) into bool form.
/// Throws std::invalid_argument on X entries.
[[nodiscard]] std::vector<std::vector<bool>> to_bool_sequence(
    const std::vector<std::vector<Val3>>& sequence);

}  // namespace motsim

#endif  // MOTSIM_SIM3_SIM2_H
