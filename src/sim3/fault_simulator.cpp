#include "sim3/fault_simulator.h"

#include <cstdlib>
#include <stdexcept>

#include "sim3/bitpar_sim3.h"
#include "sim3/fault_sim3.h"

namespace motsim {

const char* to_cstring(Sim3Backend b) noexcept {
  switch (b) {
    case Sim3Backend::Event:
      return "event";
    case Sim3Backend::BitPar:
      return "bitpar";
  }
  return "?";
}

std::optional<Sim3Backend> parse_sim3_backend(std::string_view token) {
  if (token == "event") return Sim3Backend::Event;
  if (token == "bitpar") return Sim3Backend::BitPar;
  return std::nullopt;
}

Sim3Backend default_sim3_backend() {
  static const Sim3Backend cached = [] {
    // Read once at first use, under the static-init lock; nothing in
    // this process mutates the environment.
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    const char* env = std::getenv("MOTSIM_SIM3_BACKEND");
    if (env != nullptr) {
      if (const auto b = parse_sim3_backend(env)) return *b;
    }
    return Sim3Backend::Event;
  }();
  return cached;
}

FaultSimulator3::FaultSimulator3(std::vector<Fault> faults)
    : faults_(std::move(faults)),
      initial_status_(faults_.size(), FaultStatus::Undetected) {}

void FaultSimulator3::set_initial_status(std::vector<FaultStatus> status) {
  if (status.size() != faults_.size()) {
    throw std::invalid_argument("set_initial_status: wrong size");
  }
  initial_status_ = std::move(status);
}

std::unique_ptr<FaultSimulator3> make_fault_simulator3(
    Sim3Backend backend, const Netlist& netlist, std::vector<Fault> faults,
    const Sim3EngineConfig& config) {
  std::unique_ptr<FaultSimulator3> sim;
  switch (backend) {
    case Sim3Backend::Event:
      sim = std::make_unique<FaultSim3>(netlist, std::move(faults));
      break;
    case Sim3Backend::BitPar:
      sim = std::make_unique<BitParFaultSim3>(netlist, std::move(faults),
                                              config.threads);
      break;
    default:
      throw std::invalid_argument("make_fault_simulator3: unknown backend");
  }
  sim->set_telemetry(config.telemetry);
  return sim;
}

}  // namespace motsim
