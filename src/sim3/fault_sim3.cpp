#include "sim3/fault_sim3.h"

#include <stdexcept>

namespace motsim {

// ---------------------------------------------------------------------------
// FaultPropagator3
// ---------------------------------------------------------------------------

FaultPropagator3::FaultPropagator3(const Netlist& netlist)
    : netlist_(&netlist),
      scratch_val_(netlist.node_count(), Val3::X),
      scratch_stamp_(netlist.node_count(), 0),
      queue_(netlist) {
  if (!netlist.finalized()) {
    throw std::logic_error("FaultPropagator3 requires a finalized netlist");
  }
}

Val3 FaultPropagator3::fval(NodeIndex node,
                            const std::vector<Val3>& good_values) const {
  return scratch_stamp_[node] == stamp_ ? scratch_val_[node]
                                        : good_values[node];
}

bool FaultPropagator3::step(const Fault& fault, StateDiff3& state_diff,
                            const std::vector<Val3>& good_values,
                            const std::vector<Val3>& good_next_state,
                            bool latch_even_if_detected) {
  const Netlist& nl = *netlist_;

  ++stamp_;
  changed_.clear();

  auto set_fval = [&](NodeIndex n, Val3 v) {
    if (scratch_stamp_[n] != stamp_) {
      scratch_stamp_[n] = stamp_;
      changed_.push_back(n);
    }
    scratch_val_[n] = v;
  };

  auto enqueue_fanouts = [&](NodeIndex n) {
    for (const FanoutRef& fo : nl.fanouts(n)) {
      if (nl.type(fo.node) != GateType::Dff) queue_.push(fo.node);
    }
  };

  // Seed 1: diverging present-state bits.
  for (const auto& [pos, v] : state_diff) {
    const NodeIndex dff = nl.dffs()[pos];
    set_fval(dff, v);
    enqueue_fanouts(dff);
  }

  // Seed 2: the fault site.
  const Val3 sv = to_val3(fault.stuck_value);
  const NodeIndex site_node = fault.site.node;
  if (fault.site.is_stem()) {
    const Val3 cur = fval(site_node, good_values);
    set_fval(site_node, sv);
    if (cur != sv) enqueue_fanouts(site_node);
  } else if (nl.type(site_node) != GateType::Dff) {
    // A branch fault re-evaluates only the faulted gate; the override
    // is applied inside the evaluation below. (DFF D-pin branch faults
    // act purely on the next state, handled at latch time.)
    const NodeIndex src = nl.gate(site_node).fanins[fault.site.pin];
    if (fval(src, good_values) != sv) queue_.push(site_node);
  }

  // Propagate divergence in level order.
  for (NodeIndex n = queue_.pop(); n != kNoNode; n = queue_.pop()) {
    if (fault.site.is_stem() && n == site_node) continue;  // output pinned
    const Gate& g = nl.gate(n);
    const bool branch_here = !fault.site.is_stem() && n == site_node;
    const Val3 newv =
        eval_gate3(g.type, g.fanins.size(), [&](std::size_t i) {
          if (branch_here && i == fault.site.pin) return sv;
          return fval(g.fanins[i], good_values);
        });
    if (newv != fval(n, good_values)) {
      set_fval(n, newv);
      enqueue_fanouts(n);
    }
  }

  // Detection: any primary output with opposite binary values.
  bool detected = false;
  for (NodeIndex n : changed_) {
    if (!nl.is_output(n)) continue;
    const Val3 gv = good_values[n];
    const Val3 fv = scratch_val_[n];
    if (is_binary(gv) && is_binary(fv) && gv != fv) {
      detected = true;
      break;
    }
  }
  if (detected && !latch_even_if_detected) return true;

  // Latch the faulty next state as a sparse diff against the fault-free
  // next state.
  state_diff.clear();
  for (std::uint32_t pos = 0; pos < nl.dffs().size(); ++pos) {
    const NodeIndex dff = nl.dffs()[pos];
    const NodeIndex d = nl.gate(dff).fanins[0];
    Val3 fv = fval(d, good_values);
    if (!fault.site.is_stem() && fault.site.node == dff) fv = sv;
    if (fv != good_next_state[pos]) state_diff.emplace_back(pos, fv);
  }

  return detected;
}

// ---------------------------------------------------------------------------
// FaultSim3 (event backend)
// ---------------------------------------------------------------------------

FaultSim3::FaultSim3(const Netlist& netlist, std::vector<Fault> faults)
    : FaultSimulator3(std::move(faults)),
      netlist_(&netlist),
      propagator_(netlist),
      good_(netlist) {}

FaultSim3Result FaultSim3::run(
    const std::vector<std::vector<Val3>>& sequence) {
  FaultSim3Result result;
  result.status = initial_status_;
  result.detect_frame.assign(faults_.size(), 0);

  struct Live {
    std::size_t index;
    StateDiff3 state_diff;
  };
  std::vector<Live> live;
  live.reserve(faults_.size());
  for (std::size_t i = 0; i < faults_.size(); ++i) {
    if (initial_status_[i] == FaultStatus::Undetected) {
      live.push_back(Live{i, {}});
    }
  }
  result.simulated_faults = live.size();

  GoodSim3 good(good_.circuit());
  for (std::size_t t = 0; t < sequence.size() && !live.empty(); ++t) {
    good.step(sequence[t]);
    const std::vector<Val3>& good_values = good.values();
    const std::vector<Val3>& good_next = good.state();

    std::size_t keep = 0;
    for (std::size_t i = 0; i < live.size(); ++i) {
      if (propagator_.step(faults_[live[i].index], live[i].state_diff,
                           good_values, good_next)) {
        result.status[live[i].index] = FaultStatus::DetectedSim3;
        result.detect_frame[live[i].index] =
            static_cast<std::uint32_t>(t + 1);
        ++result.detected_count;
      } else {
        if (keep != i) live[keep] = std::move(live[i]);
        ++keep;
      }
    }
    live.resize(keep);
  }

  return result;
}

void FaultSim3::begin_window(const std::vector<Val3>& good_state,
                             std::vector<std::size_t> fault_indices,
                             std::vector<StateDiff3> diffs) {
  if (fault_indices.size() != diffs.size()) {
    throw std::invalid_argument("begin_window: indices/diffs mismatch");
  }
  good_.set_state(good_state);
  window_.clear();
  window_.reserve(fault_indices.size());
  for (std::size_t i = 0; i < fault_indices.size(); ++i) {
    window_.push_back(WindowFault{fault_indices[i], std::move(diffs[i]), true});
  }
  window_live_ = window_.size();
}

std::vector<std::uint32_t> FaultSim3::step_window(
    const std::vector<Val3>& inputs) {
  good_.step(inputs);
  const std::vector<Val3>& good_values = good_.values();
  const std::vector<Val3>& good_next = good_.state();

  std::vector<std::uint32_t> observed;
  for (std::uint32_t pos = 0; pos < window_.size(); ++pos) {
    WindowFault& wf = window_[pos];
    if (!wf.alive) continue;
    // latch_even_if_detected keeps the faulty machine coherent: the
    // caller decides whether an observation drops the fault.
    if (propagator_.step(faults_[wf.index], wf.diff, good_values, good_next,
                         /*latch_even_if_detected=*/true)) {
      observed.push_back(pos);
    }
  }
  return observed;
}

void FaultSim3::drop_window_fault(std::uint32_t pos) {
  if (window_[pos].alive) {
    window_[pos].alive = false;
    --window_live_;
  }
}

void FaultSim3::end_window() {
  window_.clear();
  window_live_ = 0;
}

}  // namespace motsim
