#include "store/run_store.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "obs/telemetry.h"
#include "store/fingerprint.h"
#include "tpg/sequence_io.h"
#include "util/stopwatch.h"

namespace motsim {

namespace {

namespace fs = std::filesystem;

// ---- enum <-> token helpers ------------------------------------------------

const char* strategy_token(Strategy s) {
  switch (s) {
    case Strategy::Sot:
      return "sot";
    case Strategy::Rmot:
      return "rmot";
    case Strategy::Mot:
      return "mot";
  }
  return "?";
}

bool parse_strategy_token(const std::string& t, Strategy& out) {
  if (t == "sot") out = Strategy::Sot;
  else if (t == "rmot") out = Strategy::Rmot;
  else if (t == "mot") out = Strategy::Mot;
  else return false;
  return true;
}

const char* layout_token(VarLayout l) {
  switch (l) {
    case VarLayout::Interleaved:
      return "interleaved";
    case VarLayout::Blocked:
      return "blocked";
  }
  return "?";
}

bool parse_layout_token(const std::string& t, VarLayout& out) {
  if (t == "interleaved") out = VarLayout::Interleaved;
  else if (t == "blocked") out = VarLayout::Blocked;
  else return false;
  return true;
}

/// Two-character-max mnemonics for FaultStatus in CKPT/INIT records.
const char* status_token(FaultStatus s) {
  switch (s) {
    case FaultStatus::Undetected:
      return "U";
    case FaultStatus::XRedundant:
      return "XR";
    case FaultStatus::DetectedSim3:
      return "D3";
    case FaultStatus::DetectedSot:
      return "DS";
    case FaultStatus::DetectedRmot:
      return "DR";
    case FaultStatus::DetectedMot:
      return "DM";
    case FaultStatus::StaticXRed:
      return "SX";
    case FaultStatus::StaticUntestable:
      return "SU";
  }
  return "?";
}

bool parse_status_token(const std::string& t, FaultStatus& out) {
  if (t == "U") out = FaultStatus::Undetected;
  else if (t == "XR") out = FaultStatus::XRedundant;
  else if (t == "D3") out = FaultStatus::DetectedSim3;
  else if (t == "DS") out = FaultStatus::DetectedSot;
  else if (t == "DR") out = FaultStatus::DetectedRmot;
  else if (t == "DM") out = FaultStatus::DetectedMot;
  else if (t == "SX") out = FaultStatus::StaticXRed;
  else if (t == "SU") out = FaultStatus::StaticUntestable;
  else return false;
  return true;
}

bool parse_u64(const std::string& t, std::uint64_t& out, int base = 10) {
  if (t.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(t.c_str(), &end, base);
  if (errno != 0 || end != t.c_str() + t.size() || t[0] == '-') return false;
  out = v;
  return true;
}

bool parse_size(const std::string& t, std::size_t& out) {
  std::uint64_t v = 0;
  if (!parse_u64(t, v)) return false;
  out = static_cast<std::size_t>(v);
  return true;
}

std::string val3_string(const std::vector<Val3>& values) {
  if (values.empty()) return "-";
  std::string s;
  s.reserve(values.size());
  for (Val3 v : values) s.push_back(to_char(v));
  return s;
}

bool parse_val3_string(const std::string& t, std::vector<Val3>& out) {
  out.clear();
  if (t == "-") return true;
  out.reserve(t.size());
  for (char c : t) {
    if (c == '0') out.push_back(Val3::Zero);
    else if (c == '1') out.push_back(Val3::One);
    else if (c == 'X' || c == 'x') out.push_back(Val3::X);
    else return false;
  }
  return true;
}

std::string diff_string(const StateDiff3& diff) {
  if (diff.empty()) return "-";
  std::string s;
  for (std::size_t i = 0; i < diff.size(); ++i) {
    if (i != 0) s.push_back(',');
    s += std::to_string(diff[i].first);
    s.push_back(':');
    s.push_back(to_char(diff[i].second));
  }
  return s;
}

bool parse_diff_string(const std::string& t, StateDiff3& out) {
  out.clear();
  if (t == "-") return true;
  std::size_t pos = 0;
  while (pos < t.size()) {
    const std::size_t colon = t.find(':', pos);
    if (colon == std::string::npos || colon + 1 >= t.size()) return false;
    std::uint64_t ff = 0;
    if (!parse_u64(t.substr(pos, colon - pos), ff)) return false;
    const char c = t[colon + 1];
    Val3 v;
    if (c == '0') v = Val3::Zero;
    else if (c == '1') v = Val3::One;
    else if (c == 'X' || c == 'x') v = Val3::X;
    else return false;
    out.emplace_back(static_cast<std::uint32_t>(ff), v);
    pos = colon + 2;
    if (pos < t.size()) {
      if (t[pos] != ',') return false;
      ++pos;
      if (pos == t.size()) return false;  // trailing comma
    }
  }
  return !out.empty();
}

Expected<bool, std::string> read_file(const std::string& path,
                                      std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Unexpected<std::string>{"cannot open " + path + " for reading"};
  }
  std::ostringstream os;
  os << in.rdbuf();
  if (in.bad()) {
    return Unexpected<std::string>{"I/O error reading " + path};
  }
  out = os.str();
  return true;
}

Expected<bool, std::string> write_file_atomic(const std::string& path,
                                              const std::string& content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Unexpected<std::string>{"cannot open " + tmp + " for writing"};
    }
    out << content;
    out.flush();
    if (!out) {
      return Unexpected<std::string>{"I/O error writing " + tmp};
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    return Unexpected<std::string>{"cannot rename " + tmp + " to " + path +
                                   ": " + ec.message()};
  }
  return true;
}

void append_line_or_throw(const std::string& path, const std::string& line) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  if (!out) {
    throw std::runtime_error("RunStore: cannot open " + path +
                             " for appending");
  }
  out << line << '\n';
  out.flush();
  if (!out) {
    throw std::runtime_error("RunStore: I/O error appending to " + path);
  }
}

/// Serializes the INIT record: the frozen ID_X-red pre-classification.
std::string serialize_init_line(const std::vector<FaultStatus>& status) {
  std::string line = "INIT 1 " + std::to_string(status.size()) + ' ';
  if (status.empty()) {
    line += '-';
  } else {
    for (FaultStatus s : status) {
      if (s == FaultStatus::XRedundant) {
        line += 'X';
      } else if (s == FaultStatus::StaticXRed) {
        line += 'S';
      } else if (s == FaultStatus::StaticUntestable) {
        line += 'T';
      } else {
        line += 'U';
      }
    }
  }
  line += " END";
  return line;
}

Expected<std::vector<FaultStatus>, std::string> parse_init_line(
    const std::string& line) {
  using Err = Unexpected<std::string>;
  std::istringstream in(line);
  std::string tag, version, count, digits, end, extra;
  if (!(in >> tag >> version >> count >> digits >> end) || tag != "INIT") {
    return Err{"malformed INIT record"};
  }
  if (version != "1") {
    return Err{"unsupported INIT record version " + version};
  }
  if (end != "END" || (in >> extra)) {
    return Err{"INIT record not terminated by END"};
  }
  std::size_t n = 0;
  if (!parse_size(count, n)) {
    return Err{"INIT record has a bad fault count"};
  }
  std::vector<FaultStatus> status;
  if (digits == "-") {
    if (n != 0) return Err{"INIT record count does not match its digits"};
    return status;
  }
  if (digits.size() != n) {
    return Err{"INIT record count does not match its digits"};
  }
  status.reserve(n);
  for (char c : digits) {
    if (c == 'U') status.push_back(FaultStatus::Undetected);
    else if (c == 'X') status.push_back(FaultStatus::XRedundant);
    else if (c == 'S') status.push_back(FaultStatus::StaticXRed);
    else if (c == 'T') status.push_back(FaultStatus::StaticUntestable);
    else return Err{std::string("INIT record has a bad status digit '") + c +
                    "'"};
  }
  return status;
}

}  // namespace

// ---- checkpoint line format ------------------------------------------------

std::string serialize_checkpoint_line(const ChunkCheckpoint& ck) {
  std::ostringstream os;
  os << "CKPT " << ck.chunk << ' ' << ck.frame << ' ' << (ck.in_window ? 1 : 0)
     << ' ' << ck.window_left << ' ' << (ck.complete ? 1 : 0) << ' '
     << val3_string(ck.good_state) << ' ' << ck.fault_index.size();
  for (std::size_t i = 0; i < ck.fault_index.size(); ++i) {
    os << ' ' << ck.fault_index[i] << ' ' << status_token(ck.status[i]) << ' '
       << ck.detect_frame[i] << ' ' << diff_string(ck.diff[i]);
  }
  os << " END";
  return os.str();
}

Expected<ChunkCheckpoint, std::string> parse_checkpoint_line(
    const std::string& line) {
  using Err = Unexpected<std::string>;
  std::istringstream in(line);
  std::string tag;
  if (!(in >> tag) || tag != "CKPT") {
    return Err{"not a CKPT record"};
  }
  ChunkCheckpoint ck;
  std::string chunk, frame, in_window, window_left, complete, good, count;
  if (!(in >> chunk >> frame >> in_window >> window_left >> complete >> good >>
        count)) {
    return Err{"truncated CKPT header"};
  }
  std::size_t n = 0;
  if (!parse_size(chunk, ck.chunk) || !parse_size(frame, ck.frame) ||
      !parse_size(window_left, ck.window_left) || !parse_size(count, n)) {
    return Err{"CKPT header has a non-numeric field"};
  }
  if (in_window != "0" && in_window != "1") {
    return Err{"CKPT in_window flag must be 0 or 1"};
  }
  if (complete != "0" && complete != "1") {
    return Err{"CKPT complete flag must be 0 or 1"};
  }
  ck.in_window = in_window == "1";
  ck.complete = complete == "1";
  if (!parse_val3_string(good, ck.good_state)) {
    return Err{"CKPT good_state has a bad value character"};
  }
  ck.fault_index.reserve(n);
  ck.status.reserve(n);
  ck.detect_frame.reserve(n);
  ck.diff.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::string index, status, detect, diff;
    if (!(in >> index >> status >> detect >> diff)) {
      return Err{"CKPT record truncated at fault entry " + std::to_string(i)};
    }
    std::size_t idx = 0;
    std::uint64_t df = 0;
    FaultStatus st;
    StateDiff3 d;
    if (!parse_size(index, idx) || !parse_u64(detect, df) ||
        df > 0xFFFFFFFFull) {
      return Err{"CKPT fault entry " + std::to_string(i) +
                 " has a non-numeric field"};
    }
    if (!parse_status_token(status, st)) {
      return Err{"CKPT fault entry " + std::to_string(i) +
                 " has an unknown status '" + status + "'"};
    }
    if (!parse_diff_string(diff, d)) {
      return Err{"CKPT fault entry " + std::to_string(i) +
                 " has a malformed state diff"};
    }
    ck.fault_index.push_back(idx);
    ck.status.push_back(st);
    ck.detect_frame.push_back(static_cast<std::uint32_t>(df));
    ck.diff.push_back(std::move(d));
  }
  std::string end, extra;
  if (!(in >> end) || end != "END" || (in >> extra)) {
    return Err{"CKPT record not terminated by END"};
  }
  return ck;
}

// ---- manifest --------------------------------------------------------------

std::string StoreManifest::to_text() const {
  std::ostringstream os;
  os << "version " << version << '\n';
  os << "circuit " << circuit << '\n';
  os << "inputs " << inputs << '\n';
  os << "dffs " << dffs << '\n';
  os << "faults " << faults << '\n';
  os << "seed " << seed << '\n';
  os << "complete " << (complete ? 1 : 0) << '\n';
  os << "sequence_length " << sequence_length << '\n';
  os << "segment_lengths";
  for (std::size_t s : segment_lengths) os << ' ' << s;
  os << '\n';
  os << "fp_netlist " << fingerprint_to_hex(fp_netlist) << '\n';
  os << "fp_faults " << fingerprint_to_hex(fp_faults) << '\n';
  os << "fp_options " << fingerprint_to_hex(fp_options) << '\n';
  os << "fp_sequence " << fingerprint_to_hex(fp_sequence) << '\n';
  os << "opt_analysis " << (options.analysis ? 1 : 0) << '\n';
  os << "opt_run_xred " << (options.run_xred ? 1 : 0) << '\n';
  os << "opt_sim3_backend " << to_cstring(options.sim3_backend) << '\n';
  os << "opt_run_symbolic " << (options.run_symbolic ? 1 : 0) << '\n';
  os << "opt_strategy " << strategy_token(options.strategy) << '\n';
  os << "opt_layout " << layout_token(options.layout) << '\n';
  os << "opt_node_limit " << options.node_limit << '\n';
  os << "opt_fallback_frames " << options.fallback_frames << '\n';
  os << "opt_hard_limit_factor " << options.hard_limit_factor << '\n';
  os << "opt_checkpoint_interval " << options.checkpoint_interval << '\n';
  os << "opt_trim " << (options.trim ? 1 : 0) << '\n';
  os << "opt_sgraph " << (options.sgraph ? 1 : 0) << '\n';
  os << "opt_threads " << options.threads << '\n';
  os << "opt_chunk_size " << options.chunk_size << '\n';
  os << "opt_seed " << options.seed << '\n';
  os << "opt_bdd_initial_capacity " << options.bdd_initial_capacity << '\n';
  os << "opt_bdd_cache_size_log2 " << options.bdd_cache_size_log2 << '\n';
  os << "opt_bdd_auto_gc_floor " << options.bdd_auto_gc_floor << '\n';
  return os.str();
}

Expected<StoreManifest, std::string> StoreManifest::from_text(
    const std::string& text) {
  using Err = Unexpected<std::string>;
  StoreManifest m;
  // Manifests written before the trimming pass existed carry no
  // opt_trim line; they must resume untrimmed (and unclustered) so the
  // shard partition they checkpointed under is recomputed exactly.
  // Same for the later s-graph pass and its horizon-ordered partition:
  // no opt_sgraph line means the pass did not exist, so resume with it
  // off.
  m.options.trim = false;
  m.options.sgraph = false;
  std::istringstream in(text);
  std::string raw;
  int line_no = 0;
  bool saw_version = false;
  while (std::getline(in, raw)) {
    ++line_no;
    if (raw.empty() || raw[0] == '#') continue;
    std::istringstream ls(raw);
    std::string key;
    ls >> key;
    if (key.empty()) continue;
    const auto bad = [&](const std::string& what) {
      return Err{"manifest line " + std::to_string(line_no) + ": " + what};
    };
    std::string value;
    const auto next = [&]() -> bool { return static_cast<bool>(ls >> value); };
    const auto get_size = [&](std::size_t& out) -> bool {
      return next() && parse_size(value, out);
    };
    const auto get_u64 = [&](std::uint64_t& out, int base = 10) -> bool {
      return next() && parse_u64(value, out, base);
    };
    const auto get_bool = [&](bool& out) -> bool {
      if (!next() || (value != "0" && value != "1")) return false;
      out = value == "1";
      return true;
    };

    if (key == "version") {
      std::size_t v = 0;
      if (!get_size(v)) return bad("bad version");
      m.version = static_cast<int>(v);
      saw_version = true;
      if (m.version != 1) {
        return Err{"unsupported store version " + std::to_string(m.version)};
      }
    } else if (key == "circuit") {
      if (!next()) return bad("missing circuit name");
      m.circuit = value;
    } else if (key == "inputs") {
      if (!get_size(m.inputs)) return bad("bad inputs count");
    } else if (key == "dffs") {
      if (!get_size(m.dffs)) return bad("bad dffs count");
    } else if (key == "faults") {
      if (!get_size(m.faults)) return bad("bad faults count");
    } else if (key == "seed") {
      if (!get_u64(m.seed)) return bad("bad seed");
    } else if (key == "complete") {
      if (!get_bool(m.complete)) return bad("complete must be 0 or 1");
    } else if (key == "sequence_length") {
      if (!get_size(m.sequence_length)) return bad("bad sequence_length");
    } else if (key == "segment_lengths") {
      m.segment_lengths.clear();
      std::size_t s = 0;
      while (next()) {
        if (!parse_size(value, s)) return bad("bad segment length");
        m.segment_lengths.push_back(s);
      }
    } else if (key == "fp_netlist") {
      if (!get_u64(m.fp_netlist, 16)) return bad("bad fp_netlist");
    } else if (key == "fp_faults") {
      if (!get_u64(m.fp_faults, 16)) return bad("bad fp_faults");
    } else if (key == "fp_options") {
      if (!get_u64(m.fp_options, 16)) return bad("bad fp_options");
    } else if (key == "fp_sequence") {
      if (!get_u64(m.fp_sequence, 16)) return bad("bad fp_sequence");
    } else if (key == "opt_analysis") {
      if (!get_bool(m.options.analysis)) return bad("bad opt_analysis");
    } else if (key == "opt_run_xred") {
      if (!get_bool(m.options.run_xred)) return bad("bad opt_run_xred");
    } else if (key == "opt_sim3_backend") {
      std::optional<Sim3Backend> backend;
      if (next()) backend = parse_sim3_backend(value);
      if (!backend.has_value()) return bad("bad opt_sim3_backend");
      m.options.sim3_backend = *backend;
    } else if (key == "opt_parallel_sim3") {
      // Legacy manifests (pre-backend-enum) recorded a boolean; map it
      // onto the equivalent backend so old stores keep loading.
      bool parallel = false;
      if (!get_bool(parallel)) return bad("bad opt_parallel_sim3");
      m.options.sim3_backend =
          parallel ? Sim3Backend::BitPar : Sim3Backend::Event;
    } else if (key == "opt_run_symbolic") {
      if (!get_bool(m.options.run_symbolic)) return bad("bad opt_run_symbolic");
    } else if (key == "opt_strategy") {
      if (!next() || !parse_strategy_token(value, m.options.strategy)) {
        return bad("bad opt_strategy");
      }
    } else if (key == "opt_layout") {
      if (!next() || !parse_layout_token(value, m.options.layout)) {
        return bad("bad opt_layout");
      }
    } else if (key == "opt_node_limit") {
      if (!get_size(m.options.node_limit)) return bad("bad opt_node_limit");
    } else if (key == "opt_fallback_frames") {
      if (!get_size(m.options.fallback_frames)) {
        return bad("bad opt_fallback_frames");
      }
    } else if (key == "opt_hard_limit_factor") {
      if (!get_size(m.options.hard_limit_factor)) {
        return bad("bad opt_hard_limit_factor");
      }
    } else if (key == "opt_checkpoint_interval") {
      if (!get_size(m.options.checkpoint_interval)) {
        return bad("bad opt_checkpoint_interval");
      }
    } else if (key == "opt_trim") {
      if (!get_bool(m.options.trim)) return bad("bad opt_trim");
    } else if (key == "opt_sgraph") {
      if (!get_bool(m.options.sgraph)) return bad("bad opt_sgraph");
    } else if (key == "opt_threads") {
      if (!get_size(m.options.threads)) return bad("bad opt_threads");
    } else if (key == "opt_chunk_size") {
      if (!get_size(m.options.chunk_size)) return bad("bad opt_chunk_size");
    } else if (key == "opt_seed") {
      if (!get_u64(m.options.seed)) return bad("bad opt_seed");
    } else if (key == "opt_bdd_initial_capacity") {
      if (!get_size(m.options.bdd_initial_capacity)) {
        return bad("bad opt_bdd_initial_capacity");
      }
    } else if (key == "opt_bdd_cache_size_log2") {
      std::size_t v = 0;
      if (!get_size(v)) return bad("bad opt_bdd_cache_size_log2");
      m.options.bdd_cache_size_log2 = static_cast<unsigned>(v);
    } else if (key == "opt_bdd_auto_gc_floor") {
      if (!get_size(m.options.bdd_auto_gc_floor)) {
        return bad("bad opt_bdd_auto_gc_floor");
      }
    } else {
      return bad("unknown key '" + key + "'");
    }
  }
  if (!saw_version) {
    return Err{"manifest has no version line"};
  }
  std::size_t sum = 0;
  for (std::size_t s : m.segment_lengths) sum += s;
  if (sum != m.sequence_length) {
    return Err{"manifest segment_lengths do not sum to sequence_length"};
  }
  return m;
}

// ---- RunStore --------------------------------------------------------------

Expected<RunStore, std::string> RunStore::create(
    std::string dir, StoreManifest manifest, const TestSequence& sequence,
    const std::vector<FaultStatus>& initial_status) {
  using Err = Unexpected<std::string>;
  RunStore store(std::move(dir));
  std::error_code ec;
  fs::create_directories(store.dir_, ec);
  if (ec) {
    return Err{"cannot create store directory " + store.dir_ + ": " +
               ec.message()};
  }
  if (fs::exists(store.manifest_path())) {
    return Err{"store directory " + store.dir_ +
               " already contains a campaign (manifest.txt exists); "
               "use --resume or point --store at a fresh directory"};
  }
  store.manifest_ = std::move(manifest);
  {
    std::ostringstream os;
    write_sequence(os, sequence, "campaign sequence, segment 0");
    const auto w = write_file_atomic(store.sequence_path(), os.str());
    if (!w.has_value()) return Err{w.error()};
  }
  {
    const auto w = write_file_atomic(
        store.checkpoints_path(), serialize_init_line(initial_status) + "\n");
    if (!w.has_value()) return Err{w.error()};
  }
  const auto w = store.save_manifest();
  if (!w.has_value()) return Err{w.error()};
  return store;
}

Expected<RunStore, std::string> RunStore::open(std::string dir) {
  using Err = Unexpected<std::string>;
  RunStore store(std::move(dir));
  std::string text;
  if (const auto r = read_file(store.manifest_path(), text); !r.has_value()) {
    return Err{"cannot open store at " + store.dir_ + ": " + r.error()};
  }
  auto manifest = StoreManifest::from_text(text);
  if (!manifest.has_value()) {
    return Err{"store at " + store.dir_ + ": " + manifest.error()};
  }
  store.manifest_ = std::move(*manifest);
  return store;
}

Expected<bool, std::string> RunStore::save_manifest() {
  return write_file_atomic(manifest_path(), manifest_.to_text());
}

Expected<TestSequence, std::string> RunStore::load_sequence() const {
  using Err = Unexpected<std::string>;
  std::ifstream in(sequence_path(), std::ios::binary);
  if (!in) {
    return Err{"cannot open " + sequence_path()};
  }
  try {
    return read_sequence(in);
  } catch (const std::exception& e) {
    return Err{sequence_path() + ": " + e.what()};
  }
}

Expected<bool, std::string> RunStore::append_sequence(
    const TestSequence& extra) {
  std::ofstream out(sequence_path(), std::ios::binary | std::ios::app);
  if (!out) {
    return Unexpected<std::string>{"cannot open " + sequence_path() +
                                   " for appending"};
  }
  write_sequence(out, extra,
                 "extension segment " +
                     std::to_string(manifest_.segment_lengths.size()));
  out.flush();
  if (!out) {
    return Unexpected<std::string>{"I/O error appending to " +
                                   sequence_path()};
  }
  return true;
}

Expected<StoreState, std::string> RunStore::load_state() const {
  using Err = Unexpected<std::string>;
  std::string text;
  if (const auto r = read_file(checkpoints_path(), text); !r.has_value()) {
    return Err{r.error()};
  }

  StoreState state;
  // Newest record per chunk wins; the map is keyed by chunk id.
  std::vector<std::string> lines;
  std::size_t start = 0;
  bool last_line_unterminated = false;
  while (start < text.size()) {
    const std::size_t nl = text.find('\n', start);
    if (nl == std::string::npos) {
      // No trailing newline: the final append was torn mid-line.
      lines.push_back(text.substr(start));
      last_line_unterminated = true;
      break;
    }
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  if (lines.empty()) {
    return Err{checkpoints_path() + ": empty checkpoint log"};
  }

  const auto init = parse_init_line(lines.front());
  if (!init.has_value()) {
    return Err{checkpoints_path() + " line 1: " + init.error()};
  }
  state.initial_status = *init;

  std::vector<ChunkCheckpoint> newest;  // index = chunk, empty slots marked
  std::vector<bool> have;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const bool last = i + 1 == lines.size();
    if (lines[i].empty()) {
      if (last) continue;
      return Err{checkpoints_path() + " line " + std::to_string(i + 1) +
                 ": empty record"};
    }
    auto ck = parse_checkpoint_line(lines[i]);
    if (!ck.has_value()) {
      if (last) continue;  // torn trailing write from a crash: drop it
      return Err{checkpoints_path() + " line " + std::to_string(i + 1) +
                 ": " + ck.error()};
    }
    if (last && last_line_unterminated) continue;  // torn but parseable
    const std::size_t c = ck->chunk;
    if (c >= newest.size()) {
      newest.resize(c + 1);
      have.resize(c + 1, false);
    }
    newest[c] = std::move(*ck);
    have[c] = true;
  }
  for (std::size_t c = 0; c < newest.size(); ++c) {
    if (have[c]) state.checkpoints.push_back(std::move(newest[c]));
  }
  return state;
}

void RunStore::append_checkpoint(const ChunkCheckpoint& checkpoint) {
  const std::string line = serialize_checkpoint_line(checkpoint);
  const Stopwatch write_timer;
  append_line_or_throw(checkpoints_path(), line);
  if (telemetry_ != nullptr) {
    obs::MetricsRegistry& m = telemetry_->metrics;
    m.counter("store.checkpoint_writes").add(1);
    m.counter("store.checkpoint_bytes").add(line.size() + 1);  // + newline
    m.histogram("store.checkpoint_write_seconds",
                {1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0})
        .observe(write_timer.elapsed_seconds());
  }
  obs::log_event(telemetry_, obs::LogLevel::Debug, "store.checkpoint.flush",
                 {obs::LogField::u64("frame", checkpoint.frame),
                  obs::LogField::boolean("complete", checkpoint.complete),
                  obs::LogField::u64("bytes", line.size() + 1),
                  obs::LogField::f64("write_s",
                                     write_timer.elapsed_seconds())});
}

void RunStore::append_event(const std::string& json_object) {
  const Stopwatch write_timer;
  append_line_or_throw(events_path(), json_object);
  if (telemetry_ != nullptr) {
    obs::MetricsRegistry& m = telemetry_->metrics;
    m.counter("store.event_writes").add(1);
    m.counter("store.event_bytes").add(json_object.size() + 1);  // + newline
    m.histogram("store.event_write_seconds",
                {1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0})
        .observe(write_timer.elapsed_seconds());
  }
}

Expected<bool, std::string> RunStore::write_report(const std::string& json) {
  return write_file_atomic(report_path(), json);
}

std::string RunStore::manifest_path() const {
  return (fs::path(dir_) / "manifest.txt").string();
}
std::string RunStore::sequence_path() const {
  return (fs::path(dir_) / "sequence.txt").string();
}
std::string RunStore::checkpoints_path() const {
  return (fs::path(dir_) / "checkpoints.log").string();
}
std::string RunStore::events_path() const {
  return (fs::path(dir_) / "events.jsonl").string();
}
std::string RunStore::report_path() const {
  return (fs::path(dir_) / "report.json").string();
}

}  // namespace motsim
