#ifndef MOTSIM_STORE_CAMPAIGN_H
#define MOTSIM_STORE_CAMPAIGN_H

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "core/hybrid_sim.h"
#include "core/options.h"
#include "core/progress.h"
#include "faults/fault.h"
#include "faults/report.h"
#include "tpg/sequences.h"
#include "util/expected.h"

namespace motsim {

class Netlist;

/// Checkpoint interval substituted when a campaign is started with
/// checkpoint_interval == 0 (K = 0 would disable resumability, which
/// defeats the point of a store).
inline constexpr std::size_t kDefaultCampaignInterval = 32;

/// Outcome of one campaign invocation (fresh, resumed or extended).
struct CampaignResult {
  /// Final per-fault classification, global fault-list order.
  std::vector<FaultStatus> status;
  /// 1-based global detection frame per fault; 0 = never. Frames keep
  /// counting across extensions (an extension detection reports its
  /// position in the concatenated sequence).
  std::vector<std::uint32_t> detect_frame;
  /// Faults the frozen ID_X-red pre-classification removed (excludes
  /// the statically pruned ones below).
  std::size_t x_redundant = 0;
  /// Faults the sequence-independent static analysis removed before
  /// ID_X-red ran (SimOptions::analysis; frozen in the INIT record like
  /// the X-redundant verdicts).
  std::size_t static_x_redundant = 0;
  /// Faults the implication engine proved untestable by any sequence
  /// (SimOptions::analysis; disjoint from static_x_redundant — the
  /// engine only upgrades faults the structural pass left Undetected).
  std::size_t static_untestable = 0;
  /// Total frames of the campaign sequence (all segments).
  std::size_t frames_total = 0;
  /// Merged engine counters of THIS invocation (a resumed invocation
  /// counts only the frames it actually simulated).
  HybridResult sym;
  /// True when this invocation continued persisted state instead of
  /// starting from frame 0.
  bool resumed = false;

  [[nodiscard]] CoverageSummary summary() const {
    return CoverageSummary::from_status(status);
  }
};

/// Checkpointed fault-simulation campaigns on top of the run store.
///
/// A campaign is NOT the three-stage run_pipeline flow — it is defined
/// so that kill/resume and incremental extension are *exactly*
/// reproducible:
///
///  - ID_X-red runs once, on the base sequence, and its verdict is
///    frozen in the store's INIT record. X-redundant faults are
///    terminal for the campaign's lifetime: they are never simulated
///    (the pipeline's symbolic re-enablement of X-redundant faults is
///    intentionally absent — an extension would otherwise have to
///    re-simulate them from frame 0). X-redundancy is a property of
///    the sequence, so an extension could in principle make a frozen
///    X-redundant fault detectable; the campaign deliberately keeps
///    the verdict, trading a (typically tiny) coverage under-report
///    for never re-simulating the class. Coverage therefore remains a
///    sound lower bound — no detection is ever falsely claimed; see
///    docs/CHECKPOINT.md.
///  - There is no standalone three-valued stage: every live fault goes
///    through the hybrid symbolic engine (whose fallback windows
///    provide the three-valued machinery when space demands it).
///  - The symbolic stage always runs through ParallelSymSim — also for
///    threads == 1 — so the chunk partition, and therefore every
///    result, is identical for every thread count.
///
/// All three entry points return a clear error string instead of
/// partial state: nothing was simulated unless the result has a value
/// (a checkpoint-sink failure aborts mid-run, but then the store holds
/// exactly the checkpoints persisted so far and a later resume
/// continues from them).
///
/// `tap`, when given, receives every checkpoint *after* it is
/// persisted; the resume tests throw from the tap to simulate a crash
/// between two checkpoint writes.

/// Starts a fresh campaign in `store_dir` (created; must not already
/// hold a campaign). `options.checkpoint_interval == 0` is replaced by
/// kDefaultCampaignInterval. Requires run_symbolic and a fully
/// specified (X-free), non-empty sequence.
[[nodiscard]] Expected<CampaignResult, std::string> run_campaign(
    const Netlist& netlist, const std::vector<Fault>& faults,
    const TestSequence& sequence, const SimOptions& options,
    const std::string& store_dir, ProgressSink* progress = nullptr,
    CheckpointSink* tap = nullptr);

/// Resumes the campaign persisted in `store_dir` from its newest
/// checkpoints. Validates the store's fingerprints against `netlist`,
/// `faults` and the stored options and refuses on any mismatch.
/// `threads` (if set) overrides the recorded thread count — results do
/// not depend on it. Resuming a completed campaign is a no-op that
/// returns the stored result.
/// `telemetry` (optional) observes the resumed run exactly like
/// SimOptions::telemetry does for run_campaign — resume takes no
/// SimOptions, so the context is passed directly. Attaching it never
/// affects results or the store's fingerprints.
/// `sim3_backend` (if set) overrides the recorded three-valued backend
/// for the fallback windows of this invocation — like `threads`, the
/// backend never affects results, so a campaign checkpointed under one
/// backend resumes bit-identically under the other.
[[nodiscard]] Expected<CampaignResult, std::string> resume_campaign(
    const Netlist& netlist, const std::vector<Fault>& faults,
    const std::string& store_dir,
    std::optional<std::size_t> threads = std::nullopt,
    ProgressSink* progress = nullptr, CheckpointSink* tap = nullptr,
    obs::Telemetry* telemetry = nullptr,
    std::optional<Sim3Backend> sim3_backend = std::nullopt);

/// Appends `extra_frames` to a *completed* campaign and simulates only
/// the extension — detected and X-redundant faults are never
/// re-evaluated; live faults continue from the final checkpoints. When
/// the checkpoint interval divides every previous segment boundary,
/// the result is bit-identical to a fresh campaign over the
/// concatenated sequence (see docs/CHECKPOINT.md for the alignment
/// argument).
[[nodiscard]] Expected<CampaignResult, std::string> extend_campaign(
    const Netlist& netlist, const std::vector<Fault>& faults,
    const TestSequence& extra_frames, const std::string& store_dir,
    std::optional<std::size_t> threads = std::nullopt,
    ProgressSink* progress = nullptr, CheckpointSink* tap = nullptr,
    obs::Telemetry* telemetry = nullptr,
    std::optional<Sim3Backend> sim3_backend = std::nullopt);

}  // namespace motsim

#endif  // MOTSIM_STORE_CAMPAIGN_H
