#include "store/campaign.h"

#include <sstream>
#include <utility>

#include <cstdio>

#include "analysis/implication.h"
#include "analysis/static_xred.h"
#include "circuit/netlist.h"
#include "core/parallel_sym_sim.h"
#include "core/xred.h"
#include "obs/telemetry.h"
#include "store/fingerprint.h"
#include "store/run_store.h"
#include "util/stopwatch.h"

namespace motsim {

namespace {

using Err = Unexpected<std::string>;

/// The time base of a campaign invocation's events.jsonl "t" fields:
/// seconds since the entry point started. When a Telemetry context is
/// attached its tracer epoch is used instead, so the event stream and
/// the trace share one clock and can be correlated record-for-record.
class EventClock {
 public:
  explicit EventClock(obs::Telemetry* telemetry) : telemetry_(telemetry) {}

  [[nodiscard]] double now() const {
    return telemetry_ != nullptr ? telemetry_->seconds_since_start()
                                 : epoch_.elapsed_seconds();
  }

  /// `,"t":<seconds>` — appended to every event object. Fixed-point
  /// with microsecond resolution; old readers ignore the extra field.
  [[nodiscard]] std::string t_field() const {
    char buffer[48];
    std::snprintf(buffer, sizeof(buffer), ",\"t\":%.6f", now());
    return buffer;
  }

 private:
  obs::Telemetry* telemetry_;
  Stopwatch epoch_;
};

bool sequence_has_x(const TestSequence& sequence) {
  for (const auto& frame : sequence) {
    for (Val3 v : frame) {
      if (!is_binary(v)) return true;
    }
  }
  return false;
}

/// Persists every checkpoint, mirrors it to events.jsonl, then hands
/// it to the test tap (which may throw to simulate a crash *after*
/// the persisted write).
class StoreCheckpointSink final : public CheckpointSink {
 public:
  StoreCheckpointSink(RunStore& store, CheckpointSink* tap,
                      const EventClock* clock, obs::Telemetry* telemetry)
      : store_(&store), tap_(tap), clock_(clock), telemetry_(telemetry) {}

  void on_checkpoint(const ChunkCheckpoint& ck) override {
    store_->append_checkpoint(ck);
    std::size_t live = 0;
    for (FaultStatus s : ck.status) {
      if (s == FaultStatus::Undetected) ++live;
    }
    std::ostringstream os;
    os << "{\"event\":\"checkpoint\",\"chunk\":" << ck.chunk
       << ",\"frame\":" << ck.frame << ",\"in_window\":"
       << (ck.in_window ? "true" : "false")
       << ",\"complete\":" << (ck.complete ? "true" : "false")
       << ",\"live\":" << live << clock_->t_field() << "}";
    store_->append_event(os.str());
    if (telemetry_ != nullptr) telemetry_->tracer.instant("event.checkpoint");
    if (tap_ != nullptr) tap_->on_checkpoint(ck);
  }

 private:
  RunStore* store_;
  CheckpointSink* tap_;
  const EventClock* clock_;
  obs::Telemetry* telemetry_;
};

/// Forwards to the user's sink (if any) and logs detections and
/// fallback windows to events.jsonl. Called under the parallel
/// driver's sink mutex, so file appends never interleave.
class StoreProgressSink final : public ProgressSink {
 public:
  StoreProgressSink(RunStore& store, ProgressSink* user,
                    const EventClock* clock, obs::Telemetry* telemetry)
      : store_(&store), user_(user), clock_(clock), telemetry_(telemetry) {}

  void on_frame(std::size_t frame, std::size_t live_nodes,
                std::size_t faults_remaining) override {
    if (user_ != nullptr) user_->on_frame(frame, live_nodes, faults_remaining);
  }

  void on_fallback_window(std::size_t frame,
                          std::size_t window_frames) override {
    std::ostringstream os;
    os << "{\"event\":\"fallback_window\",\"frame\":" << frame
       << ",\"frames\":" << window_frames << clock_->t_field() << "}";
    store_->append_event(os.str());
    if (telemetry_ != nullptr) {
      telemetry_->tracer.instant("event.fallback_window");
    }
    if (user_ != nullptr) user_->on_fallback_window(frame, window_frames);
  }

  void on_fault_detected(std::size_t fault_index,
                         std::uint32_t frame) override {
    std::ostringstream os;
    os << "{\"event\":\"fault_detected\",\"fault\":" << fault_index
       << ",\"frame\":" << frame << clock_->t_field() << "}";
    store_->append_event(os.str());
    if (telemetry_ != nullptr) {
      telemetry_->tracer.instant("event.fault_detected");
    }
    if (user_ != nullptr) user_->on_fault_detected(fault_index, frame);
  }

 private:
  RunStore* store_;
  ProgressSink* user_;
  const EventClock* clock_;
  obs::Telemetry* telemetry_;
};

std::string lifecycle_event(const char* event, std::size_t frames,
                            std::size_t live, const EventClock& clock) {
  std::ostringstream os;
  os << "{\"event\":\"" << event << "\",\"sequence_length\":" << frames
     << ",\"live_faults\":" << live << clock.t_field() << "}";
  return os.str();
}

/// One lifecycle record, mirrored into the tracer (when attached) so
/// events.jsonl and the trace stream stay record-for-record alignable.
void log_lifecycle(RunStore& store, obs::Telemetry* telemetry,
                   const EventClock& clock, const char* event,
                   std::size_t frames, std::size_t live) {
  store.append_event(lifecycle_event(event, frames, live, clock));
  if (telemetry != nullptr) {
    telemetry->tracer.instant(std::string("event.") + event);
  }
}

std::size_t count_live(const std::vector<FaultStatus>& status) {
  std::size_t live = 0;
  for (FaultStatus s : status) {
    if (s == FaultStatus::Undetected) ++live;
  }
  return live;
}

/// Validates the caller's workload against the store's fingerprints.
Expected<bool, std::string> check_fingerprints(const StoreManifest& m,
                                               const Netlist& netlist,
                                               const std::vector<Fault>& faults,
                                               const std::string& dir) {
  if (fingerprint_netlist(netlist) != m.fp_netlist) {
    return Err{"store at " + dir +
               " was created for a different netlist (fingerprint mismatch; "
               "circuit '" + m.circuit + "')"};
  }
  if (fingerprint_faults(faults) != m.fp_faults) {
    return Err{"store at " + dir +
               " was created for a different fault list (fingerprint "
               "mismatch; stored " + std::to_string(m.faults) + " faults, "
               "caller has " + std::to_string(faults.size()) + ")"};
  }
  if (fingerprint_options(m.options) != m.fp_options) {
    return Err{"store at " + dir +
               " has an inconsistent manifest (options fingerprint "
               "mismatch — manifest edited by hand?)"};
  }
  return true;
}

/// The shared simulation tail of all three entry points: run the
/// sharded engine over `sequence`, persist checkpoints, finish the
/// store (report.json, manifest complete flag) and assemble the
/// result.
Expected<CampaignResult, std::string> simulate_and_finish(
    RunStore& store, const Netlist& netlist, const std::vector<Fault>& faults,
    const TestSequence& sequence, std::vector<FaultStatus> initial_status,
    std::vector<ChunkCheckpoint> resume, bool resumed,
    std::optional<std::size_t> threads, ProgressSink* progress,
    CheckpointSink* tap, obs::Telemetry* telemetry, const EventClock& clock,
    std::optional<Sim3Backend> sim3_backend = std::nullopt) {
  store.set_telemetry(telemetry);
  const SimOptions& opts = store.manifest().options;
  ParallelSymConfig pc;
  pc.hybrid = opts.to_hybrid_config();
  pc.threads = threads.value_or(opts.threads);
  pc.chunk_size = opts.chunk_size;
  // Like the thread count, the fallback-window backend never affects
  // results, so an invocation may override what the manifest recorded.
  if (sim3_backend.has_value()) pc.hybrid.sim3_backend = *sim3_backend;

  CampaignResult result;
  result.resumed = resumed;
  for (FaultStatus s : initial_status) {
    if (s == FaultStatus::StaticXRed) ++result.static_x_redundant;
    if (s == FaultStatus::StaticUntestable) ++result.static_untestable;
  }
  result.x_redundant = initial_status.size() - count_live(initial_status) -
                       result.static_x_redundant - result.static_untestable;
  result.frames_total = sequence.size();

  log_lifecycle(store, telemetry, clock, resumed ? "resume" : "run_start",
                sequence.size(), count_live(initial_status));

  StoreCheckpointSink ck_sink(store, tap, &clock, telemetry);
  StoreProgressSink ev_sink(store, progress, &clock, telemetry);
  try {
    ParallelSymSim sym(netlist, faults, pc);
    sym.set_initial_status(std::move(initial_status));
    sym.set_progress(&ev_sink);
    sym.set_checkpoint_sink(&ck_sink);
    sym.set_telemetry(telemetry);
    if (!resume.empty()) sym.set_resume(std::move(resume));
    if (opts.analysis) {
      // Recomputed from the netlist on every entry point (run, resume,
      // extend) — the manifest's analysis flag, not the invocation,
      // decides, so a resumed run ties exactly what the original did.
      const ImplicationEngine eng(netlist);
      if (eng.tied_constant_count() != 0) {
        sym.set_tied_constants(eng.tied_constants());
      }
      if (telemetry != nullptr) {
        telemetry->metrics.counter("analysis.implications_learned")
            .add(eng.stats().learned_implications);
        telemetry->metrics.counter("analysis.faults_pruned")
            .add(result.static_x_redundant + result.static_untestable);
        telemetry->metrics.counter("analysis.constants_tied")
            .add(eng.tied_constant_count());
      }
    }
    result.sym = sym.run(sequence);
  } catch (const std::exception& e) {
    // The store keeps every checkpoint persisted before the failure;
    // a later resume_campaign continues from them.
    return Err{std::string("campaign aborted: ") + e.what()};
  }

  result.status = result.sym.status;
  result.detect_frame = result.sym.detect_frame;

  const FaultReport report =
      FaultReport::build(netlist, faults, result.status, result.detect_frame);
  if (const auto w = store.write_report(report.to_json()); !w.has_value()) {
    return Err{w.error()};
  }
  store.manifest().complete = true;
  if (const auto w = store.save_manifest(); !w.has_value()) {
    return Err{w.error()};
  }
  log_lifecycle(store, telemetry, clock, "run_complete", sequence.size(),
                count_live(result.status));
  return result;
}

}  // namespace

Expected<CampaignResult, std::string> run_campaign(
    const Netlist& netlist, const std::vector<Fault>& faults,
    const TestSequence& sequence, const SimOptions& options,
    const std::string& store_dir, ProgressSink* progress,
    CheckpointSink* tap) {
  const auto checked = options.validate();
  if (!checked.has_value()) {
    return Err{"SimOptions: " + checked.error()};
  }
  SimOptions opts = *checked;
  if (!opts.run_symbolic) {
    return Err{"campaigns require the symbolic engine "
               "(run_symbolic=false / --no-symbolic is incompatible with "
               "--store)"};
  }
  if (sequence.empty()) {
    return Err{"campaign sequence must not be empty"};
  }
  if (sequence_has_x(sequence)) {
    return Err{"campaign sequences must be fully specified "
               "(X inputs are only supported by the plain pipeline)"};
  }
  for (const auto& frame : sequence) {
    if (frame.size() != netlist.input_count()) {
      return Err{"campaign sequence frame width " +
                 std::to_string(frame.size()) + " does not match the " +
                 std::to_string(netlist.input_count()) + " circuit inputs"};
    }
  }
  if (opts.checkpoint_interval == 0) {
    opts.checkpoint_interval = kDefaultCampaignInterval;
  }

  std::vector<FaultStatus> initial(faults.size(), FaultStatus::Undetected);
  if (opts.analysis) {
    initial = StaticXRedAnalysis(netlist).classify(faults);
    // Implication-engine untestability upgrades only the leftovers, so
    // the StaticXRed and StaticUntestable buckets never overlap.
    ImplicationEngine(netlist).classify(faults, initial);
  }
  if (opts.run_xred) {
    const std::vector<FaultStatus> xs =
        run_id_x_red(netlist, sequence).classify(faults);
    for (std::size_t i = 0; i < faults.size(); ++i) {
      // Statically pruned faults keep the stronger verdict.
      if (initial[i] == FaultStatus::Undetected) initial[i] = xs[i];
    }
  }

  obs::Telemetry* const telemetry = opts.telemetry;
  const EventClock clock(telemetry);

  StoreManifest manifest;
  manifest.circuit = netlist.name();
  manifest.inputs = netlist.input_count();
  manifest.dffs = netlist.dff_count();
  manifest.faults = faults.size();
  manifest.seed = opts.seed;
  manifest.complete = false;
  manifest.sequence_length = sequence.size();
  manifest.segment_lengths = {sequence.size()};
  manifest.fp_netlist = fingerprint_netlist(netlist);
  manifest.fp_faults = fingerprint_faults(faults);
  manifest.fp_options = fingerprint_options(opts);
  manifest.fp_sequence = fingerprint_sequence(sequence);
  manifest.options = opts;
  // The manifest describes the *campaign*, not this invocation: the
  // telemetry observer is invocation state (and a dangling pointer
  // hazard), so the stored copy never carries it. The text format
  // skips it anyway; this keeps the in-memory manifest honest too.
  manifest.options.telemetry = nullptr;

  auto store = RunStore::create(store_dir, std::move(manifest), sequence,
                                initial);
  if (!store.has_value()) return Err{store.error()};

  return simulate_and_finish(*store, netlist, faults, sequence,
                             std::move(initial), {}, /*resumed=*/false,
                             std::nullopt, progress, tap, telemetry, clock);
}

Expected<CampaignResult, std::string> resume_campaign(
    const Netlist& netlist, const std::vector<Fault>& faults,
    const std::string& store_dir, std::optional<std::size_t> threads,
    ProgressSink* progress, CheckpointSink* tap, obs::Telemetry* telemetry,
    std::optional<Sim3Backend> sim3_backend) {
  const EventClock clock(telemetry);
  auto store = RunStore::open(store_dir);
  if (!store.has_value()) return Err{store.error()};
  if (const auto ok = check_fingerprints(store->manifest(), netlist, faults,
                                         store_dir);
      !ok.has_value()) {
    return Err{ok.error()};
  }

  const auto sequence = store->load_sequence();
  if (!sequence.has_value()) return Err{sequence.error()};
  if (fingerprint_sequence(*sequence) != store->manifest().fp_sequence ||
      sequence->size() != store->manifest().sequence_length) {
    return Err{"store at " + store_dir +
               ": sequence.txt does not match the manifest (fingerprint or "
               "length mismatch)"};
  }

  auto state = store->load_state();
  if (!state.has_value()) return Err{state.error()};
  if (state->initial_status.size() != faults.size()) {
    return Err{"store at " + store_dir + ": INIT record covers " +
               std::to_string(state->initial_status.size()) +
               " faults, caller has " + std::to_string(faults.size())};
  }

  // A resumed invocation restarts from checkpoints, so the store is
  // in-progress again until simulate_and_finish completes it.
  store->manifest().complete = false;

  return simulate_and_finish(*store, netlist, faults, *sequence,
                             std::move(state->initial_status),
                             std::move(state->checkpoints), /*resumed=*/true,
                             threads, progress, tap, telemetry, clock,
                             sim3_backend);
}

Expected<CampaignResult, std::string> extend_campaign(
    const Netlist& netlist, const std::vector<Fault>& faults,
    const TestSequence& extra_frames, const std::string& store_dir,
    std::optional<std::size_t> threads, ProgressSink* progress,
    CheckpointSink* tap, obs::Telemetry* telemetry,
    std::optional<Sim3Backend> sim3_backend) {
  const EventClock clock(telemetry);
  if (extra_frames.empty()) {
    return Err{"extension must add at least one frame"};
  }
  if (sequence_has_x(extra_frames)) {
    return Err{"extension frames must be fully specified (no X inputs)"};
  }
  for (const auto& frame : extra_frames) {
    if (frame.size() != netlist.input_count()) {
      return Err{"extension frame width " + std::to_string(frame.size()) +
                 " does not match the " +
                 std::to_string(netlist.input_count()) + " circuit inputs"};
    }
  }

  auto store = RunStore::open(store_dir);
  if (!store.has_value()) return Err{store.error()};
  if (const auto ok = check_fingerprints(store->manifest(), netlist, faults,
                                         store_dir);
      !ok.has_value()) {
    return Err{ok.error()};
  }
  if (!store->manifest().complete) {
    return Err{"store at " + store_dir +
               " holds an incomplete campaign; resume it before extending"};
  }

  const auto base = store->load_sequence();
  if (!base.has_value()) return Err{base.error()};
  if (fingerprint_sequence(*base) != store->manifest().fp_sequence ||
      base->size() != store->manifest().sequence_length) {
    return Err{"store at " + store_dir +
               ": sequence.txt does not match the manifest (fingerprint or "
               "length mismatch)"};
  }

  auto state = store->load_state();
  if (!state.has_value()) return Err{state.error()};
  if (state->initial_status.size() != faults.size()) {
    return Err{"store at " + store_dir + ": INIT record covers " +
               std::to_string(state->initial_status.size()) +
               " faults, caller has " + std::to_string(faults.size())};
  }

  // Commit the extension to the store before simulating: sequence
  // first, then the manifest (atomically). A crash in between leaves
  // extra frames in sequence.txt that the manifest does not know —
  // detected on the next open via the sequence fingerprint check.
  if (const auto w = store->append_sequence(extra_frames); !w.has_value()) {
    return Err{w.error()};
  }
  TestSequence full = *base;
  full.insert(full.end(), extra_frames.begin(), extra_frames.end());
  store->manifest().sequence_length = full.size();
  store->manifest().segment_lengths.push_back(extra_frames.size());
  store->manifest().fp_sequence = fingerprint_sequence(full);
  store->manifest().complete = false;
  if (const auto w = store->save_manifest(); !w.has_value()) {
    return Err{w.error()};
  }
  store->set_telemetry(telemetry);
  log_lifecycle(*store, telemetry, clock, "extend", full.size(),
                count_live(state->initial_status));

  return simulate_and_finish(*store, netlist, faults, full,
                             std::move(state->initial_status),
                             std::move(state->checkpoints), /*resumed=*/true,
                             threads, progress, tap, telemetry, clock,
                             sim3_backend);
}

}  // namespace motsim
