#ifndef MOTSIM_STORE_RUN_STORE_H
#define MOTSIM_STORE_RUN_STORE_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "core/options.h"
#include "faults/fault.h"
#include "tpg/sequences.h"
#include "util/expected.h"

namespace motsim {

/// On-disk layout of a campaign store (one directory per campaign):
///
///   manifest.txt      key-value metadata + fingerprints (atomic
///                     rewrite via tmp+rename)
///   sequence.txt      the test sequence, tpg/sequence_io text format;
///                     extensions append frames
///   checkpoints.log   append-only, line-based: one INIT record (the
///                     ID_X-red pre-classification, frozen for the
///                     campaign's lifetime) followed by CKPT records,
///                     newest-wins per chunk; every record ends in an
///                     "END" token so a torn trailing write (crash
///                     mid-append) is detected and dropped on load
///   events.jsonl      append-only event log (one JSON object per
///                     line): lifecycle, fallback windows, detections,
///                     checkpoints
///   report.json       full per-fault FaultReport, written when a
///                     campaign segment completes
///
/// The formats are versioned through `StoreManifest::version` and the
/// INIT record's leading version field; readers reject versions they
/// do not know.

/// Parsed manifest.txt. `options.threads` is recorded for provenance
/// only — a campaign may be resumed with any thread count and results
/// do not change (see core/parallel_sym_sim.h).
struct StoreManifest {
  int version = 1;
  std::string circuit;
  std::size_t inputs = 0;
  std::size_t dffs = 0;
  std::size_t faults = 0;
  std::uint64_t seed = 1;
  bool complete = false;
  std::size_t sequence_length = 0;
  /// Length of each campaign segment: the base run, then one entry
  /// per --extend-vectors extension. Sums to sequence_length.
  std::vector<std::size_t> segment_lengths;
  std::uint64_t fp_netlist = 0;
  std::uint64_t fp_faults = 0;
  std::uint64_t fp_options = 0;
  std::uint64_t fp_sequence = 0;
  SimOptions options;

  [[nodiscard]] std::string to_text() const;
  [[nodiscard]] static Expected<StoreManifest, std::string> from_text(
      const std::string& text);
};

/// Everything checkpoints.log holds after recovery: the frozen initial
/// classification and the newest checkpoint per chunk (ascending chunk
/// order).
struct StoreState {
  std::vector<FaultStatus> initial_status;
  std::vector<ChunkCheckpoint> checkpoints;
};

/// Serializes one checkpoint as a single CKPT line (no trailing
/// newline). parse_checkpoint_line inverts it; both are exposed for
/// the store-format round-trip fuzzer.
[[nodiscard]] std::string serialize_checkpoint_line(
    const ChunkCheckpoint& checkpoint);
[[nodiscard]] Expected<ChunkCheckpoint, std::string> parse_checkpoint_line(
    const std::string& line);

/// Handle on one campaign directory. Factories validate; the append_*
/// methods are called from simulation callbacks and therefore throw
/// std::runtime_error on I/O failure (a failing store must abort the
/// run, not silently drop state).
class RunStore {
 public:
  /// Creates `dir` (parents included) and writes manifest, sequence
  /// and the INIT record. Fails if `dir` already contains a manifest.
  [[nodiscard]] static Expected<RunStore, std::string> create(
      std::string dir, StoreManifest manifest, const TestSequence& sequence,
      const std::vector<FaultStatus>& initial_status);

  /// Opens an existing store and parses its manifest.
  [[nodiscard]] static Expected<RunStore, std::string> open(std::string dir);

  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }
  [[nodiscard]] const StoreManifest& manifest() const noexcept {
    return manifest_;
  }
  [[nodiscard]] StoreManifest& manifest() noexcept { return manifest_; }

  /// Atomically rewrites manifest.txt (tmp + rename).
  [[nodiscard]] Expected<bool, std::string> save_manifest();

  [[nodiscard]] Expected<TestSequence, std::string> load_sequence() const;

  /// Appends frames to sequence.txt (the caller updates and saves the
  /// manifest's lengths/fingerprint).
  [[nodiscard]] Expected<bool, std::string> append_sequence(
      const TestSequence& extra);

  /// Replays checkpoints.log: INIT + newest CKPT per chunk. A torn
  /// final line (no END / no newline) is dropped; corruption anywhere
  /// else is an error.
  [[nodiscard]] Expected<StoreState, std::string> load_state() const;

  /// Appends one CKPT record. Throws std::runtime_error on I/O error.
  void append_checkpoint(const ChunkCheckpoint& checkpoint);

  /// Appends one pre-formatted JSON object line to events.jsonl.
  /// Throws std::runtime_error on I/O error.
  void append_event(const std::string& json_object);

  /// Telemetry context measuring this store's writes (checkpoint /
  /// event write counts, bytes and latency histograms — the store.*
  /// metrics of docs/OBSERVABILITY.md). nullptr = off.
  void set_telemetry(obs::Telemetry* telemetry) noexcept {
    telemetry_ = telemetry;
  }

  [[nodiscard]] Expected<bool, std::string> write_report(
      const std::string& json);

  [[nodiscard]] std::string manifest_path() const;
  [[nodiscard]] std::string sequence_path() const;
  [[nodiscard]] std::string checkpoints_path() const;
  [[nodiscard]] std::string events_path() const;
  [[nodiscard]] std::string report_path() const;

 private:
  explicit RunStore(std::string dir) : dir_(std::move(dir)) {}

  std::string dir_;
  StoreManifest manifest_;
  obs::Telemetry* telemetry_ = nullptr;
};

}  // namespace motsim

#endif  // MOTSIM_STORE_RUN_STORE_H
