#ifndef MOTSIM_STORE_FINGERPRINT_H
#define MOTSIM_STORE_FINGERPRINT_H

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/netlist.h"
#include "core/options.h"
#include "faults/fault.h"
#include "tpg/sequences.h"

namespace motsim {

/// 64-bit FNV-1a content fingerprints used by the run store to reject
/// a resume against a changed workload. Not cryptographic — they guard
/// against accidents (edited netlist file, regenerated fault list,
/// different option set), not adversaries.
///
/// All four fingerprints are pure functions of their input's logical
/// content: equal inputs hash equal across platforms and runs.

/// Incremental FNV-1a 64 accumulator. Exposed so callers can fold
/// several pieces (and tests can cross-check the file format fuzzer).
class Fnv1a64 {
 public:
  void update(const void* data, std::size_t size) noexcept;
  void update(const std::string& s) noexcept;
  void update_u64(std::uint64_t v) noexcept;  ///< little-endian fold

  [[nodiscard]] std::uint64_t digest() const noexcept { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ull;
};

/// Structure + names: gate types, fanins, input/output/dff order and
/// every node name. Two netlists with the same graph but renamed nodes
/// fingerprint differently (fault lists refer to names in reports).
[[nodiscard]] std::uint64_t fingerprint_netlist(const Netlist& netlist);

/// Fault sites and stuck values, in list order (order is identity: the
/// store's per-fault records are positional).
[[nodiscard]] std::uint64_t fingerprint_faults(
    const std::vector<Fault>& faults);

/// Every option that influences campaign *results*: strategy, layout,
/// limits, checkpoint interval, chunk size and the BDD tuning knobs.
/// Deliberately excluded: `threads` (results are thread-count
/// independent by construction) and `seed` (the sequence itself is
/// fingerprinted; the seed is provenance, not behaviour).
[[nodiscard]] std::uint64_t fingerprint_options(const SimOptions& options);

/// Frames and values, in order.
[[nodiscard]] std::uint64_t fingerprint_sequence(
    const TestSequence& sequence);

/// 16-digit lower-case hex, zero-padded — the manifest encoding.
[[nodiscard]] std::string fingerprint_to_hex(std::uint64_t fp);

}  // namespace motsim

#endif  // MOTSIM_STORE_FINGERPRINT_H
