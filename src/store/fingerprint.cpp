#include "store/fingerprint.h"

#include <cstdio>

namespace motsim {

void Fnv1a64::update(const void* data, std::size_t size) noexcept {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    hash_ ^= bytes[i];
    hash_ *= 0x100000001b3ull;
  }
}

void Fnv1a64::update(const std::string& s) noexcept {
  // Length prefix keeps concatenated strings unambiguous ("ab","c" vs
  // "a","bc").
  update_u64(s.size());
  update(s.data(), s.size());
}

void Fnv1a64::update_u64(std::uint64_t v) noexcept {
  unsigned char bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<unsigned char>(v >> (8 * i));
  }
  update(bytes, 8);
}

std::uint64_t fingerprint_netlist(const Netlist& netlist) {
  Fnv1a64 h;
  h.update(netlist.name());
  h.update_u64(netlist.node_count());
  for (NodeIndex n = 0; n < netlist.node_count(); ++n) {
    const Gate& g = netlist.gate(n);
    h.update_u64(static_cast<std::uint64_t>(g.type));
    h.update(g.name);
    h.update_u64(g.fanins.size());
    for (NodeIndex f : g.fanins) h.update_u64(f);
  }
  h.update_u64(netlist.inputs().size());
  for (NodeIndex n : netlist.inputs()) h.update_u64(n);
  h.update_u64(netlist.outputs().size());
  for (NodeIndex n : netlist.outputs()) h.update_u64(n);
  h.update_u64(netlist.dffs().size());
  for (NodeIndex n : netlist.dffs()) h.update_u64(n);
  return h.digest();
}

std::uint64_t fingerprint_faults(const std::vector<Fault>& faults) {
  Fnv1a64 h;
  h.update_u64(faults.size());
  for (const Fault& f : faults) {
    h.update_u64(f.site.node);
    h.update_u64(f.site.pin);
    h.update_u64(f.stuck_value ? 1 : 0);
  }
  return h.digest();
}

std::uint64_t fingerprint_options(const SimOptions& options) {
  // Enumerates configuration fields explicitly: observer fields
  // (options.telemetry, like the seed-independent threads count) are
  // deliberately NOT hashed — attaching telemetry must never change a
  // store's identity or block a resume.
  Fnv1a64 h;
  // Fingerprint schema version. Analysis-on runs moved to version 3
  // when the implication engine joined stage 0 (it can add
  // StaticUntestable INIT records an older reader would reject), so
  // only analysis-on stores were invalidated; analysis-off stores
  // hash exactly as before.
  h.update_u64(options.analysis ? 3 : 2);
  h.update_u64(options.analysis ? 1 : 0);
  h.update_u64(options.run_xred ? 1 : 0);
  // The sim3 backend is excluded by contract — both backends are
  // bit-identical, so a store written under one must validate (and
  // resume) under the other. The constant keeps the slot the retired
  // parallel_sim3 flag occupied, so existing fingerprints stay valid.
  h.update_u64(0);
  // options.trim is excluded for the same reason: trimming is
  // bit-identical by construction, so a store written trimmed must
  // validate (and resume) untrimmed and vice versa. The manifest still
  // records the flag (opt_trim) because the parallel shard PARTITION —
  // not the results — depends on the cluster reorder it enables.
  // options.sgraph is excluded on the identical argument (the MOT/rMOT
  // downgrade is bit-identical by OBDD canonicity); the manifest
  // records opt_sgraph because the partition also folds the horizon
  // ordering in.
  h.update_u64(options.run_symbolic ? 1 : 0);
  h.update_u64(static_cast<std::uint64_t>(options.strategy));
  h.update_u64(static_cast<std::uint64_t>(options.layout));
  h.update_u64(options.node_limit);
  h.update_u64(options.fallback_frames);
  h.update_u64(options.hard_limit_factor);
  h.update_u64(options.checkpoint_interval);
  h.update_u64(options.chunk_size);
  h.update_u64(options.bdd_initial_capacity);
  h.update_u64(options.bdd_cache_size_log2);
  h.update_u64(options.bdd_auto_gc_floor);
  return h.digest();
}

std::uint64_t fingerprint_sequence(const TestSequence& sequence) {
  Fnv1a64 h;
  h.update_u64(sequence.size());
  for (const auto& frame : sequence) {
    h.update_u64(frame.size());
    for (Val3 v : frame) h.update_u64(static_cast<std::uint64_t>(v));
  }
  return h.digest();
}

std::string fingerprint_to_hex(std::uint64_t fp) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(fp));
  return std::string(buffer, 16);
}

}  // namespace motsim
