#ifndef MOTSIM_FAULTS_FAULT_H
#define MOTSIM_FAULTS_FAULT_H

#include <cstdint>
#include <string>

#include "circuit/netlist.h"

namespace motsim {

/// Pin value designating a fault on the output stem of a node (as
/// opposed to one of its input branches).
inline constexpr std::uint32_t kStemPin = 0xFFFFFFFFu;

/// A fault location ("lead" in the paper): either the output stem of a
/// node, or one specific input pin of a node (a fanout branch).
///
/// Stem and branch faults behave differently in the presence of
/// fanout: a branch fault perturbs only the one path through that pin,
/// a stem fault perturbs every branch.
struct FaultSite {
  NodeIndex node = kNoNode;
  std::uint32_t pin = kStemPin;

  [[nodiscard]] bool is_stem() const noexcept { return pin == kStemPin; }

  friend bool operator==(const FaultSite&, const FaultSite&) = default;
};

/// A single stuck-at fault.
struct Fault {
  FaultSite site;
  bool stuck_value = false;  ///< stuck-at-0 (false) or stuck-at-1 (true)

  friend bool operator==(const Fault&, const Fault&) = default;
};

/// Human-readable fault name, e.g. "G8/SA0" (stem) or "G8.in1/SA1"
/// (input branch).
[[nodiscard]] std::string fault_name(const Netlist& netlist, const Fault& f);

/// Classification assigned by the simulation pipeline. The order
/// mirrors the pipeline stages of the paper's experiments: ID_X-red
/// first, then three-valued simulation, then the symbolic strategies.
enum class FaultStatus : std::uint8_t {
  Undetected,     ///< not (yet) classified as detectable
  XRedundant,     ///< eliminated by ID_X-red (Section III)
  DetectedSim3,   ///< detected by three-valued simulation (X01)
  DetectedSot,    ///< detected by symbolic SOT
  DetectedRmot,   ///< detected by symbolic restricted MOT
  DetectedMot,    ///< detected by symbolic full MOT
  StaticXRed,     ///< eliminated by sequence-independent static
                  ///< analysis (StaticXRedAnalysis) — undetectable by
                  ///< any sequence, stronger than XRedundant
  StaticUntestable,  ///< proven untestable by the static implication
                     ///< engine (ImplicationEngine): conflicting
                     ///< mandatory activation assignments or a
                     ///< provably blocked propagation path — no input
                     ///< sequence detects it under any observation
                     ///< strategy
};

[[nodiscard]] const char* to_cstring(FaultStatus s) noexcept;

/// True for every Detected* state.
[[nodiscard]] constexpr bool is_detected(FaultStatus s) noexcept {
  return s == FaultStatus::DetectedSim3 || s == FaultStatus::DetectedSot ||
         s == FaultStatus::DetectedRmot || s == FaultStatus::DetectedMot;
}

}  // namespace motsim

#endif  // MOTSIM_FAULTS_FAULT_H
