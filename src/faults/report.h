#ifndef MOTSIM_FAULTS_REPORT_H
#define MOTSIM_FAULTS_REPORT_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "faults/fault.h"

namespace motsim {

/// Aggregated view of a fault-classification vector.
///
/// Coverage follows the paper's conventions: the three-valued SOT
/// number is a *lower bound*; the symbolic strategies refine it. The
/// X-redundant class counts faults undetectable by the given sequence
/// under three-valued logic (they may still be detected symbolically
/// when re-enabled for the symbolic stage).
struct CoverageSummary {
  std::size_t total = 0;
  std::size_t x_redundant = 0;
  /// Faults pruned by the sequence-independent static analysis
  /// (`--lint`). Counted separately from x_redundant and never against
  /// coverage: these faults stay in `total` but can never be detected,
  /// so enabling the analysis leaves coverage bit-identical.
  std::size_t static_x_redundant = 0;
  /// Faults the static implication engine proved untestable by any
  /// input sequence (FIRE-style fault-independent analysis). Like
  /// static_x_redundant: stays in `total`, never counted against
  /// coverage, and pruning it leaves detected sets bit-identical.
  std::size_t static_untestable = 0;
  std::size_t detected_3v = 0;
  std::size_t detected_sot = 0;
  std::size_t detected_rmot = 0;
  std::size_t detected_mot = 0;
  std::size_t undetected = 0;

  [[nodiscard]] std::size_t detected_total() const noexcept {
    return detected_3v + detected_sot + detected_rmot + detected_mot;
  }

  /// Fault coverage = detected / total (0 when the list is empty).
  [[nodiscard]] double coverage() const noexcept {
    return total == 0 ? 0.0
                      : static_cast<double>(detected_total()) /
                            static_cast<double>(total);
  }

  /// Builds the summary from a status vector.
  [[nodiscard]] static CoverageSummary from_status(
      const std::vector<FaultStatus>& status);

  /// Multi-line human-readable report.
  [[nodiscard]] std::string to_string() const;

  /// Single-line JSON object (for CI pipelines and scripts).
  [[nodiscard]] std::string to_json() const;
};

/// Lists the faults in a given status, formatted with fault_name.
[[nodiscard]] std::vector<std::string> faults_with_status(
    const Netlist& netlist, const std::vector<Fault>& faults,
    const std::vector<FaultStatus>& status, FaultStatus wanted);

/// Full per-fault report: one entry per fault with its human-readable
/// name, final status and detection frame. This is what
/// `motsim_cli --report-json` dumps and what the run store writes as
/// report.json.
struct FaultReport {
  struct Entry {
    std::string name;
    FaultStatus status = FaultStatus::Undetected;
    std::uint32_t detect_frame = 0;  ///< 1-based; 0 = never
  };
  std::vector<Entry> entries;

  /// `detect_frame` must be empty (all frames unknown, reported as 0)
  /// or have `faults.size()` entries; `status` must have
  /// `faults.size()` entries. Throws std::invalid_argument otherwise.
  [[nodiscard]] static FaultReport build(
      const Netlist& netlist, const std::vector<Fault>& faults,
      const std::vector<FaultStatus>& status,
      const std::vector<std::uint32_t>& detect_frame = {});

  [[nodiscard]] CoverageSummary summary() const;

  /// Multi-line JSON document:
  ///   {"summary": {...}, "faults": [{"name": ..., "status": ...,
  ///    "detect_frame": ...}, ...]}
  /// `status` uses to_cstring(FaultStatus) strings.
  [[nodiscard]] std::string to_json() const;
};

}  // namespace motsim

#endif  // MOTSIM_FAULTS_REPORT_H
