#include "faults/sampling.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace motsim {

std::vector<Fault> sample_faults(const std::vector<Fault>& faults,
                                 std::size_t sample_size,
                                 std::uint64_t seed) {
  if (sample_size >= faults.size()) return faults;
  // Partial Fisher-Yates: draw sample_size distinct positions.
  std::vector<std::size_t> index(faults.size());
  for (std::size_t i = 0; i < index.size(); ++i) index[i] = i;
  Rng rng(seed);
  std::vector<Fault> out;
  out.reserve(sample_size);
  for (std::size_t i = 0; i < sample_size; ++i) {
    const std::size_t j = i + rng.below(index.size() - i);
    std::swap(index[i], index[j]);
    out.push_back(faults[index[i]]);
  }
  // Keep the sample in original list order (stable reporting).
  std::sort(out.begin(), out.end(),
            [&](const Fault& a, const Fault& b) {
              if (a.site.node != b.site.node) return a.site.node < b.site.node;
              if (a.site.pin != b.site.pin) return a.site.pin < b.site.pin;
              return a.stuck_value < b.stuck_value;
            });
  return out;
}

double sampling_error(double p, std::size_t sample_size,
                      std::size_t population) {
  if (sample_size == 0 || population == 0) return 1.0;
  if (sample_size >= population) return 0.0;
  const double n = static_cast<double>(sample_size);
  const double N = static_cast<double>(population);
  const double fpc = (N - n) / (N - 1.0);  // finite population correction
  return 1.96 * std::sqrt(std::max(p * (1.0 - p), 0.0) / n * fpc);
}

}  // namespace motsim
