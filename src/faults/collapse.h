#ifndef MOTSIM_FAULTS_COLLAPSE_H
#define MOTSIM_FAULTS_COLLAPSE_H

#include <vector>

#include "circuit/netlist.h"
#include "faults/fault.h"
#include "faults/fault_list.h"

namespace motsim {

/// Equivalence-collapsed single stuck-at fault list.
///
/// Classic structural equivalences are merged with a union-find:
///  * BUF / DFF : input s-a-v       == output s-a-v
///  * NOT       : input s-a-v       == output s-a-(1-v)
///  * AND       : every input s-a-0 == output s-a-0
///  * NAND      : every input s-a-0 == output s-a-1
///  * OR        : every input s-a-1 == output s-a-1
///  * NOR       : every input s-a-1 == output s-a-0
///  * fanout-free net: the single branch fault == the stem fault
///
/// (DFF input/output equivalence is the usual sequential convention:
/// the flip-flop merely delays the value by one frame.)
/// Representatives are the lowest-numbered fault of each class in the
/// SiteTable numbering, which biases representatives toward stems.
class CollapsedFaultList {
 public:
  explicit CollapsedFaultList(const Netlist& netlist);

  /// Representative faults, in SiteTable id order. This is the |F|
  /// the paper's tables count.
  [[nodiscard]] const std::vector<Fault>& faults() const noexcept {
    return representatives_;
  }
  [[nodiscard]] std::size_t size() const noexcept {
    return representatives_.size();
  }

  /// Representative fault id of any (possibly non-representative)
  /// fault id; detection results transfer across a class.
  [[nodiscard]] std::size_t representative_of(std::size_t fault_id) const;

  /// Number of faults before collapsing.
  [[nodiscard]] std::size_t uncollapsed_size() const noexcept {
    return parent_.size();
  }

  [[nodiscard]] const SiteTable& sites() const noexcept { return sites_; }

 private:
  std::size_t find(std::size_t x) const;
  void unite(std::size_t a, std::size_t b);

  SiteTable sites_;
  mutable std::vector<std::size_t> parent_;
  std::vector<Fault> representatives_;
};

/// Dominance collapsing layered on top of the equivalence collapse.
///
/// Classic gate-level dominance rules (the dominator's tests are a
/// superset of the dominated fault's tests, combinationally):
///  * AND  : output s-a-1 dominates every input s-a-1
///  * NAND : output s-a-0 dominates every input s-a-1
///  * OR   : output s-a-0 dominates every input s-a-0
///  * NOR  : output s-a-1 dominates every input s-a-0
///  * XOR/XNOR: no dominance
///
/// IMPORTANT: unlike equivalence, dominance is NOT sound for verdict
/// transfer in sequential circuits — the combinational dominance
/// theorem argues about single-vector tests and does not lift to
/// multi-frame trajectories where the dominated fault's effect can be
/// stored in state while the dominator's is not (and its contrapositive
/// — untestability transfer from dominator to dominated — fails with
/// it). This class is therefore used for fault-list *accounting* only
/// (the classical "equivalence + dominance collapsed" list size);
/// every verdict transfer in this library is equivalence-based (see
/// transfer_class_verdicts). docs/ANALYSIS.md carries the argument.
class DominanceCollapse {
 public:
  DominanceCollapse(const Netlist& netlist, const CollapsedFaultList& faults);

  /// True when the representative at `index` (position in
  /// faults().faults()) heads a class containing a fault that
  /// dominates a fault of a *different* class, i.e. the class a
  /// dominance-collapsed fault list would drop.
  [[nodiscard]] bool dominates_another(std::size_t index) const {
    return dominator_.at(index) != 0;
  }

  /// Representatives remaining after dropping every dominator class.
  [[nodiscard]] std::size_t collapsed_size() const noexcept {
    return dominator_.size() - dropped_;
  }

  /// Dominator classes dropped from the equivalence-collapsed list.
  [[nodiscard]] std::size_t dropped() const noexcept { return dropped_; }

 private:
  std::vector<std::uint8_t> dominator_;  ///< per representative index
  std::size_t dropped_ = 0;
};

/// Expands verdicts computed on the collapsed representatives to the
/// full uncollapsed fault list: entry `id` (SiteTable numbering) of the
/// result is its equivalence representative's status, so the returned
/// vector is aligned with SiteTable::fault_from_id /
/// all_faults(netlist). `representative_status` must be aligned with
/// faults.faults(); throws std::invalid_argument otherwise.
///
/// The transfer is sound in the strongest sense: structurally
/// equivalent faults induce literally identical faulty machines, so
/// every verdict — detection (including the frame), X-redundancy,
/// static untestability — holds for each class member exactly as for
/// its representative. Dominance is deliberately NOT used here; see
/// DominanceCollapse.
[[nodiscard]] std::vector<FaultStatus> transfer_class_verdicts(
    const CollapsedFaultList& faults,
    const std::vector<FaultStatus>& representative_status);

class StaticXRedAnalysis;
class ImplicationEngine;

/// Applies the static X-redundancy analysis to a collapsed fault
/// list's status vector: every representative whose equivalence class
/// contains a statically X-redundant fault is marked StaticXRed
/// (only Undetected entries are touched). Returns the number of newly
/// flagged entries.
///
/// Transferring the verdict across a class is sound because equivalent
/// faults are detected by exactly the same tests — if no sequence can
/// detect one member, none can detect any member.
std::size_t prune_static_x_redundant(const StaticXRedAnalysis& analysis,
                                     const CollapsedFaultList& faults,
                                     std::vector<FaultStatus>& status);

/// Same class-verdict transfer for the implication engine's
/// fault-independent untestability: every representative whose
/// equivalence class contains a statically untestable fault is marked
/// StaticUntestable (only Undetected entries are touched; StaticXRed
/// wins when both analyses flag a class). Returns the number of newly
/// flagged entries.
std::size_t prune_static_untestable(const ImplicationEngine& engine,
                                    const CollapsedFaultList& faults,
                                    std::vector<FaultStatus>& status);

struct CircuitStats;

/// Fills the fault-collapse fields of a CircuitStats (sets
/// has_collapse, equivalence_classes, dominance_classes).
/// CircuitStats::of() leaves them absent so circuit/ stays independent
/// of the fault layer — mirrors attach_testability.
void attach_collapse(CircuitStats& stats, const Netlist& netlist);

}  // namespace motsim

#endif  // MOTSIM_FAULTS_COLLAPSE_H
