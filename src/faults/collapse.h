#ifndef MOTSIM_FAULTS_COLLAPSE_H
#define MOTSIM_FAULTS_COLLAPSE_H

#include <vector>

#include "circuit/netlist.h"
#include "faults/fault.h"
#include "faults/fault_list.h"

namespace motsim {

/// Equivalence-collapsed single stuck-at fault list.
///
/// Classic structural equivalences are merged with a union-find:
///  * BUF / DFF : input s-a-v       == output s-a-v
///  * NOT       : input s-a-v       == output s-a-(1-v)
///  * AND       : every input s-a-0 == output s-a-0
///  * NAND      : every input s-a-0 == output s-a-1
///  * OR        : every input s-a-1 == output s-a-1
///  * NOR       : every input s-a-1 == output s-a-0
///  * fanout-free net: the single branch fault == the stem fault
///
/// (DFF input/output equivalence is the usual sequential convention:
/// the flip-flop merely delays the value by one frame.)
/// Representatives are the lowest-numbered fault of each class in the
/// SiteTable numbering, which biases representatives toward stems.
class CollapsedFaultList {
 public:
  explicit CollapsedFaultList(const Netlist& netlist);

  /// Representative faults, in SiteTable id order. This is the |F|
  /// the paper's tables count.
  [[nodiscard]] const std::vector<Fault>& faults() const noexcept {
    return representatives_;
  }
  [[nodiscard]] std::size_t size() const noexcept {
    return representatives_.size();
  }

  /// Representative fault id of any (possibly non-representative)
  /// fault id; detection results transfer across a class.
  [[nodiscard]] std::size_t representative_of(std::size_t fault_id) const;

  /// Number of faults before collapsing.
  [[nodiscard]] std::size_t uncollapsed_size() const noexcept {
    return parent_.size();
  }

  [[nodiscard]] const SiteTable& sites() const noexcept { return sites_; }

 private:
  std::size_t find(std::size_t x) const;
  void unite(std::size_t a, std::size_t b);

  SiteTable sites_;
  mutable std::vector<std::size_t> parent_;
  std::vector<Fault> representatives_;
};

class StaticXRedAnalysis;

/// Applies the static X-redundancy analysis to a collapsed fault
/// list's status vector: every representative whose equivalence class
/// contains a statically X-redundant fault is marked StaticXRed
/// (only Undetected entries are touched). Returns the number of newly
/// flagged entries.
///
/// Transferring the verdict across a class is sound because equivalent
/// faults are detected by exactly the same tests — if no sequence can
/// detect one member, none can detect any member.
std::size_t prune_static_x_redundant(const StaticXRedAnalysis& analysis,
                                     const CollapsedFaultList& faults,
                                     std::vector<FaultStatus>& status);

}  // namespace motsim

#endif  // MOTSIM_FAULTS_COLLAPSE_H
