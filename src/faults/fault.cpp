#include "faults/fault.h"

namespace motsim {

std::string fault_name(const Netlist& netlist, const Fault& f) {
  std::string name = netlist.gate(f.site.node).name;
  if (!f.site.is_stem()) {
    name += ".in" + std::to_string(f.site.pin);
  }
  name += f.stuck_value ? "/SA1" : "/SA0";
  return name;
}

const char* to_cstring(FaultStatus s) noexcept {
  switch (s) {
    case FaultStatus::Undetected:
      return "undetected";
    case FaultStatus::XRedundant:
      return "X-redundant";
    case FaultStatus::DetectedSim3:
      return "detected(X01)";
    case FaultStatus::DetectedSot:
      return "detected(SOT)";
    case FaultStatus::DetectedRmot:
      return "detected(rMOT)";
    case FaultStatus::DetectedMot:
      return "detected(MOT)";
    case FaultStatus::StaticXRed:
      return "static-X-red";
    case FaultStatus::StaticUntestable:
      return "static-untestable";
  }
  return "?";
}

}  // namespace motsim
