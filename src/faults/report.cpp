#include "faults/report.h"

#include <sstream>

namespace motsim {

CoverageSummary CoverageSummary::from_status(
    const std::vector<FaultStatus>& status) {
  CoverageSummary s;
  s.total = status.size();
  for (FaultStatus st : status) {
    switch (st) {
      case FaultStatus::XRedundant:
        ++s.x_redundant;
        break;
      case FaultStatus::DetectedSim3:
        ++s.detected_3v;
        break;
      case FaultStatus::DetectedSot:
        ++s.detected_sot;
        break;
      case FaultStatus::DetectedRmot:
        ++s.detected_rmot;
        break;
      case FaultStatus::DetectedMot:
        ++s.detected_mot;
        break;
      case FaultStatus::Undetected:
        ++s.undetected;
        break;
    }
  }
  return s;
}

std::string CoverageSummary::to_string() const {
  std::ostringstream os;
  os << "faults total          " << total << "\n";
  os << "  detected (X01)      " << detected_3v << "\n";
  if (detected_sot != 0) os << "  detected (SOT)      " << detected_sot << "\n";
  if (detected_rmot != 0) {
    os << "  detected (rMOT)     " << detected_rmot << "\n";
  }
  if (detected_mot != 0) os << "  detected (MOT)      " << detected_mot << "\n";
  os << "  X-redundant         " << x_redundant << "\n";
  os << "  undetected          " << undetected << "\n";
  os << "fault coverage        ";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f%%", coverage() * 100.0);
  os << buf << "\n";
  return os.str();
}

std::string CoverageSummary::to_json() const {
  std::ostringstream os;
  os << "{\"total\":" << total << ",\"detected_3v\":" << detected_3v
     << ",\"detected_sot\":" << detected_sot << ",\"detected_rmot\":"
     << detected_rmot << ",\"detected_mot\":" << detected_mot
     << ",\"x_redundant\":" << x_redundant << ",\"undetected\":"
     << undetected << ",\"coverage\":";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", coverage());
  os << buf << "}";
  return os.str();
}

std::vector<std::string> faults_with_status(
    const Netlist& netlist, const std::vector<Fault>& faults,
    const std::vector<FaultStatus>& status, FaultStatus wanted) {
  std::vector<std::string> out;
  for (std::size_t i = 0; i < faults.size() && i < status.size(); ++i) {
    if (status[i] == wanted) out.push_back(fault_name(netlist, faults[i]));
  }
  return out;
}

}  // namespace motsim
