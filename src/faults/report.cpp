#include "faults/report.h"

#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "util/strings.h"

namespace motsim {

CoverageSummary CoverageSummary::from_status(
    const std::vector<FaultStatus>& status) {
  CoverageSummary s;
  s.total = status.size();
  for (FaultStatus st : status) {
    switch (st) {
      case FaultStatus::XRedundant:
        ++s.x_redundant;
        break;
      case FaultStatus::DetectedSim3:
        ++s.detected_3v;
        break;
      case FaultStatus::DetectedSot:
        ++s.detected_sot;
        break;
      case FaultStatus::DetectedRmot:
        ++s.detected_rmot;
        break;
      case FaultStatus::DetectedMot:
        ++s.detected_mot;
        break;
      case FaultStatus::Undetected:
        ++s.undetected;
        break;
      case FaultStatus::StaticXRed:
        ++s.static_x_redundant;
        break;
      case FaultStatus::StaticUntestable:
        ++s.static_untestable;
        break;
    }
  }
  return s;
}

std::string CoverageSummary::to_string() const {
  std::ostringstream os;
  os << "faults total          " << total << "\n";
  os << "  detected (X01)      " << detected_3v << "\n";
  if (detected_sot != 0) os << "  detected (SOT)      " << detected_sot << "\n";
  if (detected_rmot != 0) {
    os << "  detected (rMOT)     " << detected_rmot << "\n";
  }
  if (detected_mot != 0) os << "  detected (MOT)      " << detected_mot << "\n";
  os << "  X-redundant         " << x_redundant << "\n";
  if (static_x_redundant != 0) {
    os << "  static X-red        " << static_x_redundant << "\n";
  }
  if (static_untestable != 0) {
    os << "  static untestable   " << static_untestable << "\n";
  }
  os << "  undetected          " << undetected << "\n";
  os << "fault coverage        ";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f%%", coverage() * 100.0);
  os << buf << "\n";
  return os.str();
}

std::string CoverageSummary::to_json() const {
  std::ostringstream os;
  os << "{\"total\":" << total << ",\"detected_3v\":" << detected_3v
     << ",\"detected_sot\":" << detected_sot << ",\"detected_rmot\":"
     << detected_rmot << ",\"detected_mot\":" << detected_mot
     << ",\"x_redundant\":" << x_redundant
     << ",\"static_x_redundant\":" << static_x_redundant
     << ",\"static_untestable\":" << static_untestable
     << ",\"undetected\":" << undetected << ",\"coverage\":";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", coverage());
  os << buf << "}";
  return os.str();
}

std::vector<std::string> faults_with_status(
    const Netlist& netlist, const std::vector<Fault>& faults,
    const std::vector<FaultStatus>& status, FaultStatus wanted) {
  std::vector<std::string> out;
  for (std::size_t i = 0; i < faults.size() && i < status.size(); ++i) {
    if (status[i] == wanted) out.push_back(fault_name(netlist, faults[i]));
  }
  return out;
}

FaultReport FaultReport::build(const Netlist& netlist,
                               const std::vector<Fault>& faults,
                               const std::vector<FaultStatus>& status,
                               const std::vector<std::uint32_t>& detect_frame) {
  if (status.size() != faults.size()) {
    throw std::invalid_argument("FaultReport::build: status size mismatch");
  }
  if (!detect_frame.empty() && detect_frame.size() != faults.size()) {
    throw std::invalid_argument(
        "FaultReport::build: detect_frame size mismatch");
  }
  FaultReport report;
  report.entries.reserve(faults.size());
  for (std::size_t i = 0; i < faults.size(); ++i) {
    Entry e;
    e.name = fault_name(netlist, faults[i]);
    e.status = status[i];
    e.detect_frame = detect_frame.empty() ? 0 : detect_frame[i];
    report.entries.push_back(std::move(e));
  }
  return report;
}

CoverageSummary FaultReport::summary() const {
  std::vector<FaultStatus> status;
  status.reserve(entries.size());
  for (const Entry& e : entries) status.push_back(e.status);
  return CoverageSummary::from_status(status);
}

std::string FaultReport::to_json() const {
  std::ostringstream os;
  os << "{\n  \"summary\": " << summary().to_json() << ",\n  \"faults\": [";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"name\": \"" << json_escape(e.name) << "\", \"status\": \""
       << to_cstring(e.status) << "\", \"detect_frame\": " << e.detect_frame
       << "}";
  }
  os << "\n  ]\n}\n";
  return os.str();
}

}  // namespace motsim
