#include "faults/collapse.h"

#include <numeric>
#include <stdexcept>
#include <unordered_map>

#include "analysis/implication.h"
#include "analysis/static_xred.h"
#include "circuit/stats.h"

namespace motsim {

CollapsedFaultList::CollapsedFaultList(const Netlist& netlist)
    : sites_(netlist) {
  parent_.resize(sites_.fault_count());
  std::iota(parent_.begin(), parent_.end(), std::size_t{0});

  auto stem_id = [&](NodeIndex node, bool v) {
    return sites_.fault_id(Fault{FaultSite{node, kStemPin}, v});
  };
  auto branch_id = [&](NodeIndex node, std::uint32_t pin, bool v) {
    return sites_.fault_id(Fault{FaultSite{node, pin}, v});
  };

  for (NodeIndex n = 0; n < netlist.node_count(); ++n) {
    const Gate& g = netlist.gate(n);
    switch (g.type) {
      case GateType::Buf:
      case GateType::Dff:
        unite(branch_id(n, 0, false), stem_id(n, false));
        unite(branch_id(n, 0, true), stem_id(n, true));
        break;
      case GateType::Not:
        unite(branch_id(n, 0, false), stem_id(n, true));
        unite(branch_id(n, 0, true), stem_id(n, false));
        break;
      case GateType::And:
        for (std::uint32_t p = 0; p < g.fanins.size(); ++p) {
          unite(branch_id(n, p, false), stem_id(n, false));
        }
        break;
      case GateType::Nand:
        for (std::uint32_t p = 0; p < g.fanins.size(); ++p) {
          unite(branch_id(n, p, false), stem_id(n, true));
        }
        break;
      case GateType::Or:
        for (std::uint32_t p = 0; p < g.fanins.size(); ++p) {
          unite(branch_id(n, p, true), stem_id(n, true));
        }
        break;
      case GateType::Nor:
        for (std::uint32_t p = 0; p < g.fanins.size(); ++p) {
          unite(branch_id(n, p, true), stem_id(n, false));
        }
        break;
      default:
        break;  // XOR/XNOR/sources: no structural input equivalences
    }
  }

  // Fanout-free nets: the one branch is the stem.
  for (NodeIndex n = 0; n < netlist.node_count(); ++n) {
    const auto& fanouts = netlist.fanouts(n);
    if (fanouts.size() == 1) {
      const FanoutRef fo = fanouts[0];
      unite(branch_id(fo.node, fo.pin, false), stem_id(n, false));
      unite(branch_id(fo.node, fo.pin, true), stem_id(n, true));
    }
  }

  // unite() keeps the smallest id as the class root, so the roots are
  // exactly the class minima — collect them as representatives.
  for (std::size_t f = 0; f < parent_.size(); ++f) {
    if (find(f) == f) {
      representatives_.push_back(sites_.fault_from_id(f));
    }
  }
}

std::size_t CollapsedFaultList::find(std::size_t x) const {
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];
    x = parent_[x];
  }
  return x;
}

void CollapsedFaultList::unite(std::size_t a, std::size_t b) {
  a = find(a);
  b = find(b);
  if (a == b) return;
  // Union by value: smaller id becomes the root so representatives are
  // stable and stem-biased.
  if (a < b) {
    parent_[b] = a;
  } else {
    parent_[a] = b;
  }
}

std::size_t CollapsedFaultList::representative_of(std::size_t fault_id) const {
  return find(fault_id);
}

namespace {

/// Map representative fault id -> position in faults.faults().
std::unordered_map<std::size_t, std::size_t> representative_index(
    const CollapsedFaultList& faults) {
  std::unordered_map<std::size_t, std::size_t> index_of;
  index_of.reserve(faults.size());
  for (std::size_t i = 0; i < faults.size(); ++i) {
    index_of.emplace(faults.sites().fault_id(faults.faults()[i]), i);
  }
  return index_of;
}

}  // namespace

DominanceCollapse::DominanceCollapse(const Netlist& netlist,
                                     const CollapsedFaultList& faults)
    : dominator_(faults.size(), 0) {
  const SiteTable& sites = faults.sites();
  const auto index_of = representative_index(faults);
  auto mark = [&](NodeIndex node, bool out_stuck, std::uint32_t pin,
                  bool in_stuck) {
    const std::size_t out_rep = faults.representative_of(
        sites.fault_id(Fault{FaultSite{node, kStemPin}, out_stuck}));
    const std::size_t in_rep = faults.representative_of(
        sites.fault_id(Fault{FaultSite{node, pin}, in_stuck}));
    // A dominance edge inside one equivalence class collapses to
    // nothing; across classes the dominator's class is droppable.
    if (out_rep == in_rep) return;
    std::uint8_t& flag = dominator_.at(index_of.at(out_rep));
    if (flag == 0) {
      flag = 1;
      ++dropped_;
    }
  };
  for (NodeIndex n = 0; n < netlist.node_count(); ++n) {
    const Gate& g = netlist.gate(n);
    for (std::uint32_t p = 0; p < g.fanins.size(); ++p) {
      switch (g.type) {
        case GateType::And:
          mark(n, true, p, true);
          break;
        case GateType::Nand:
          mark(n, false, p, true);
          break;
        case GateType::Or:
          mark(n, false, p, false);
          break;
        case GateType::Nor:
          mark(n, true, p, false);
          break;
        default:
          break;  // BUF/NOT/DFF are equivalences; XOR/XNOR: none
      }
    }
  }
}

std::vector<FaultStatus> transfer_class_verdicts(
    const CollapsedFaultList& faults,
    const std::vector<FaultStatus>& representative_status) {
  if (representative_status.size() != faults.size()) {
    throw std::invalid_argument(
        "transfer_class_verdicts: representative_status size mismatch");
  }
  const auto index_of = representative_index(faults);
  std::vector<FaultStatus> out(faults.uncollapsed_size(),
                               FaultStatus::Undetected);
  for (std::size_t id = 0; id < out.size(); ++id) {
    out[id] =
        representative_status[index_of.at(faults.representative_of(id))];
  }
  return out;
}

std::size_t prune_static_x_redundant(const StaticXRedAnalysis& analysis,
                                     const CollapsedFaultList& faults,
                                     std::vector<FaultStatus>& status) {
  if (status.size() != faults.size()) {
    throw std::invalid_argument(
        "prune_static_x_redundant: status size mismatch");
  }
  const SiteTable& sites = faults.sites();
  // Map representative fault id -> position in faults().
  std::unordered_map<std::size_t, std::size_t> index_of;
  index_of.reserve(faults.size());
  for (std::size_t i = 0; i < faults.size(); ++i) {
    index_of.emplace(sites.fault_id(faults.faults()[i]), i);
  }
  std::size_t flagged = 0;
  for (std::size_t id = 0; id < faults.uncollapsed_size(); ++id) {
    if (!analysis.is_static_x_redundant(sites.fault_from_id(id))) continue;
    const auto it = index_of.find(faults.representative_of(id));
    if (it == index_of.end()) continue;
    FaultStatus& s = status[it->second];
    if (s == FaultStatus::Undetected) {
      s = FaultStatus::StaticXRed;
      ++flagged;
    }
  }
  return flagged;
}

std::size_t prune_static_untestable(const ImplicationEngine& engine,
                                    const CollapsedFaultList& faults,
                                    std::vector<FaultStatus>& status) {
  if (status.size() != faults.size()) {
    throw std::invalid_argument(
        "prune_static_untestable: status size mismatch");
  }
  const SiteTable& sites = faults.sites();
  const auto index_of = representative_index(faults);
  std::size_t flagged = 0;
  for (std::size_t id = 0; id < faults.uncollapsed_size(); ++id) {
    if (!engine.is_static_untestable(sites.fault_from_id(id))) continue;
    const auto it = index_of.find(faults.representative_of(id));
    if (it == index_of.end()) continue;
    FaultStatus& s = status[it->second];
    if (s == FaultStatus::Undetected) {
      s = FaultStatus::StaticUntestable;
      ++flagged;
    }
  }
  return flagged;
}

void attach_collapse(CircuitStats& stats, const Netlist& netlist) {
  const CollapsedFaultList faults(netlist);
  const DominanceCollapse dominance(netlist, faults);
  stats.has_collapse = true;
  stats.uncollapsed_faults = faults.uncollapsed_size();
  stats.equivalence_classes = faults.size();
  stats.dominance_classes = dominance.collapsed_size();
}

}  // namespace motsim
