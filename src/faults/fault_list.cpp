#include "faults/fault_list.h"

#include <stdexcept>

namespace motsim {

SiteTable::SiteTable(const Netlist& netlist)
    : node_count_(netlist.node_count()) {
  branch_base_.resize(node_count_);
  std::size_t next = node_count_;  // branches start after all stems
  for (NodeIndex n = 0; n < node_count_; ++n) {
    branch_base_[n] = next;
    next += netlist.gate(n).fanins.size();
  }
  total_sites_ = next;
}

FaultSite SiteTable::site_from_index(std::size_t index) const {
  if (index < node_count_) {
    return FaultSite{static_cast<NodeIndex>(index), kStemPin};
  }
  if (index >= total_sites_) {
    throw std::out_of_range("SiteTable: site index out of range");
  }
  // Binary search for the owning node in the branch_base_ prefix sums.
  std::size_t lo = 0, hi = node_count_ - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi + 1) / 2;
    if (branch_base_[mid] <= index) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return FaultSite{static_cast<NodeIndex>(lo),
                   static_cast<std::uint32_t>(index - branch_base_[lo])};
}

std::vector<Fault> all_faults(const Netlist& netlist) {
  const SiteTable sites(netlist);
  std::vector<Fault> out;
  out.reserve(sites.fault_count());
  for (std::size_t s = 0; s < sites.site_count(); ++s) {
    const FaultSite site = sites.site_from_index(s);
    out.push_back(Fault{site, false});
    out.push_back(Fault{site, true});
  }
  return out;
}

}  // namespace motsim
