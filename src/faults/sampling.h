#ifndef MOTSIM_FAULTS_SAMPLING_H
#define MOTSIM_FAULTS_SAMPLING_H

#include <cstdint>
#include <vector>

#include "faults/fault.h"

namespace motsim {

/// Uniform fault sample for coverage *estimation* on large circuits —
/// the standard practice of the paper's era when full fault lists were
/// too expensive. Sampling 1000+ faults estimates the true coverage
/// within a few percent at 95 % confidence (see sampling_error).
[[nodiscard]] std::vector<Fault> sample_faults(
    const std::vector<Fault>& faults, std::size_t sample_size,
    std::uint64_t seed);

/// Half-width of the ~95 % confidence interval of a coverage estimate
/// `p` (fraction detected) from a sample of `sample_size` faults out
/// of `population` (finite-population corrected).
[[nodiscard]] double sampling_error(double p, std::size_t sample_size,
                                    std::size_t population);

}  // namespace motsim

#endif  // MOTSIM_FAULTS_SAMPLING_H
