#ifndef MOTSIM_FAULTS_FAULT_LIST_H
#define MOTSIM_FAULTS_FAULT_LIST_H

#include <cstdint>
#include <vector>

#include "circuit/netlist.h"
#include "faults/fault.h"

namespace motsim {

/// Dense numbering of all fault sites of a netlist.
///
/// Sites are ordered: all output stems first (site index == node
/// index), then all input branches in (node, pin) order. Fault ids are
/// `2 * site + stuck_value`. This numbering is shared by the fault
/// simulators, ID_X-red and the collapser.
class SiteTable {
 public:
  explicit SiteTable(const Netlist& netlist);

  [[nodiscard]] std::size_t site_count() const noexcept {
    return total_sites_;
  }
  [[nodiscard]] std::size_t fault_count() const noexcept {
    return 2 * total_sites_;
  }

  /// Site index of a stem / branch.
  [[nodiscard]] std::size_t stem_site(NodeIndex node) const { return node; }
  [[nodiscard]] std::size_t branch_site(NodeIndex node,
                                        std::uint32_t pin) const {
    return branch_base_[node] + pin;
  }
  [[nodiscard]] std::size_t site_of(const FaultSite& s) const {
    return s.is_stem() ? stem_site(s.node) : branch_site(s.node, s.pin);
  }

  /// Inverse mapping.
  [[nodiscard]] FaultSite site_from_index(std::size_t index) const;

  [[nodiscard]] std::size_t fault_id(const Fault& f) const {
    return 2 * site_of(f.site) + (f.stuck_value ? 1 : 0);
  }
  [[nodiscard]] Fault fault_from_id(std::size_t id) const {
    return Fault{site_from_index(id / 2), (id % 2) != 0};
  }

 private:
  std::size_t node_count_;
  std::size_t total_sites_;
  std::vector<std::size_t> branch_base_;  ///< first branch site per node
};

/// Builds the uncollapsed list of all single stuck-at faults of the
/// netlist: two per output stem and two per gate input pin (including
/// flip-flop D-pins). Order follows the SiteTable numbering.
[[nodiscard]] std::vector<Fault> all_faults(const Netlist& netlist);

}  // namespace motsim

#endif  // MOTSIM_FAULTS_FAULT_LIST_H
