#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

#include "util/strings.h"

namespace motsim::obs {

std::size_t this_thread_shard() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kCounterShards;
  return shard;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<std::uint64_t>[bounds_.size() + 1]) {
  // Renderers assume ascending bounds; silently sorting beats a
  // throwing constructor in an observability layer.
  std::sort(bounds_.begin(), bounds_.end());
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

void Histogram::observe(double v) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t bucket =
      static_cast<std::size_t>(it - bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::quantile(double q) const {
  return histogram_quantile(bounds_, bucket_counts(), q);
}

double histogram_quantile(const std::vector<double>& bounds,
                          const std::vector<std::uint64_t>& buckets,
                          double q) {
  std::uint64_t total = 0;
  for (const std::uint64_t b : buckets) total += b;
  // Defined results instead of bucket math on degenerate inputs: an
  // empty histogram (or an empty bucket vector) has no observations to
  // rank, and a NaN quantile selects nothing.
  if (total == 0 || bounds.empty() || buckets.empty()) return 0.0;
  if (std::isnan(q)) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  // Rank of the target observation (1-based), then the first bucket
  // whose cumulative count reaches it.
  const double rank = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  std::size_t bucket = 0;
  for (; bucket < buckets.size(); ++bucket) {
    cumulative += buckets[bucket];
    if (static_cast<double>(cumulative) >= rank) break;
  }
  // A caller may pass fewer buckets than bounds + 1 (a truncated
  // snapshot); once the scan walks off the end there is nothing left
  // to interpolate inside — clamp like the overflow bucket.
  if (bucket >= buckets.size()) return bounds.back();
  if (bucket >= bounds.size()) {
    // Overflow bucket: no upper limit to interpolate toward — report
    // the highest finite bound (Prometheus does the same).
    return bounds.back();
  }
  const double upper = bounds[bucket];
  // Lower edge: the previous bound, or 0 for the first bucket when its
  // bound is positive (latency-style histograms start at 0).
  const double lower =
      bucket == 0 ? std::min(0.0, upper) : bounds[bucket - 1];
  const std::uint64_t in_bucket = buckets[bucket];
  if (in_bucket == 0) return upper;
  const double below = static_cast<double>(cumulative - in_bucket);
  const double fraction = (rank - below) / static_cast<double>(in_bucket);
  return lower + (upper - lower) * std::min(1.0, std::max(0.0, fraction));
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot s;
  s.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    s.counters.emplace_back(name, c->value());
  }
  s.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    s.gauges.emplace_back(name, g->value());
  }
  s.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.name = name;
    hs.bounds = h->bounds();
    hs.buckets = h->bucket_counts();
    hs.count = h->count();
    hs.sum = h->sum();
    s.histograms.push_back(std::move(hs));
  }
  return s;
}

namespace {

/// JSON number formatting: finite doubles with enough precision to
/// round-trip; non-finite values (JSON has none) become null.
std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  return buffer;
}

/// Prometheus metric names allow [a-zA-Z0-9_:]; the registry's dotted
/// ids map dots (and any other byte) to underscores.
std::string prometheus_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

std::string prometheus_bound(double v) {
  if (std::isinf(v)) return "+Inf";
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%g", v);
  return buffer;
}

}  // namespace

std::string MetricsSnapshot::to_json() const {
  // Ids are escaped on the way out: the catalogue's dotted names pass
  // through unchanged, but a hostile or buggy id with a quote or
  // backslash must still render valid JSON (pinned by test_obs).
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << "    \""
       << json_escape(counters[i].first) << "\": " << counters[i].second;
  }
  os << (counters.empty() ? "" : "\n  ") << "},\n  \"gauges\": {";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << "    \""
       << json_escape(gauges[i].first) << "\": "
       << json_number(gauges[i].second);
  }
  os << (gauges.empty() ? "" : "\n  ") << "},\n  \"histograms\": {";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const HistogramSnapshot& h = histograms[i];
    os << (i == 0 ? "\n" : ",\n") << "    \"" << json_escape(h.name)
       << "\": {\"bounds\": [";
    for (std::size_t b = 0; b < h.bounds.size(); ++b) {
      os << (b == 0 ? "" : ", ") << json_number(h.bounds[b]);
    }
    os << "], \"buckets\": [";
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      os << (b == 0 ? "" : ", ") << h.buckets[b];
    }
    os << "], \"count\": " << h.count << ", \"sum\": " << json_number(h.sum)
       << ", \"p50\": " << json_number(h.quantile(0.50))
       << ", \"p90\": " << json_number(h.quantile(0.90))
       << ", \"p99\": " << json_number(h.quantile(0.99)) << "}";
  }
  os << (histograms.empty() ? "" : "\n  ") << "}\n}\n";
  return os.str();
}

std::string MetricsSnapshot::to_json_line() const {
  // The pretty renderer's newlines all sit between tokens (string
  // values are escaped above), so removing them — and the trailing
  // indentation they introduce — yields the same JSON on one line, fit
  // for JSONL streams (/debug/state, the sampler).
  const std::string pretty = to_json();
  std::string out;
  out.reserve(pretty.size());
  for (const char c : pretty) {
    if (c != '\n') out.push_back(c);
  }
  return out;
}

std::string MetricsSnapshot::to_prometheus() const {
  std::ostringstream os;
  for (const auto& [name, value] : counters) {
    const std::string p = prometheus_name(name);
    os << "# TYPE " << p << " counter\n" << p << " " << value << "\n";
  }
  for (const auto& [name, value] : gauges) {
    const std::string p = prometheus_name(name);
    os << "# TYPE " << p << " gauge\n" << p << " " << json_number(value)
       << "\n";
  }
  for (const HistogramSnapshot& h : histograms) {
    const std::string p = prometheus_name(h.name);
    os << "# TYPE " << p << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      cumulative += h.buckets[b];
      const double bound = b < h.bounds.size()
                               ? h.bounds[b]
                               : std::numeric_limits<double>::infinity();
      os << p << "_bucket{le=\"" << prometheus_bound(bound)
         << "\"} " << cumulative << "\n";
    }
    os << p << "_sum " << json_number(h.sum) << "\n"
       << p << "_count " << h.count << "\n";
  }
  return os.str();
}

}  // namespace motsim::obs
