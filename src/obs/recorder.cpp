#include "obs/recorder.h"

#include <fcntl.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstring>

namespace motsim::obs {

void FlightRecorder::note(const char* data, std::size_t size) noexcept {
  while (size > 0 && data[size - 1] == '\n') --size;
  const std::uint64_t seq = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[seq & (kSlots - 1)];
  if (slot.busy.test_and_set(std::memory_order_acquire)) {
    // Somebody (a lapped writer or a dump) holds this slot right now.
    // Waiting would put a lock in every instrumented path; dropping
    // one ring entry under contention is the cheaper contract.
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (size > kPayloadBytes) {
    const int n = std::snprintf(
        slot.data, kPayloadBytes,
        "{\"event\":\"obs.recorder.truncated\",\"len\":%llu}",
        static_cast<unsigned long long>(size));
    slot.size = n > 0 ? static_cast<std::uint32_t>(n) : 0;
  } else {
    std::memcpy(slot.data, data, size);
    slot.size = static_cast<std::uint32_t>(size);
  }
  slot.busy.clear(std::memory_order_release);
}

std::string FlightRecorder::dump() const {
  std::string out;
  out.reserve(kSlots * 64);
  const std::uint64_t head = head_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < kSlots; ++i) {
    // head is the next slot to overwrite = the oldest record; walking
    // forward from it yields chronological order once the ring wrapped.
    Slot& slot = slots_[(head + i) & (kSlots - 1)];
    if (slot.busy.test_and_set(std::memory_order_acquire)) continue;
    if (slot.size > 0 && slot.size <= kPayloadBytes) {
      out.append(slot.data, slot.size);
      out.push_back('\n');
    }
    slot.busy.clear(std::memory_order_release);
  }
  return out;
}

void FlightRecorder::dump_to_fd(int fd) const noexcept {
  const std::uint64_t head = head_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < kSlots; ++i) {
    Slot& slot = slots_[(head + i) & (kSlots - 1)];
    if (slot.busy.test_and_set(std::memory_order_acquire)) continue;
    if (slot.size > 0 && slot.size <= kPayloadBytes) {
      std::size_t off = 0;
      while (off < slot.size) {
        const ssize_t n = ::write(fd, slot.data + off, slot.size - off);
        if (n <= 0) break;
        off += static_cast<std::size_t>(n);
      }
      [[maybe_unused]] const ssize_t nl = ::write(fd, "\n", 1);
    }
    slot.busy.clear(std::memory_order_release);
  }
}

namespace {

// Crash-dump binding. Plain (not atomic) because install happens once
// at startup before threads that could crash concurrently exist, and
// the handler only reads.
const FlightRecorder* g_crash_recorder = nullptr;
char g_crash_path[512] = {0};

void on_crash_signal(int sig) {
  const FlightRecorder* rec = g_crash_recorder;
  if (rec != nullptr && g_crash_path[0] != '\0') {
    const int fd =
        ::open(g_crash_path, O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd >= 0) {
      rec->dump_to_fd(fd);
      ::close(fd);
    }
  }
  // Restore the default disposition and re-raise so the process still
  // dies with the right signal status (and core dump, if enabled).
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

}  // namespace

void install_crash_dump(const FlightRecorder* recorder, const char* path) {
  if (recorder == nullptr || path == nullptr || path[0] == '\0') {
    g_crash_recorder = nullptr;
    g_crash_path[0] = '\0';
    for (const int sig : {SIGSEGV, SIGBUS, SIGFPE, SIGABRT}) {
      ::signal(sig, SIG_DFL);
    }
    return;
  }
  std::strncpy(g_crash_path, path, sizeof(g_crash_path) - 1);
  g_crash_path[sizeof(g_crash_path) - 1] = '\0';
  g_crash_recorder = recorder;
  struct sigaction sa{};
  sa.sa_handler = on_crash_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  for (const int sig : {SIGSEGV, SIGBUS, SIGFPE, SIGABRT}) {
    (void)::sigaction(sig, &sa, nullptr);
  }
}

}  // namespace motsim::obs
