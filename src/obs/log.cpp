#include "obs/log.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/metrics.h"
#include "util/strings.h"

namespace motsim::obs {

const char* to_cstring(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::Trace: return "trace";
    case LogLevel::Debug: return "debug";
    case LogLevel::Info: return "info";
    case LogLevel::Warn: return "warn";
    case LogLevel::Error: return "error";
    case LogLevel::Off: return "off";
  }
  return "unknown";
}

Expected<LogLevel, std::string> parse_log_level(std::string_view name) {
  const std::string lower = to_lower(name);
  if (lower == "trace") return LogLevel::Trace;
  if (lower == "debug") return LogLevel::Debug;
  if (lower == "info") return LogLevel::Info;
  if (lower == "warn" || lower == "warning") return LogLevel::Warn;
  if (lower == "error") return LogLevel::Error;
  if (lower == "off" || lower == "none") return LogLevel::Off;
  return make_unexpected("unknown log level '" + std::string(name) +
                         "' (trace|debug|info|warn|error|off)");
}

namespace {

void append_json_string(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_double(std::string& out, double v) {
  char buf[32];
  // Non-finite values have no JSON spelling; null keeps the record
  // parseable (the same convention as the metrics renderer).
  if (v != v || v > 1.7976931348623157e308 || v < -1.7976931348623157e308) {
    out += "null";
    return;
  }
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out += buf;
}

}  // namespace

void format_log_record(std::string& out, double t, LogLevel level,
                       std::string_view event, std::string_view trace,
                       int tid, const LogField* fields, std::size_t count,
                       std::string_view msg) {
  out += "{\"t\":";
  append_double(out, t);
  out += ",\"level\":\"";
  out += to_cstring(level);
  out += "\",\"event\":";
  append_json_string(out, event);
  out += ",\"tid\":";
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%d", tid);
  out += buf;
  if (!trace.empty()) {
    out += ",\"trace\":";
    append_json_string(out, trace);
  }
  for (std::size_t i = 0; i < count; ++i) {
    const LogField& f = fields[i];
    out.push_back(',');
    append_json_string(out, f.key);
    out.push_back(':');
    switch (f.kind) {
      case LogField::Kind::Int:
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(f.i));
        out += buf;
        break;
      case LogField::Kind::UInt:
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(f.u));
        out += buf;
        break;
      case LogField::Kind::Real:
        append_double(out, f.d);
        break;
      case LogField::Kind::Bool:
        out += f.b ? "true" : "false";
        break;
      case LogField::Kind::Str:
        append_json_string(out, f.s);
        break;
    }
  }
  if (!msg.empty()) {
    out += ",\"msg\":";
    append_json_string(out, msg);
  }
  out += "}\n";
}

Logger::Logger(int fd, bool owns_fd, LogLevel level)
    : level_(static_cast<std::uint8_t>(level)), fd_(fd), owns_fd_(owns_fd) {}

Logger::~Logger() {
  if (owns_fd_ && fd_ >= 0) ::close(fd_);
}

Expected<std::unique_ptr<Logger>, std::string> Logger::open(
    const std::string& path, LogLevel level) {
  if (path.empty() || path == "-") {
    return std::unique_ptr<Logger>(
        new Logger(STDERR_FILENO, /*owns_fd=*/false, level));
  }
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    return make_unexpected("log: cannot open '" + path +
                           "': " + std::strerror(errno));
  }
  return std::unique_ptr<Logger>(new Logger(fd, /*owns_fd=*/true, level));
}

void Logger::write_line(const char* data, std::size_t size) noexcept {
  Shard& shard = shards_[this_thread_shard() % kShards];
  std::lock_guard<std::mutex> lock(shard.mutex);
  std::size_t off = 0;
  while (off < size) {
    const ssize_t n = ::write(fd_, data + off, size - off);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // a dead sink must never take down the process it logs
    }
    off += static_cast<std::size_t>(n);
  }
}

Expected<std::unique_ptr<Logger>, std::string> open_logger_from(
    const std::string& path_flag, const std::string& level_flag) {
  std::string path = path_flag;
  if (path.empty()) {
    if (const char* env = std::getenv("MOTSIM_LOG")) path = env;
  }
  std::string level_name = level_flag;
  if (level_name.empty()) {
    if (const char* env = std::getenv("MOTSIM_LOG_LEVEL")) level_name = env;
  }
  if (path.empty()) {
    // No sink requested anywhere — logging stays off (a bare
    // --log-level without a destination is not an error either).
    return std::unique_ptr<Logger>(nullptr);
  }
  LogLevel level = LogLevel::Info;
  if (!level_name.empty()) {
    const auto parsed = parse_log_level(level_name);
    if (!parsed.has_value()) return make_unexpected(parsed.error());
    level = *parsed;
  }
  return Logger::open(path, level);
}

}  // namespace motsim::obs
