#ifndef MOTSIM_OBS_SAMPLER_H
#define MOTSIM_OBS_SAMPLER_H

#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "util/expected.h"

namespace motsim::obs {

struct Telemetry;

/// Background time-series sampler: every `interval_ms` it snapshots
/// the registry's gauges (live BDD nodes, queue depth, per-stage
/// seconds — whatever the run has registered) plus the process RSS,
/// and appends one JSONL record to `path`:
///
///   {"t":1.234,"rss_bytes":12345678,"gauges":{"bdd.live_nodes":431,...}}
///
/// This makes the paper's node-count-vs-time story (Tables II-IV, the
/// 30k space limit) a first-class artifact: `motsim_cli
/// --sample-interval 10` writes the series, tools/plot_samples.py
/// renders it. Entirely optional — nothing is sampled unless a Sampler
/// is started, so it costs the engines nothing.
class Sampler {
 public:
  /// Starts the background thread. `interval_ms` is clamped to >= 1.
  [[nodiscard]] static Expected<std::unique_ptr<Sampler>, std::string> start(
      Telemetry& telemetry, const std::string& path, int interval_ms);

  /// Stops and joins the thread, writing one final sample so short
  /// runs still produce at least one record.
  ~Sampler();
  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  void stop();

 private:
  Sampler(Telemetry& telemetry, std::FILE* out, int interval_ms);
  void loop();
  void write_sample();

  Telemetry& telemetry_;
  std::FILE* const out_;
  const int interval_ms_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::thread thread_;
};

/// Resident-set size of the calling process in bytes (from
/// /proc/self/statm), 0 where unavailable.
[[nodiscard]] std::size_t process_rss_bytes() noexcept;

}  // namespace motsim::obs

#endif  // MOTSIM_OBS_SAMPLER_H
