#ifndef MOTSIM_OBS_METRICS_H
#define MOTSIM_OBS_METRICS_H

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace motsim::obs {

/// Shard count of a Counter. Each thread hashes to one shard, so
/// concurrent increments from the fault-sharded driver's workers
/// mostly touch distinct cache lines; value() sums all shards.
inline constexpr std::size_t kCounterShards = 16;

/// Index of the calling thread's counter shard (stable per thread,
/// assigned round-robin on first use).
std::size_t this_thread_shard() noexcept;

/// Monotonically increasing integer metric. Thread-safe: add() is one
/// relaxed atomic add on a thread-local shard; value() sums the
/// shards (a point-in-time read, exact once all writers are
/// quiescent — the snapshot contract of MetricsRegistry).
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    shards_[this_thread_shard()].v.fetch_add(delta,
                                             std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Shard, kCounterShards> shards_;
};

/// Point-in-time double metric with set / add / update_max semantics
/// (seconds, node counts, ratios). All operations are atomic.
class Gauge {
 public:
  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }

  void add(double delta) noexcept {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + delta,
                                     std::memory_order_relaxed)) {
    }
  }

  /// Raises the gauge to `v` if it is below (peak tracking across the
  /// parallel driver's shards).
  void update_max(double v) noexcept {
    double cur = v_.load(std::memory_order_relaxed);
    while (cur < v &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] double value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-boundary histogram. `bounds` are inclusive upper bucket
/// limits (Prometheus `le` semantics); one overflow bucket is
/// implied. observe() is a pair of relaxed atomic adds.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v) noexcept;

  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }
  /// Per-bucket counts, bounds().size() + 1 entries (last = overflow).
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }

  /// Estimated q-quantile (0 <= q <= 1) of the observed values — see
  /// histogram_quantile() for the estimation contract.
  [[nodiscard]] double quantile(double q) const;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Estimated q-quantile (0 <= q <= 1) of a bucketed distribution:
/// `buckets` holds per-bucket (non-cumulative) counts, one entry more
/// than `bounds` (the overflow bucket). The estimate interpolates
/// linearly inside the selected bucket — the same contract as
/// Prometheus's histogram_quantile(), so served metrics and local
/// summaries agree. An observation landing in the overflow bucket is
/// reported as the highest finite bound. Degenerate inputs all have
/// defined results: an empty histogram (or empty bucket vector)
/// reports 0, q is clamped into [0, 1], a NaN q reports 0, and a
/// bucket vector shorter than bounds.size() + 1 clamps to the highest
/// finite bound instead of reading past the end.
[[nodiscard]] double histogram_quantile(const std::vector<double>& bounds,
                                        const std::vector<std::uint64_t>& buckets,
                                        double q);

/// One histogram in a snapshot, with cumulative Prometheus-style
/// bucket counts resolved to plain numbers.
struct HistogramSnapshot {
  std::string name;
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;  ///< bounds.size() + 1, last = +inf
  std::uint64_t count = 0;
  double sum = 0;

  /// histogram_quantile() over this snapshot's buckets.
  [[nodiscard]] double quantile(double q) const {
    return histogram_quantile(bounds, buckets, q);
  }
};

/// Point-in-time copy of every registered instrument, ordered by name.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// One JSON object: {"counters":{...},"gauges":{...},
  /// "histograms":{name:{"bounds":[...],"buckets":[...],...}}}.
  /// Metric ids are JSON-escaped, so any id renders valid JSON.
  [[nodiscard]] std::string to_json() const;
  /// to_json() on a single line (no newlines) — one JSONL record, used
  /// by /debug/state dumps and the state-dump files.
  [[nodiscard]] std::string to_json_line() const;
  /// Prometheus text exposition format (dots in names become
  /// underscores; histograms expand to _bucket/_sum/_count).
  [[nodiscard]] std::string to_prometheus() const;
};

/// Named instrument registry — the metric surface of a Telemetry
/// context (docs/OBSERVABILITY.md catalogues the stable dotted ids).
///
/// counter()/gauge()/histogram() create on first use and return a
/// reference that stays valid for the registry's lifetime, so engines
/// resolve each name once and then update lock-free; only creation
/// and snapshot() take the registry mutex.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);
  /// `bounds` applies on first creation; later calls with the same
  /// name return the existing histogram unchanged.
  [[nodiscard]] Histogram& histogram(const std::string& name,
                                     std::vector<double> bounds);

  [[nodiscard]] MetricsSnapshot snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace motsim::obs

#endif  // MOTSIM_OBS_METRICS_H
