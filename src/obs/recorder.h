#ifndef MOTSIM_OBS_RECORDER_H
#define MOTSIM_OBS_RECORDER_H

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace motsim::obs {

/// Always-on flight recorder: a fixed-size ring of the most recent
/// log/span records, kept in memory at near-zero cost so the last
/// moments before a crash or a wedge are reconstructable after the
/// fact (dumped on crash signal, on SIGUSR1, and via the DumpState
/// request / GET /debug/state — see docs/OBSERVABILITY.md).
///
/// Concurrency: note() claims a slot with one relaxed fetch_add and
/// takes the slot's try-spinlock (an atomic_flag) to fill it. A writer
/// that finds its slot momentarily held by a lapped reader or another
/// writer drops the record and counts it — the recorder never blocks
/// and never waits. dump() takes each slot's flag the same way, so
/// every byte it reads was published under an acquire/release pair
/// (TSan-clean by construction, verified in tools/run_tsan.sh).
///
/// Crash safety: dump_to_fd() performs no allocation and calls only
/// write() — safe from the crash-signal handler installed by
/// install_crash_dump().
class FlightRecorder {
 public:
  /// Ring capacity (power of two) and per-record byte budget. A record
  /// larger than the budget is replaced by a short truncation marker so
  /// every stored line stays valid JSON.
  static constexpr std::size_t kSlots = 2048;
  static constexpr std::size_t kPayloadBytes = 352;

  FlightRecorder() = default;
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Stores one record (a JSON object, WITHOUT trailing newline —
  /// note() strips one if present). Never blocks; drops on contention.
  void note(const char* data, std::size_t size) noexcept;
  void note(const std::string& line) noexcept {
    note(line.data(), line.size());
  }

  /// Records appended so far (including dropped and truncated ones).
  [[nodiscard]] std::uint64_t recorded() const noexcept {
    return head_.load(std::memory_order_relaxed);
  }
  /// Records dropped because their slot was contended.
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// JSONL dump of the retained window, oldest record first, one
  /// trailing newline per record. Slots a writer holds at dump time
  /// are skipped.
  [[nodiscard]] std::string dump() const;

  /// Same dump written straight to `fd` with write() only — no
  /// allocation, async-signal-safe modulo the (bounded) per-slot
  /// spinlocks, which dump_to_fd does not spin on: a held slot is
  /// skipped exactly like in dump().
  void dump_to_fd(int fd) const noexcept;

 private:
  struct Slot {
    std::atomic_flag busy = ATOMIC_FLAG_INIT;
    std::uint32_t size = 0;  ///< valid bytes of data; guarded by busy
    char data[kPayloadBytes];
  };

  std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint64_t> dropped_{0};
  mutable std::array<Slot, kSlots> slots_{};
};

/// Installs SIGSEGV/SIGBUS/SIGFPE/SIGABRT handlers that append
/// `recorder`'s dump_to_fd output to `path` and then re-raise with the
/// default disposition (so exit codes and core dumps are unchanged).
/// One recorder per process; a second call rebinds recorder and path.
/// Pass nullptr to uninstall.
void install_crash_dump(const FlightRecorder* recorder, const char* path);

}  // namespace motsim::obs

#endif  // MOTSIM_OBS_RECORDER_H
