#ifndef MOTSIM_OBS_TRACE_H
#define MOTSIM_OBS_TRACE_H

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/stopwatch.h"

namespace motsim::obs {

class FlightRecorder;

/// Trace id of the calling thread — empty outside any request scope.
/// Serve mode assigns one id per connection+request ("c3-r7") and
/// every span, instant and log record emitted while it is in scope
/// carries it, which is what lets one slow request be followed across
/// the access log, the engine spans and its response frame
/// (docs/OBSERVABILITY.md).
[[nodiscard]] const std::string& current_trace_id() noexcept;

/// RAII scope installing `id` as the thread's trace id; restores the
/// previous id (usually empty) on destruction.
class ScopedTraceId {
 public:
  explicit ScopedTraceId(std::string id);
  ~ScopedTraceId();
  ScopedTraceId(const ScopedTraceId&) = delete;
  ScopedTraceId& operator=(const ScopedTraceId&) = delete;

 private:
  std::string previous_;
};

/// One recorded trace event. Times are seconds since the tracer's
/// construction (one shared monotonic epoch for every thread).
struct TraceEvent {
  std::string name;
  std::string trace;            ///< request trace id, "" outside serve
  double start_seconds = 0;
  double duration_seconds = 0;  ///< 0 for instant events
  int tid = 0;                  ///< small per-tracer thread number
  bool instant = false;
};

/// Scoped span tracer: RAII spans with nesting and thread ids,
/// exported as Chrome trace_event JSON (loadable in Perfetto or
/// chrome://tracing) plus a compact per-phase summary table.
///
/// Thread-safe: spans may open and close on any thread; recording
/// takes one mutex per completed span (spans close at frame/stage
/// granularity, so contention is negligible next to the work they
/// measure). Nesting is implicit — Chrome's "X" (complete) events
/// stack automatically when spans on one thread are properly nested,
/// which RAII guarantees.
class SpanTracer {
 public:
  SpanTracer() = default;
  SpanTracer(const SpanTracer&) = delete;
  SpanTracer& operator=(const SpanTracer&) = delete;

  /// RAII handle: records one complete event when destroyed (or
  /// close()d). Movable so it can live in std::optional for spans
  /// whose extent is not a lexical scope (the hybrid engine's
  /// symbolic stretches).
  class Span {
   public:
    Span() noexcept = default;
    Span(Span&& other) noexcept
        : tracer_(std::exchange(other.tracer_, nullptr)),
          name_(std::move(other.name_)),
          start_(other.start_) {}
    Span& operator=(Span&& other) noexcept {
      if (this != &other) {
        close();
        tracer_ = std::exchange(other.tracer_, nullptr);
        name_ = std::move(other.name_);
        start_ = other.start_;
      }
      return *this;
    }
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    ~Span() { close(); }

    /// Records the span now; further close() calls are no-ops.
    void close() noexcept;

   private:
    friend class SpanTracer;
    Span(SpanTracer* tracer, std::string name, double start) noexcept
        : tracer_(tracer), name_(std::move(name)), start_(start) {}

    SpanTracer* tracer_ = nullptr;
    std::string name_;
    double start_ = 0;
  };

  /// Opens a span; it records itself when it goes out of scope.
  [[nodiscard]] Span span(std::string name) {
    return Span(this, std::move(name), epoch_.elapsed_seconds());
  }

  /// Records a zero-duration marker (detections, checkpoints).
  void instant(std::string name);

  /// Seconds since the tracer was constructed — the shared time base
  /// of every event (and of the run store's events.jsonl "t" fields
  /// when the campaign owns the telemetry context).
  [[nodiscard]] double seconds_since_start() const {
    return epoch_.elapsed_seconds();
  }

  /// Copy of every recorded event, in recording order.
  [[nodiscard]] std::vector<TraceEvent> events() const;

  /// Chrome trace_event JSON: {"traceEvents":[...],
  /// "displayTimeUnit":"ms"} with "X" complete events, "i" instants
  /// and one "M" thread_name record per thread.
  [[nodiscard]] std::string to_chrome_json() const;

  /// Aggregated per-phase table: one row per span name with count,
  /// total seconds and mean milliseconds, longest total first.
  [[nodiscard]] std::string phase_summary() const;

  /// Mirrors every recorded event into `recorder` as a compact JSON
  /// line, so the flight recorder's window holds spans next to log
  /// records. Telemetry wires this up; nullptr (the default) is a
  /// single dormant branch per record.
  void set_recorder(FlightRecorder* recorder) noexcept {
    recorder_ = recorder;
  }

 private:
  void record(std::string name, double start, double duration, bool instant);
  int tid_of_this_thread();

  Stopwatch epoch_;
  FlightRecorder* recorder_ = nullptr;
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::unordered_map<std::thread::id, int> tids_;
  int next_tid_ = 0;
};

}  // namespace motsim::obs

#endif  // MOTSIM_OBS_TRACE_H
