#include "obs/sampler.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>

#include "obs/telemetry.h"
#include "util/strings.h"

namespace motsim::obs {

std::size_t process_rss_bytes() noexcept {
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long long total = 0;
  unsigned long long resident = 0;
  const int n = std::fscanf(f, "%llu %llu", &total, &resident);
  std::fclose(f);
  if (n != 2) return 0;
  const long page = ::sysconf(_SC_PAGESIZE);
  return static_cast<std::size_t>(resident) *
         static_cast<std::size_t>(page > 0 ? page : 4096);
}

Sampler::Sampler(Telemetry& telemetry, std::FILE* out, int interval_ms)
    : telemetry_(telemetry),
      out_(out),
      interval_ms_(std::max(interval_ms, 1)) {
  thread_ = std::thread([this] { loop(); });
}

Sampler::~Sampler() {
  stop();
  if (out_ != nullptr) std::fclose(out_);
}

Expected<std::unique_ptr<Sampler>, std::string> Sampler::start(
    Telemetry& telemetry, const std::string& path, int interval_ms) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    return make_unexpected("sampler: cannot open '" + path +
                           "' for writing");
  }
  return std::unique_ptr<Sampler>(new Sampler(telemetry, out, interval_ms));
}

void Sampler::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  // One final sample so even runs shorter than the interval leave a
  // usable series (first + last bracket the run).
  write_sample();
  std::fflush(out_);
}

void Sampler::loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stopping_) {
    lock.unlock();
    write_sample();
    lock.lock();
    cv_.wait_for(lock, std::chrono::milliseconds(interval_ms_),
                 [this] { return stopping_; });
  }
}

void Sampler::write_sample() {
  const double t = telemetry_.seconds_since_start();
  const MetricsSnapshot snap = telemetry_.metrics.snapshot();
  std::string line;
  line.reserve(256);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "{\"t\":%.6f,\"rss_bytes\":%llu",
                t, static_cast<unsigned long long>(process_rss_bytes()));
  line += buf;
  line += ",\"gauges\":{";
  bool first = true;
  for (const auto& [name, value] : snap.gauges) {
    if (!first) line += ",";
    first = false;
    line += '"';
    line += json_escape(name);
    line += "\":";
    if (!std::isfinite(value)) {
      line += "null";
    } else {
      std::snprintf(buf, sizeof(buf), "%.9g", value);
      line += buf;
    }
  }
  line += "}}\n";
  // One fwrite per record: samples from this thread never interleave
  // with themselves, and nothing else writes this FILE.
  std::fwrite(line.data(), 1, line.size(), out_);
  std::fflush(out_);
}

}  // namespace motsim::obs
