#ifndef MOTSIM_OBS_TELEMETRY_H
#define MOTSIM_OBS_TELEMETRY_H

#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/expected.h"

namespace motsim::obs {

/// One telemetry context for one run: a metrics registry plus a span
/// tracer sharing a single monotonic epoch. Engines receive it as a
/// nullable pointer (SimOptions::telemetry); nullptr — the default —
/// means every instrumentation site is one predictable branch, the
/// same contract as ProgressSink.
///
/// The metric ids and span names emitted into this context are
/// catalogued in docs/OBSERVABILITY.md; treat them as a stable API.
struct Telemetry {
  MetricsRegistry metrics;
  SpanTracer tracer;

  Telemetry() = default;
  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  /// Seconds since this context was created — the shared time base of
  /// the tracer's events and the run store's events.jsonl "t" fields.
  [[nodiscard]] double seconds_since_start() const {
    return tracer.seconds_since_start();
  }

  /// Writes metrics.snapshot().to_json() to `path`.
  Expected<bool, std::string> write_metrics_json(const std::string& path) const;

  /// Writes tracer.to_chrome_json() to `path` (load in Perfetto or
  /// chrome://tracing).
  Expected<bool, std::string> write_trace_json(const std::string& path) const;

  /// Human-readable digest: the per-phase span table followed by
  /// every counter and gauge, for --progress / log output.
  [[nodiscard]] std::string summary() const;
};

}  // namespace motsim::obs

#endif  // MOTSIM_OBS_TELEMETRY_H
