#ifndef MOTSIM_OBS_TELEMETRY_H
#define MOTSIM_OBS_TELEMETRY_H

#include <atomic>
#include <initializer_list>
#include <string>
#include <string_view>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/trace.h"
#include "util/expected.h"

namespace motsim::obs {

/// One telemetry context for one run: a metrics registry, a span
/// tracer and a flight recorder sharing a single monotonic epoch, plus
/// an optionally attached structured-log sink. Engines receive it as a
/// nullable pointer (SimOptions::telemetry); nullptr — the default —
/// means every instrumentation site is one predictable branch, the
/// same contract as ProgressSink.
///
/// The metric ids, span names and log event ids emitted into this
/// context are catalogued in docs/OBSERVABILITY.md; treat them as a
/// stable API.
struct Telemetry {
  MetricsRegistry metrics;
  SpanTracer tracer;
  /// Always on: every log record (and every span, mirrored by the
  /// tracer) lands in this fixed-size ring regardless of any logger.
  FlightRecorder recorder;

  Telemetry() { tracer.set_recorder(&recorder); }
  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  /// Attaches (or detaches, with nullptr) a structured-log sink. The
  /// sink is not owned and must outlive the last log_event call.
  void attach_logger(Logger* logger) noexcept {
    log_.store(logger, std::memory_order_release);
  }
  [[nodiscard]] Logger* logger() const noexcept {
    return log_.load(std::memory_order_acquire);
  }

  /// Seconds since this context was created — the shared time base of
  /// the tracer's events and the run store's events.jsonl "t" fields.
  [[nodiscard]] double seconds_since_start() const {
    return tracer.seconds_since_start();
  }

  /// Writes metrics.snapshot().to_json() to `path`.
  Expected<bool, std::string> write_metrics_json(const std::string& path) const;

  /// Writes tracer.to_chrome_json() to `path` (load in Perfetto or
  /// chrome://tracing).
  Expected<bool, std::string> write_trace_json(const std::string& path) const;

  /// Human-readable digest: the per-phase span table followed by
  /// every counter and gauge, for --progress / log output.
  [[nodiscard]] std::string summary() const;

 private:
  std::atomic<Logger*> log_{nullptr};
};

/// The one structured-logging entry point of the instrumented code:
/// formats one JSONL record, feeds it to the (always-on) flight
/// recorder, and appends it to the attached logger if the level
/// clears its gate. `telemetry == nullptr` — the default everywhere —
/// is a single predictable branch, the same cost contract as every
/// other instrumentation site.
///
/// Event ids are stable dotted names (docs/OBSERVABILITY.md); keys and
/// string field values must outlive the call (they are copied into the
/// record before it returns).
void log_event(Telemetry* telemetry, LogLevel level, std::string_view event,
               std::initializer_list<LogField> fields = {},
               std::string_view msg = {});

}  // namespace motsim::obs

#endif  // MOTSIM_OBS_TELEMETRY_H
