#ifndef MOTSIM_OBS_LOG_H
#define MOTSIM_OBS_LOG_H

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "util/expected.h"

namespace motsim::obs {

/// Structured JSONL logging (docs/OBSERVABILITY.md catalogues the
/// stable dotted event ids — same discipline as the metric catalogue).
///
/// One log record is one JSON object on one line:
///
///   {"t":1.234,"level":"info","event":"serve.request","tid":0,
///    "trace":"c3-r7","type":"FAULT_SIM","service_s":0.41}
///
/// The logger itself is a sink: level gating plus an atomic line
/// append. Formatting happens at the call site (log_event in
/// telemetry.h) into per-shard scratch buffers, so concurrent emitters
/// from the fault-sharded driver mostly take distinct locks and never
/// allocate per record once the scratch has grown.

enum class LogLevel : std::uint8_t {
  Trace = 0,
  Debug = 1,
  Info = 2,
  Warn = 3,
  Error = 4,
  Off = 5,
};

[[nodiscard]] const char* to_cstring(LogLevel level) noexcept;

/// Parses "trace" / "debug" / "info" / "warn" / "error" / "off"
/// (case-insensitive).
[[nodiscard]] Expected<LogLevel, std::string> parse_log_level(
    std::string_view name);

/// One typed key/value of a log record. Built through the static
/// factories so integer literals never pick a surprising overload;
/// key and string values must outlive the log_event call (string
/// literals and locals both do).
struct LogField {
  enum class Kind : std::uint8_t { Int, UInt, Real, Bool, Str };

  std::string_view key;
  Kind kind = Kind::Int;
  std::int64_t i = 0;
  std::uint64_t u = 0;
  double d = 0;
  bool b = false;
  std::string_view s;

  [[nodiscard]] static LogField i64(std::string_view key,
                                    std::int64_t v) noexcept {
    LogField f;
    f.key = key;
    f.kind = Kind::Int;
    f.i = v;
    return f;
  }
  [[nodiscard]] static LogField u64(std::string_view key,
                                    std::uint64_t v) noexcept {
    LogField f;
    f.key = key;
    f.kind = Kind::UInt;
    f.u = v;
    return f;
  }
  [[nodiscard]] static LogField f64(std::string_view key, double v) noexcept {
    LogField f;
    f.key = key;
    f.kind = Kind::Real;
    f.d = v;
    return f;
  }
  [[nodiscard]] static LogField boolean(std::string_view key,
                                        bool v) noexcept {
    LogField f;
    f.key = key;
    f.kind = Kind::Bool;
    f.b = v;
    return f;
  }
  [[nodiscard]] static LogField str(std::string_view key,
                                    std::string_view v) noexcept {
    LogField f;
    f.key = key;
    f.kind = Kind::Str;
    f.s = v;
    return f;
  }
};

/// Formats one complete JSONL record (terminating newline included).
/// `t` is seconds since the owning telemetry epoch; `trace` is empty
/// outside any request scope. The output is appended to `out` (which
/// the caller typically recycles as scratch).
void format_log_record(std::string& out, double t, LogLevel level,
                       std::string_view event, std::string_view trace,
                       int tid, const LogField* fields, std::size_t count,
                       std::string_view msg);

/// The JSONL sink: a level gate in front of one O_APPEND fd.
///
/// Thread-safe. Each emitting thread hashes to one of kShards locks
/// that serialize the final write() — concurrent emitters mostly take
/// distinct locks, and the kernel's atomic append keeps whole lines
/// intact across shards (one write() per record, never split).
class Logger {
 public:
  static constexpr std::size_t kShards = 8;

  /// Opens `path` for appending ("-" = stderr). `level` is the initial
  /// gate; records below it are dropped at enabled() cost.
  [[nodiscard]] static Expected<std::unique_ptr<Logger>, std::string> open(
      const std::string& path, LogLevel level);

  ~Logger();
  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

  [[nodiscard]] bool enabled(LogLevel level) const noexcept {
    return static_cast<std::uint8_t>(level) >=
           level_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] LogLevel level() const noexcept {
    return static_cast<LogLevel>(level_.load(std::memory_order_relaxed));
  }
  void set_level(LogLevel level) noexcept {
    level_.store(static_cast<std::uint8_t>(level),
                 std::memory_order_relaxed);
  }

  /// Appends one already-formatted record (newline included) as a
  /// single write() under this thread's shard lock.
  void write_line(const char* data, std::size_t size) noexcept;

 private:
  Logger(int fd, bool owns_fd, LogLevel level);

  struct alignas(64) Shard {
    std::mutex mutex;
  };

  std::atomic<std::uint8_t> level_;
  const int fd_;
  const bool owns_fd_;
  std::array<Shard, kShards> shards_;
};

/// Front-end surface shared by all four tools: resolves `path_flag` /
/// `level_flag` (the --log / --log-level values, empty = unset)
/// against the MOTSIM_LOG / MOTSIM_LOG_LEVEL environment variables.
/// Returns nullptr (not an error) when neither source names a sink;
/// errors are unopenable paths and unknown level names.
[[nodiscard]] Expected<std::unique_ptr<Logger>, std::string>
open_logger_from(const std::string& path_flag, const std::string& level_flag);

}  // namespace motsim::obs

#endif  // MOTSIM_OBS_LOG_H
