#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

#include "obs/recorder.h"
#include "util/strings.h"

namespace motsim::obs {

namespace {

std::string& this_thread_trace_id() noexcept {
  thread_local std::string id;
  return id;
}

}  // namespace

const std::string& current_trace_id() noexcept {
  return this_thread_trace_id();
}

ScopedTraceId::ScopedTraceId(std::string id)
    : previous_(std::exchange(this_thread_trace_id(), std::move(id))) {}

ScopedTraceId::~ScopedTraceId() {
  this_thread_trace_id() = std::move(previous_);
}

void SpanTracer::Span::close() noexcept {
  if (tracer_ == nullptr) return;
  SpanTracer* t = std::exchange(tracer_, nullptr);
  try {
    t->record(std::move(name_), start_,
              t->epoch_.elapsed_seconds() - start_, /*instant=*/false);
  } catch (...) {
    // A tracer must never take down the simulation it observes; an
    // allocation failure here just drops the event.
  }
}

void SpanTracer::instant(std::string name) {
  record(std::move(name), epoch_.elapsed_seconds(), 0.0, /*instant=*/true);
}

int SpanTracer::tid_of_this_thread() {
  // Caller holds mutex_.
  const auto id = std::this_thread::get_id();
  const auto it = tids_.find(id);
  if (it != tids_.end()) return it->second;
  const int tid = next_tid_++;
  tids_.emplace(id, tid);
  return tid;
}

void SpanTracer::record(std::string name, double start, double duration,
                        bool instant) {
  TraceEvent e;
  e.name = std::move(name);
  e.trace = current_trace_id();
  e.start_seconds = start;
  e.duration_seconds = duration;
  e.instant = instant;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    e.tid = tid_of_this_thread();
    events_.push_back(e);
  }
  if (recorder_ != nullptr) {
    // Mirror the event into the flight-recorder window as one compact
    // JSON line — spans and log records interleave chronologically in
    // a dump.
    std::string line;
    line.reserve(96);
    char buf[48];
    std::snprintf(buf, sizeof(buf), "{\"t\":%.6f,", e.start_seconds);
    line += buf;
    line += e.instant ? "\"instant\":\"" : "\"span\":\"";
    line += json_escape(e.name);
    line += '"';
    if (!e.instant) {
      std::snprintf(buf, sizeof(buf), ",\"dur_s\":%.6f",
                    e.duration_seconds);
      line += buf;
    }
    if (!e.trace.empty()) {
      line += ",\"trace\":\"";
      line += json_escape(e.trace);
      line += '"';
    }
    std::snprintf(buf, sizeof(buf), ",\"tid\":%d}", e.tid);
    line += buf;
    recorder_->note(line);
  }
}

std::vector<TraceEvent> SpanTracer::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

std::string SpanTracer::to_chrome_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  os << "{\"traceEvents\":[\n";
  bool first = true;
  for (const auto& [id, tid] : tids_) {
    (void)id;
    if (!first) os << ",\n";
    first = false;
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
       << ",\"args\":{\"name\":\"worker-" << tid << "\"}}";
  }
  char buffer[64];
  for (const TraceEvent& e : events_) {
    if (!first) os << ",\n";
    first = false;
    // Chrome timestamps are microseconds; %.3f keeps sub-µs precision
    // without scientific notation (which the format forbids).
    std::snprintf(buffer, sizeof(buffer), "%.3f", e.start_seconds * 1e6);
    os << "{\"name\":\"" << json_escape(e.name) << "\",\"ph\":\""
       << (e.instant ? "i" : "X") << "\",\"ts\":" << buffer;
    if (!e.instant) {
      std::snprintf(buffer, sizeof(buffer), "%.3f",
                    e.duration_seconds * 1e6);
      os << ",\"dur\":" << buffer;
    } else {
      os << ",\"s\":\"t\"";
    }
    os << ",\"pid\":1,\"tid\":" << e.tid;
    if (!e.trace.empty()) {
      os << ",\"args\":{\"trace\":\"" << json_escape(e.trace) << "\"}";
    }
    os << "}";
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
  return os.str();
}

std::string SpanTracer::phase_summary() const {
  struct Agg {
    std::size_t count = 0;
    double total = 0;
  };
  std::map<std::string, Agg> by_name;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const TraceEvent& e : events_) {
      if (e.instant) continue;
      Agg& a = by_name[e.name];
      ++a.count;
      a.total += e.duration_seconds;
    }
  }
  std::vector<std::pair<std::string, Agg>> rows(by_name.begin(),
                                                by_name.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.total > b.second.total;
  });

  std::ostringstream os;
  char line[160];
  std::snprintf(line, sizeof(line), "%-28s %8s %10s %10s\n", "phase",
                "count", "total[s]", "mean[ms]");
  os << line;
  for (const auto& [name, a] : rows) {
    std::snprintf(line, sizeof(line), "%-28s %8zu %10.3f %10.3f\n",
                  name.c_str(), a.count, a.total,
                  a.count == 0 ? 0.0 : a.total * 1e3 / a.count);
    os << line;
  }
  return os.str();
}

}  // namespace motsim::obs
