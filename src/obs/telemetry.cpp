#include "obs/telemetry.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace motsim::obs {

namespace {

Expected<bool, std::string> write_file(const std::string& path,
                                       const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return make_unexpected("cannot open for writing: " + path);
  }
  out << content;
  out.flush();
  if (!out) {
    return make_unexpected("write failed: " + path);
  }
  return true;
}

}  // namespace

void log_event(Telemetry* telemetry, LogLevel level, std::string_view event,
               std::initializer_list<LogField> fields,
               std::string_view msg) {
  if (telemetry == nullptr) return;  // the one disabled-path branch

  // Small per-process thread number for log records — assigned on a
  // thread's first record, stable afterwards (the tracer keeps its own
  // per-context numbering; log tids only need to distinguish threads
  // within one process's log stream).
  static std::atomic<int> next_tid{0};
  thread_local const int tid =
      next_tid.fetch_add(1, std::memory_order_relaxed);

  // Recycled scratch: after a few records the append path stops
  // allocating entirely.
  thread_local std::string scratch;
  scratch.clear();
  format_log_record(scratch, telemetry->seconds_since_start(), level, event,
                    current_trace_id(), tid, fields.begin(), fields.size(),
                    msg);
  telemetry->recorder.note(scratch);
  Logger* const logger = telemetry->logger();
  if (logger != nullptr && logger->enabled(level)) {
    logger->write_line(scratch.data(), scratch.size());
  }
}

Expected<bool, std::string> Telemetry::write_metrics_json(
    const std::string& path) const {
  return write_file(path, metrics.snapshot().to_json());
}

Expected<bool, std::string> Telemetry::write_trace_json(
    const std::string& path) const {
  return write_file(path, tracer.to_chrome_json());
}

std::string Telemetry::summary() const {
  std::ostringstream os;
  const std::string phases = tracer.phase_summary();
  if (!phases.empty()) os << phases;

  const MetricsSnapshot s = metrics.snapshot();
  char line[160];
  for (const auto& [name, value] : s.counters) {
    std::snprintf(line, sizeof(line), "%-40s %14llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    os << line;
  }
  for (const auto& [name, value] : s.gauges) {
    std::snprintf(line, sizeof(line), "%-40s %14.6g\n", name.c_str(), value);
    os << line;
  }
  for (const HistogramSnapshot& h : s.histograms) {
    std::snprintf(line, sizeof(line),
                  "%-40s count=%llu sum=%.6g mean=%.6g p50=%.6g "
                  "p99=%.6g\n",
                  h.name.c_str(), static_cast<unsigned long long>(h.count),
                  h.sum,
                  h.count == 0 ? 0.0 : h.sum / static_cast<double>(h.count),
                  h.quantile(0.50), h.quantile(0.99));
    os << line;
  }
  return os.str();
}

}  // namespace motsim::obs
