#include "obs/telemetry.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace motsim::obs {

namespace {

Expected<bool, std::string> write_file(const std::string& path,
                                       const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return make_unexpected("cannot open for writing: " + path);
  }
  out << content;
  out.flush();
  if (!out) {
    return make_unexpected("write failed: " + path);
  }
  return true;
}

}  // namespace

Expected<bool, std::string> Telemetry::write_metrics_json(
    const std::string& path) const {
  return write_file(path, metrics.snapshot().to_json());
}

Expected<bool, std::string> Telemetry::write_trace_json(
    const std::string& path) const {
  return write_file(path, tracer.to_chrome_json());
}

std::string Telemetry::summary() const {
  std::ostringstream os;
  const std::string phases = tracer.phase_summary();
  if (!phases.empty()) os << phases;

  const MetricsSnapshot s = metrics.snapshot();
  char line[160];
  for (const auto& [name, value] : s.counters) {
    std::snprintf(line, sizeof(line), "%-40s %14llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    os << line;
  }
  for (const auto& [name, value] : s.gauges) {
    std::snprintf(line, sizeof(line), "%-40s %14.6g\n", name.c_str(), value);
    os << line;
  }
  for (const HistogramSnapshot& h : s.histograms) {
    std::snprintf(line, sizeof(line),
                  "%-40s count=%llu sum=%.6g mean=%.6g p50=%.6g "
                  "p99=%.6g\n",
                  h.name.c_str(), static_cast<unsigned long long>(h.count),
                  h.sum,
                  h.count == 0 ? 0.0 : h.sum / static_cast<double>(h.count),
                  h.quantile(0.50), h.quantile(0.99));
    os << line;
  }
  return os.str();
}

}  // namespace motsim::obs
