#include "bench_data/synth_gen.h"

#include <algorithm>
#include <stdexcept>

#include "util/rng.h"

namespace motsim {

const char* to_cstring(CircuitStyle s) noexcept {
  switch (s) {
    case CircuitStyle::Counter:
      return "counter";
    case CircuitStyle::Controller:
      return "controller";
    case CircuitStyle::RandomLogic:
      return "random-logic";
    case CircuitStyle::TwinPaths:
      return "twin-paths";
    case CircuitStyle::Pipeline:
      return "pipeline";
    case CircuitStyle::AcyclicPipeline:
      return "acyclic-pipeline";
  }
  return "?";
}

namespace {

/// Builder utilities shared by all styles.
class Builder {
 public:
  Builder(const SynthSpec& spec)
      : spec_(spec), nl_(spec.name), rng_(spec.seed) {
    for (std::size_t i = 0; i < spec.inputs; ++i) {
      pis_.push_back(nl_.add_input("in" + std::to_string(i)));
    }
    for (std::size_t i = 0; i < spec.dffs; ++i) {
      ffs_.push_back(nl_.add_dff(kNoNode, "ff" + std::to_string(i)));
    }
  }

  NodeIndex gate(GateType t, std::vector<NodeIndex> fanins) {
    for (NodeIndex f : fanins) mark_used(f);
    ++gates_;
    return nl_.add_gate(t, std::move(fanins), "g" + std::to_string(gates_));
  }

  /// Connects a flip-flop's D input (tracking usage).
  void set_dff(NodeIndex ff, NodeIndex d) {
    mark_used(d);
    nl_.set_fanins(ff, {d});
  }

  void mark_used(NodeIndex n) {
    if (n >= used_.size()) used_.resize(n + 1, 0);
    used_[n] = 1;
  }
  [[nodiscard]] bool is_used(NodeIndex n) const {
    return n < used_.size() && used_[n] != 0;
  }

  /// Folds every so-far-unused primary input and flip-flop output into
  /// an XOR chain, so no source net is left dangling. Returns the
  /// chain roots (empty if everything was already consumed).
  std::vector<NodeIndex> sweep_unused_sources() {
    std::vector<NodeIndex> pending;
    for (NodeIndex n : pis_) {
      if (!is_used(n)) pending.push_back(n);
    }
    for (NodeIndex n : ffs_) {
      if (!is_used(n)) pending.push_back(n);
    }
    if (pending.empty()) return {};
    NodeIndex acc = pending[0];
    for (std::size_t i = 1; i < pending.size(); ++i) {
      acc = g_xor(acc, pending[i]);
    }
    if (pending.size() == 1) acc = g_not(acc);
    return {acc};
  }
  NodeIndex g_not(NodeIndex a) { return gate(GateType::Not, {a}); }
  NodeIndex g_and(NodeIndex a, NodeIndex b) {
    return gate(GateType::And, {a, b});
  }
  NodeIndex g_or(NodeIndex a, NodeIndex b) {
    return gate(GateType::Or, {a, b});
  }
  NodeIndex g_nand(NodeIndex a, NodeIndex b) {
    return gate(GateType::Nand, {a, b});
  }
  NodeIndex g_nor(NodeIndex a, NodeIndex b) {
    return gate(GateType::Nor, {a, b});
  }

  /// a XOR b out of AND/OR/NOT gates (ISCAS-89 idiom).
  NodeIndex g_xor(NodeIndex a, NodeIndex b) {
    const NodeIndex na = g_not(a);
    const NodeIndex nb = g_not(b);
    return g_or(g_and(a, nb), g_and(na, b));
  }
  /// a XNOR b out of AND/OR/NOT gates.
  NodeIndex g_xnor(NodeIndex a, NodeIndex b) {
    const NodeIndex na = g_not(a);
    const NodeIndex nb = g_not(b);
    return g_or(g_and(a, b), g_and(na, nb));
  }

  /// Balanced AND/OR reduction tree over `items` (alternating kinds
  /// for non-degenerate functions).
  NodeIndex tree(std::vector<NodeIndex> items, bool start_and) {
    if (items.empty()) throw std::logic_error("tree over no items");
    bool use_and = start_and;
    while (items.size() > 1) {
      std::vector<NodeIndex> next;
      for (std::size_t i = 0; i + 1 < items.size(); i += 2) {
        next.push_back(use_and ? g_and(items[i], items[i + 1])
                               : g_or(items[i], items[i + 1]));
      }
      if (items.size() % 2 == 1) next.push_back(items.back());
      items = std::move(next);
      use_and = !use_and;
    }
    return items[0];
  }

  /// Random already-defined signal (input, flip-flop or earlier gate).
  NodeIndex random_signal() {
    const std::size_t total = pis_.size() + ffs_.size() + gate_nodes_.size();
    const std::size_t r = rng_.below(total);
    if (r < pis_.size()) return pis_[r];
    if (r < pis_.size() + ffs_.size()) return ffs_[r - pis_.size()];
    return gate_nodes_[r - pis_.size() - ffs_.size()];
  }

  /// Registers a gate output as a reusable signal for random picks.
  void offer(NodeIndex n) { gate_nodes_.push_back(n); }

  /// Pads the circuit with observable random logic until the target
  /// gate count is (roughly) reached; returns pad roots to fold into
  /// the primary outputs. Pads form chains — each gate consumes its
  /// predecessor — so no pad is ever left dangling.
  std::vector<NodeIndex> pad_to_target(std::size_t reserve_gates) {
    std::vector<NodeIndex> roots;
    NodeIndex chain = kNoNode;
    while (gates_ + reserve_gates + 4 < spec_.target_gates) {
      const NodeIndex a = chain != kNoNode ? chain : random_signal();
      NodeIndex b = random_signal();
      NodeIndex g;
      if (a == b) {
        g = g_not(a);
      } else {
        switch (rng_.below(5)) {
          case 0:
            g = g_and(a, b);
            break;
          case 1:
            g = g_or(a, b);
            break;
          case 2:
            g = g_nand(a, b);
            break;
          case 3:
            g = g_nor(a, b);
            break;
          default:
            g = g_not(a);
            break;
        }
      }
      offer(g);
      chain = g;
      // Occasionally close a pad cone so the pads form several
      // independent trees rather than one long chain.
      if (rng_.chance(0.2)) {
        roots.push_back(g);
        chain = kNoNode;
      }
    }
    if (chain != kNoNode) roots.push_back(chain);
    return roots;
  }

  /// Distributes `contributors` over the primary outputs: output j is
  /// a reduction tree over its share. Every contributor gets a sink.
  void build_outputs(std::vector<NodeIndex> contributors) {
    if (contributors.empty()) contributors.push_back(random_signal());
    const std::size_t npo = std::max<std::size_t>(spec_.outputs, 1);
    std::vector<std::vector<NodeIndex>> shares(npo);
    for (std::size_t i = 0; i < contributors.size(); ++i) {
      shares[i % npo].push_back(contributors[i]);
    }
    for (std::size_t j = 0; j < npo; ++j) {
      if (shares[j].empty()) shares[j].push_back(random_signal());
      const NodeIndex po = tree(std::move(shares[j]), (j % 2) == 0);
      nl_.mark_output(po);
    }
  }

  const SynthSpec& spec() const { return spec_; }
  Netlist& netlist() { return nl_; }
  Rng& rng() { return rng_; }
  const std::vector<NodeIndex>& pis() const { return pis_; }
  const std::vector<NodeIndex>& ffs() const { return ffs_; }
  std::size_t gate_count() const { return gates_; }

 private:
  SynthSpec spec_;
  Netlist nl_;
  Rng rng_;
  std::vector<NodeIndex> pis_;
  std::vector<NodeIndex> ffs_;
  std::vector<NodeIndex> gate_nodes_;
  std::vector<std::uint8_t> used_;
  std::size_t gates_ = 0;
};

/// Ripple-carry counter with enable; XOR feedback, no reset.
Netlist build_counter(const SynthSpec& spec) {
  Builder b(spec);
  Netlist& nl = b.netlist();
  const auto& in = b.pis();
  const auto& ff = b.ffs();
  const std::size_t m = ff.size();

  // Toggle chain: t_0 = enable, t_i = t_{i-1} & b_{i-1}.
  const NodeIndex enable = in[0];
  std::vector<NodeIndex> toggles(m);
  NodeIndex carry = enable;
  for (std::size_t i = 0; i < m; ++i) {
    toggles[i] = carry;
    if (i + 1 < m) carry = b.g_and(carry, ff[i]);
    const NodeIndex next = b.g_xor(ff[i], toggles[i]);
    b.set_dff(ff[i], next);
    b.offer(next);
  }

  // Terminal-count core plus comparators keep the data inputs
  // observable. Alternating state-vs-input and input-vs-input
  // comparators give the restricted MOT strategy a foothold: an
  // input-only subterm can force an output to a *constant* value in
  // some frames even though the state never leaves X under
  // three-valued logic.
  std::vector<NodeIndex> contributors;
  contributors.push_back(b.tree({ff.begin(), ff.end()}, /*start_and=*/true));
  for (std::size_t j = 1; j < in.size(); ++j) {
    if (j % 2 == 0 && in.size() > 2) {
      contributors.push_back(b.g_xnor(in[j], in[(j + 1) % in.size()]));
    } else {
      contributors.push_back(b.g_xnor(in[j], ff[(j - 1) % m]));
    }
  }

  auto pads = b.pad_to_target(/*reserve_gates=*/contributors.size() + 4);
  contributors.insert(contributors.end(), pads.begin(), pads.end());
  for (NodeIndex n : b.sweep_unused_sources()) contributors.push_back(n);
  b.build_outputs(std::move(contributors));

  nl.finalize();
  return std::move(b.netlist());
}

/// Synchronizable FSM: a decoded input pattern clears the registers.
Netlist build_controller(const SynthSpec& spec) {
  Builder b(spec);
  Netlist& nl = b.netlist();
  Rng& rng = b.rng();
  const auto& in = b.pis();
  const auto& ff = b.ffs();

  // Reset decode over up to three inputs (mixed polarities).
  std::vector<NodeIndex> literals;
  for (std::size_t i = 0; i < std::min<std::size_t>(3, in.size()); ++i) {
    literals.push_back(rng.flip() ? in[i] : b.g_not(in[i]));
  }
  const NodeIndex rst = b.tree(literals, /*start_and=*/true);
  const NodeIndex nrst = b.g_not(rst);

  auto random_literal = [&] {
    const NodeIndex s = b.random_signal();
    return rng.flip() ? s : b.g_not(s);
  };

  // Random two-input product over distinct operands (a duplicate draw
  // degenerates to a literal through an inverter).
  auto random_product = [&] {
    const NodeIndex l1 = random_literal();
    NodeIndex l2 = random_literal();
    if (l1 == l2) l2 = b.g_not(l2);
    return b.g_and(l1, l2);
  };

  // Next state: two-level random logic gated by the reset.
  for (NodeIndex f : ff) {
    const NodeIndex sum = b.g_or(random_product(), random_product());
    const NodeIndex next = b.g_and(sum, nrst);
    b.set_dff(f, next);
    b.offer(next);
  }

  // Output cores: random two-level logic over state and inputs.
  std::vector<NodeIndex> contributors;
  for (std::size_t j = 0; j < spec.outputs; ++j) {
    contributors.push_back(b.g_or(random_product(), random_product()));
  }

  auto pads = b.pad_to_target(contributors.size() + 4);
  contributors.insert(contributors.end(), pads.begin(), pads.end());
  for (NodeIndex n : b.sweep_unused_sources()) contributors.push_back(n);
  b.build_outputs(std::move(contributors));

  nl.finalize();
  return std::move(b.netlist());
}

/// Random gate network with state feedback.
Netlist build_random_logic(const SynthSpec& spec) {
  Builder b(spec);
  Netlist& nl = b.netlist();
  Rng& rng = b.rng();
  const auto& ff = b.ffs();

  // Frontier of currently sinkless signals; gates prefer to consume it
  // so the finished circuit has no dead logic.
  std::vector<NodeIndex> frontier(b.pis());
  frontier.insert(frontier.end(), ff.begin(), ff.end());

  auto take = [&]() -> NodeIndex {
    if (!frontier.empty() && rng.chance(0.7)) {
      const std::size_t i = rng.below(frontier.size());
      const NodeIndex n = frontier[i];
      frontier[i] = frontier.back();
      frontier.pop_back();
      return n;
    }
    return b.random_signal();
  };

  const std::size_t reserve = ff.size() + spec.outputs + 8;
  while (b.gate_count() + reserve < spec.target_gates) {
    const std::uint64_t kind = rng.below(6);
    NodeIndex g;
    if (kind == 5) {
      g = b.g_not(take());
    } else {
      NodeIndex a = take();
      NodeIndex c = take();
      if (a == c) {
        // Both takes hit the same node; a unary gate still gives it a
        // sink without creating a duplicate fanin.
        b.offer(a);
        g = b.g_not(a);
        frontier.push_back(g);
        continue;
      }
      switch (kind) {
        case 0:
          g = b.g_and(a, c);
          break;
        case 1:
          g = b.g_or(a, c);
          break;
        case 2:
          g = b.g_nand(a, c);
          break;
        case 3:
          g = b.g_nor(a, c);
          break;
        default: {
          const NodeIndex d = b.random_signal();
          g = rng.flip() ? b.g_and(b.g_or(a, c), d) : b.g_or(b.g_and(a, c), d);
          break;
        }
      }
    }
    b.offer(g);
    frontier.push_back(g);
  }

  // Next state from the frontier (keeps those cones observable through
  // the registers). A share of the flip-flops loads through an
  // input-gated AND — those registers synchronize under random
  // vectors, giving the intermediate X01 coverage profile of the
  // paper's random-logic circuits (s641, s713, s5378, ...).
  for (NodeIndex f : ff) {
    if (rng.chance(0.5)) {
      const NodeIndex gate_in = b.pis()[rng.below(b.pis().size())];
      NodeIndex d = take();
      // take() may hand back gate_in itself; invert it so the AND
      // never sees the same net on both pins.
      if (d == gate_in) d = b.g_not(d);
      b.set_dff(f, b.g_and(d, gate_in));
    } else {
      b.set_dff(f, take());
    }
  }

  // Outputs soak up whatever is left sinkless, plus any source the
  // random draws never touched.
  for (NodeIndex n : b.sweep_unused_sources()) frontier.push_back(n);
  b.build_outputs(std::move(frontier));

  nl.finalize();
  return std::move(b.netlist());
}

/// Twin-path comparators: three-valued simulation sees X everywhere,
/// symbolic simulation sees constants.
Netlist build_twin_paths(const SynthSpec& spec) {
  Builder b(spec);
  Netlist& nl = b.netlist();
  Rng& rng = b.rng();
  const auto& in = b.pis();
  const auto& ff = b.ffs();
  const std::size_t m = ff.size();

  // State never synchronizes in three-valued logic: XOR feedback.
  for (std::size_t i = 0; i < m; ++i) {
    const NodeIndex mix = b.g_xor(ff[i], in[i % in.size()]);
    const NodeIndex next =
        b.g_xor(mix, ff[(i + 1) % m]);
    b.set_dff(ff[i], next);
    b.offer(next);
  }

  // Each output compares two structurally different implementations of
  // the same function f = (a | b) & c over random (state, input)
  // operands: copy1 = AND(OR(a,b),c), copy2 = OR(AND(a,c),AND(b,c)).
  // Symbolically XNOR(copy1, copy2) == 1; three-valued it is X
  // whenever a state operand is X. A stuck-at fault in either copy
  // breaks the identity.
  std::vector<NodeIndex> contributors;
  const std::size_t cores =
      std::max<std::size_t>(spec.outputs, spec.target_gates / 12);
  for (std::size_t j = 0; j < cores; ++j) {
    // Half of the cores are input-only: a fault inside one produces an
    // input-determined (hence symbolically *constant*) faulty
    // response, which already the SOT strategy can observe; the
    // state-involving cores need rMOT/MOT.
    const bool input_only = (j % 2) == 0;
    const std::size_t ai = rng.below(m);
    NodeIndex a, bb;
    if (input_only && in.size() > 1) {
      const std::size_t ia = rng.below(in.size());
      a = in[ia];
      bb = in[(ia + 1 + rng.below(in.size() - 1)) % in.size()];
    } else {
      a = rng.flip() ? ff[ai] : in[rng.below(in.size())];
      bb = ff[rng.below(m)];
      if (bb == a) bb = m > 1 ? ff[(ai + 1) % m] : b.g_not(a);
    }
    NodeIndex c = in[rng.below(in.size())];
    if (c == a || c == bb) c = b.g_not(c);
    const NodeIndex copy1 = b.g_and(b.g_or(a, bb), c);
    const NodeIndex copy2 = b.g_or(b.g_and(a, c), b.g_and(bb, c));
    const NodeIndex core = b.g_xnor(copy1, copy2);
    // X-transparent wrapper: OR(AND(core,s), AND(core,!s)) == core
    // symbolically but X under three-valued logic whenever the state
    // bit s is X — this is what keeps X01 blind (the paper's s510
    // detects *zero* faults three-valued) while symbolic SOT sees a
    // constant.
    const NodeIndex sbit = ff[j % m];
    const NodeIndex wrapped =
        b.g_or(b.g_and(core, sbit), b.g_and(core, b.g_not(sbit)));
    contributors.push_back(wrapped);
    if (b.gate_count() + spec.outputs + 8 >= spec.target_gates) break;
  }

  // Outputs are AND trees over the (symbolically constant-1) cores, so
  // a single broken core pulls its output to an input-determined —
  // often constant — faulty value that already SOT can observe. The
  // state-dependent pad logic is confined to the last output so it
  // cannot mask the comparator outputs.
  auto pads = b.pad_to_target(contributors.size() + 4);
  const std::size_t npo = std::max<std::size_t>(spec.outputs, 1);
  std::vector<std::vector<NodeIndex>> shares(npo);
  for (std::size_t i = 0; i < contributors.size(); ++i) {
    shares[i % npo].push_back(contributors[i]);
  }
  for (NodeIndex p : pads) shares[npo - 1].push_back(p);
  for (NodeIndex n : b.sweep_unused_sources()) {
    // Route swept sources through an X-opaque identity — XOR with the
    // symbolically-constant-0 term XOR(s,s) — so the three-valued
    // blindness of the style is preserved for either value of n.
    shares[npo - 1].push_back(b.g_xor(n, b.g_xor(ff[0], ff[0])));
  }
  for (std::size_t j = 0; j < npo; ++j) {
    if (shares[j].empty()) shares[j].push_back(b.random_signal());
    nl.mark_output(b.tree(std::move(shares[j]), /*start_and=*/true));
  }

  nl.finalize();
  return std::move(b.netlist());
}

/// Deep shift-register pipeline: stage 0 loads input logic, every
/// stage shifts, every fourth stage XORs in an input tap. The unknown
/// initial state drains out one stage per frame.
Netlist build_pipeline(const SynthSpec& spec) {
  Builder b(spec);
  Netlist& nl = b.netlist();
  Rng& rng = b.rng();
  const auto& in = b.pis();
  const auto& ff = b.ffs();
  const std::size_t m = ff.size();

  // Head stage: a small input-only cone.
  NodeIndex head = in[0];
  if (in.size() > 1) head = b.g_xor(in[0], in[1]);
  b.set_dff(ff[0], head);
  b.offer(head);

  // Shift chain with sparse input taps.
  for (std::size_t i = 1; i < m; ++i) {
    NodeIndex d = ff[i - 1];
    if (i % 4 == 0) {
      d = b.g_xor(d, in[i % in.size()]);
      b.offer(d);
    }
    b.set_dff(ff[i], d);
  }

  // Outputs observe the tail stages (deep state) and some comparators
  // against inputs (shallow, input-driven).
  std::vector<NodeIndex> contributors;
  const std::size_t taps = std::min<std::size_t>(m, spec.outputs + 2);
  for (std::size_t t = 0; t < taps; ++t) {
    contributors.push_back(
        b.g_xnor(ff[m - 1 - t], in[(t + 1) % in.size()]));
  }
  (void)rng;

  auto pads = b.pad_to_target(contributors.size() + 4);
  contributors.insert(contributors.end(), pads.begin(), pads.end());
  for (NodeIndex n : b.sweep_unused_sources()) contributors.push_back(n);
  b.build_outputs(std::move(contributors));

  nl.finalize();
  return std::move(b.netlist());
}

/// Feedback-free DFF chains, tail-only observation (see the enum doc):
/// the s-graph analysis test profile. Unlike build_pipeline there are
/// no mid-chain taps, the pads never read a flip-flop (a pad reading
/// one would widen the frame-local output support and with it the
/// observation horizons), and the longest chain's head gate has the
/// chain head as its only fanout.
Netlist build_acyclic_pipeline(const SynthSpec& spec) {
  Builder b(spec);
  Netlist& nl = b.netlist();
  Rng& rng = b.rng();
  const auto& in = b.pis();
  const auto& ff = b.ffs();
  const std::size_t m = ff.size();

  // Up to three chains; chain 0 takes the remainder, so it is never
  // shorter than the others and its length is the max init-depth.
  const std::size_t chains = std::min<std::size_t>(3, m);
  const std::size_t base = m / chains;
  const std::size_t len0 = base + m % chains;

  // Dedicated head gate of the longest chain: its only fanout is the
  // chain head, so its faults need exactly len0 flip-flop crossings to
  // reach an output — SCOAP seq_depth == structural init-depth there.
  const NodeIndex head =
      in.size() > 1 ? b.g_and(in[0], in[1]) : b.g_not(in[0]);

  std::vector<NodeIndex> tails;
  std::size_t next_ff = 0;
  for (std::size_t c = 0; c < chains; ++c) {
    const std::size_t len = c == 0 ? len0 : base;
    NodeIndex d = c == 0 ? head : in[c % in.size()];
    for (std::size_t i = 0; i < len; ++i) {
      const NodeIndex f = ff[next_ff++];
      b.set_dff(f, d);
      d = f;
    }
    tails.push_back(d);
  }

  // Tail-only observation: one comparator per chain tail.
  std::vector<NodeIndex> contributors;
  for (std::size_t c = 0; c < tails.size(); ++c) {
    contributors.push_back(b.g_xnor(tails[c], in[(c + 1) % in.size()]));
  }

  // Input-only padding chains up to the gate target.
  NodeIndex acc = kNoNode;
  while (b.gate_count() + contributors.size() + 6 < spec.target_gates) {
    const NodeIndex a = acc != kNoNode ? acc : in[rng.below(in.size())];
    NodeIndex d = in[rng.below(in.size())];
    if (d == a) d = b.g_not(d);
    switch (rng.below(4)) {
      case 0:
        acc = b.g_and(a, d);
        break;
      case 1:
        acc = b.g_or(a, d);
        break;
      case 2:
        acc = b.g_nand(a, d);
        break;
      default:
        acc = b.g_nor(a, d);
        break;
    }
    if (rng.chance(0.2)) {
      contributors.push_back(acc);
      acc = kNoNode;
    }
  }
  if (acc != kNoNode) contributors.push_back(acc);

  for (NodeIndex n : b.sweep_unused_sources()) contributors.push_back(n);
  b.build_outputs(std::move(contributors));

  nl.finalize();
  return std::move(b.netlist());
}

}  // namespace

Netlist generate_circuit(const SynthSpec& spec) {
  if (spec.inputs == 0 || spec.dffs == 0 || spec.outputs == 0) {
    throw std::invalid_argument(
        "generate_circuit: inputs, outputs and dffs must be positive");
  }
  switch (spec.style) {
    case CircuitStyle::Counter:
      return build_counter(spec);
    case CircuitStyle::Controller:
      return build_controller(spec);
    case CircuitStyle::RandomLogic:
      return build_random_logic(spec);
    case CircuitStyle::TwinPaths:
      return build_twin_paths(spec);
    case CircuitStyle::Pipeline:
      return build_pipeline(spec);
    case CircuitStyle::AcyclicPipeline:
      return build_acyclic_pipeline(spec);
  }
  throw std::invalid_argument("generate_circuit: unknown style");
}

}  // namespace motsim
