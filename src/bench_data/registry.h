#ifndef MOTSIM_BENCH_DATA_REGISTRY_H
#define MOTSIM_BENCH_DATA_REGISTRY_H

#include <string>
#include <vector>

#include "bench_data/synth_gen.h"
#include "circuit/netlist.h"

namespace motsim {

/// Reference numbers transcribed from the paper's Table I (influence
/// of ID_X-red on three-valued fault simulation, 200 random vectors).
/// -1 / negative means "not reported".
struct PaperTable1 {
  int faults = -1;  ///< |F|
  int xred = -1;    ///< X-red.
  int fd = -1;      ///< |F_d|
  double x01 = -1;  ///< X01 run time [s] (SPARCstation 10)
  double x01p = -1; ///< X01_p run time [s]
  double idxred = -1;  ///< ID_X-red run time [s]
};

/// Reference numbers from Table II (SOT vs rMOT vs MOT, 200 random
/// vectors) / Table III (deterministic sequences). Stars mark results
/// obtained with a temporary change to three-valued logic.
struct PaperStrategyRow {
  int T = -1;   ///< sequence length (Table III only)
  int fu = -1;  ///< |F_u|
  int sot = -1, rmot = -1, mot = -1;            ///< faults detected
  double sot_s = -1, rmot_s = -1, mot_s = -1;   ///< CPU time [s]
  bool sot_star = false, rmot_star = false, mot_star = false;
};

/// Reference numbers from Table IV (symbolic test evaluation).
/// `partial` marks the paper's asterisk: only a partial symbolic
/// output sequence was computed (leading frames three-valued).
struct PaperTable4 {
  int po = -1;
  int rand_T = -1, rand_size = -1;
  double rand_s = -1;
  int det_T = -1, det_size = -1;
  double det_s = -1;
  bool rand_partial = false, det_partial = false;
};

/// One circuit of the paper's experimental roster: the generation spec
/// of our synthetic stand-in (exact netlist for s27) plus every number
/// the paper reports for it.
struct BenchmarkInfo {
  SynthSpec spec;
  bool exact = false;  ///< s27: embedded verbatim, not synthesized
  bool in_table2 = false, in_table3 = false, in_table4 = false;
  PaperTable1 t1;
  PaperStrategyRow t2;  ///< Table II (random sequences)
  PaperStrategyRow t3;  ///< Table III (deterministic sequences)
  PaperTable4 t4;
};

/// The full roster, in the paper's table order (s27 first as the
/// exact reference circuit, then s208.1 ... s38584.1).
[[nodiscard]] const std::vector<BenchmarkInfo>& benchmark_roster();

/// Lookup by name; nullptr if unknown.
[[nodiscard]] const BenchmarkInfo* find_benchmark(const std::string& name);

/// Instantiates the circuit for an entry (exact s27 or synthetic).
[[nodiscard]] Netlist make_benchmark(const BenchmarkInfo& info);

/// Convenience: instantiate by name; throws std::invalid_argument for
/// unknown names.
[[nodiscard]] Netlist make_benchmark(const std::string& name);

}  // namespace motsim

#endif  // MOTSIM_BENCH_DATA_REGISTRY_H
