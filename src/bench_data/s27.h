#ifndef MOTSIM_BENCH_DATA_S27_H
#define MOTSIM_BENCH_DATA_S27_H

#include "circuit/netlist.h"

namespace motsim {

/// The ISCAS-89 benchmark s27 — small enough to be embedded verbatim
/// (4 inputs, 1 output, 3 flip-flops, 10 gates). Used as the one
/// *exact* reference circuit: every simulator is cross-validated on it
/// against brute-force initial-state enumeration.
[[nodiscard]] Netlist make_s27();

/// The `.bench` source text of s27.
[[nodiscard]] const char* s27_bench_text();

}  // namespace motsim

#endif  // MOTSIM_BENCH_DATA_S27_H
