#include "bench_data/registry.h"

#include <stdexcept>

#include "bench_data/s27.h"

namespace motsim {

namespace {

using CS = CircuitStyle;

/// Builds one roster entry. The seed is derived from the position so
/// regenerating the roster is fully deterministic.
BenchmarkInfo entry(const char* name, std::size_t pi, std::size_t po,
                    std::size_t ff, std::size_t gates, CS style,
                    std::uint64_t seed) {
  BenchmarkInfo info;
  info.spec =
      SynthSpec{name, pi, po, ff, gates, style, 0x5EEDBA5Eull * (seed + 1)};
  return info;
}

std::vector<BenchmarkInfo> build_roster() {
  std::vector<BenchmarkInfo> r;

  {  // s27 — exact embedded netlist, not part of the paper's tables.
    BenchmarkInfo s27 = entry("s27", 4, 1, 3, 10, CS::Controller, 0);
    s27.exact = true;
    r.push_back(s27);
  }

  // name, PI, PO, FF, gates, style, Table I {F, xred, fd, x01, x01p, idx},
  // Table II {_, fu, sot, rmot, mot, times, stars},
  // Table III {T, fu, sot, rmot, mot, times, stars}, Table IV.
  auto add = [&r](BenchmarkInfo info) { r.push_back(std::move(info)); };

  {
    auto e = entry("s208.1", 10, 1, 8, 96, CS::Counter, 1);
    e.t1 = {217, 195, 15, 1.58, 0.09, 0.05};
    e.in_table2 = true;
    e.t2 = {-1, 202, 0, 10, 51, 47.52, 48.26, 49.07, false, false, false};
    e.in_table3 = true;
    e.t3 = {111, 200, 0, 4, 46, 35, 35, 36, false, false, false};
    e.in_table4 = true;
    e.t4 = {1, 200, 250, 0.02, 111, 111, 0.02, false, false};
    add(e);
  }
  {
    auto e = entry("s298", 3, 6, 14, 119, CS::Controller, 2);
    e.t1 = {308, 71, 168, 1.04, 0.91, 0.05};
    e.in_table2 = true;
    e.t2 = {-1, 140, 5, 6, 6, 6.71, 7.08, 58.94, false, false, true};
    e.in_table3 = true;
    e.t3 = {162, 44, 4, 7, 7, 3.23, 1.73, 4.11, false, false, false};
    add(e);
  }
  {
    auto e = entry("s344", 9, 11, 15, 160, CS::Controller, 3);
    e.t1 = {342, 17, 291, 1.10, 1.10, 0.07};
    e.in_table2 = true;
    e.t2 = {-1, 51, 4, 6, 6, 29.84, 7.61, 336, false, false, true};
    e.in_table3 = true;
    e.t3 = {91, 13, 4, 6, 6, 3.68, 1.08, 1.13, false, false, false};
    add(e);
  }
  {
    auto e = entry("s349", 9, 11, 15, 161, CS::Controller, 4);
    e.t1 = {350, 18, 297, 1.14, 1.10, 0.07};
    e.in_table2 = true;
    e.t2 = {-1, 53, 4, 6, 6, 30.13, 7.54, 307, false, false, true};
    e.in_table3 = true;
    e.t3 = {91, 15, 4, 6, 6, 3.86, 1.07, 1.17, false, false, false};
    add(e);
  }
  {
    auto e = entry("s382", 3, 6, 21, 158, CS::Controller, 5);
    e.t1 = {399, 174, 49, 2.05, 1.64, 0.07};
    e.in_table2 = true;
    e.t2 = {-1, 350, 0, 1, 1, 31.56, 25.81, 35.10, false, false, false};
    e.in_table3 = true;
    e.t3 = {2463, 36, 3, 12, 12, 377, 22, 24, false, false, false};
    add(e);
  }
  {
    auto e = entry("s386", 7, 7, 6, 159, CS::Controller, 6);
    e.t1 = {384, 63, 179, 0.57, 0.48, 0.06};
    e.in_table2 = true;
    e.t2 = {-1, 205, 0, 0, 0, 0.58, 0.64, 0.75, false, false, false};
    add(e);
  }
  {
    auto e = entry("s400", 3, 6, 21, 162, CS::Controller, 7);
    e.t1 = {424, 51, 51, 2.23, 1.76, 0.08};
    e.in_table2 = true;
    e.t2 = {-1, 373, 0, 1, 1, 33.21, 27.11, 36.62, false, false, false};
    e.in_table3 = true;
    e.t3 = {1282, 73, 6, 13, 13, 208, 30, 35, false, false, false};
    add(e);
  }
  {
    auto e = entry("s420.1", 18, 1, 16, 218, CS::Counter, 8);
    e.t1 = {455, 419, 22, 4.70, 0.22, 0.11};
    e.in_table2 = true;
    e.t2 = {-1, 433, 0, 13, 13, 533, 529, 401, false, false, true};
    e.in_table3 = true;
    e.t3 = {173, 432, 0, 10, 6, 672, 667, 417, false, false, true};
    add(e);
  }
  {
    auto e = entry("s444", 3, 6, 21, 181, CS::Controller, 9);
    e.t1 = {474, 211, 53, 2.42, 1.98, 0.08};
    e.in_table2 = true;
    e.t2 = {-1, 421, 0, 1, 1, 71.91, 64.05, 56.37, false, false, true};
    add(e);
  }
  {
    auto e = entry("s510", 19, 7, 6, 211, CS::TwinPaths, 10);
    e.t1 = {564, 564, 0, 5.35, 0.09, 0.10};
    e.in_table2 = true;
    e.t2 = {-1, 564, 395, 477, 531, 507, 440, 585, false, false, false};
    e.in_table3 = true;
    e.t3 = {200, 564, 549, 549, 549, 265, 250, 380, false, false, false};
    e.in_table4 = true;
    e.t4 = {7, 200, 439, 0.05, 200, 339, 0.07, false, false};
    add(e);
  }
  {
    auto e = entry("s526", 3, 6, 21, 193, CS::Controller, 11);
    e.t1 = {555, 283, 48, 3.20, 2.52, 0.10};
    e.in_table2 = true;
    e.t2 = {-1, 507, 0, 1, 1, 95.32, 105, 101, false, true, true};
    e.in_table3 = true;
    e.t3 = {754, 137, 2, 11, 11, 201, 32, 41, false, false, false};
    add(e);
  }
  {
    auto e = entry("s641", 35, 24, 19, 379, CS::RandomLogic, 12);
    e.t1 = {467, 72, 345, 0.64, 0.51, 0.10};
    e.in_table2 = true;
    e.t2 = {-1, 122, 4, 4, 4, 1.77, 5.64, 8.75, false, false, false};
    e.in_table3 = true;
    e.t3 = {133, 64, 4, 4, 4, 0.89, 2.84, 3.57, false, false, false};
    add(e);
  }
  {
    auto e = entry("s713", 35, 23, 19, 393, CS::RandomLogic, 13);
    e.t1 = {581, 94, 417, 0.94, 0.78, 0.13};
    e.in_table2 = true;
    e.t2 = {-1, 164, 4, 4, 4, 2.15, 7.93, 11.39, false, false, false};
    e.in_table3 = true;
    e.t3 = {107, 111, 4, 4, 4, 1.15, 3.45, 5.14, false, false, false};
    add(e);
  }
  {
    auto e = entry("s820", 18, 19, 5, 289, CS::Controller, 14);
    e.t1 = {850, 114, 236, 2.14, 2.02, 0.18};
    e.in_table2 = true;
    e.t2 = {-1, 641, 1, 1, 1, 1.91, 2.55, 3.68, false, false, false};
    e.in_table3 = true;
    e.t3 = {411, 154, 2, 2, 2, 1.35, 1.94, 2.41, false, false, false};
    add(e);
  }
  {
    auto e = entry("s832", 18, 19, 5, 287, CS::Controller, 15);
    e.t1 = {870, 116, 235, 2.23, 2.11, 0.20};
    e.in_table2 = true;
    e.t2 = {-1, 635, 1, 1, 1, 1.94, 2.65, 3.92, false, false, false};
    e.in_table3 = true;
    e.t3 = {377, 162, 1, 1, 1, 1.04, 1.29, 1.58, false, false, false};
    add(e);
  }
  {
    auto e = entry("s838.1", 34, 1, 32, 446, CS::Counter, 16);
    e.t1 = {931, 867, 38, 15.11, 0.51, 0.27};
    e.in_table2 = true;
    e.t2 = {-1, 893, 0, 12, 11, 1801, 1759, 1041, true, true, true};
    add(e);
  }
  {
    auto e = entry("s953", 16, 23, 29, 395, CS::TwinPaths, 17);
    e.t1 = {1079, 852, 90, 23.31, 1.85, 0.24};
    e.in_table2 = true;
    e.t2 = {-1, 989, 513, 516, 516, 86.90, 116, 182, false, false, false};
    e.in_table3 = true;
    e.t3 = {16, 995, 132, 143, 171, 27, 31, 73, false, false, false};
    e.in_table4 = true;
    e.t4 = {23, 200, 179, 0.23, 16, 198, 0.05, false, false};
    add(e);
  }
  {
    auto e = entry("s1196", 14, 14, 18, 529, CS::RandomLogic, 18);
    e.t1 = {1242, 31, 807, 2.11, 2.09, 0.31};
    e.in_table2 = true;
    e.t2 = {-1, 435, 0, 0, 0, 1.39, 1.49, 1.63, false, false, false};
    add(e);
  }
  {
    auto e = entry("s1238", 14, 14, 18, 508, CS::RandomLogic, 19);
    e.t1 = {1355, 43, 822, 2.58, 2.46, 0.32};
    e.in_table2 = true;
    e.t2 = {-1, 533, 0, 0, 0, 1.77, 1.88, 2.16, false, false, false};
    e.in_table3 = true;
    e.t3 = {349, 72, 0, 0, 0, 0.85, 0.87, 0.88, false, false, false};
    add(e);
  }
  {
    auto e = entry("s1423", 17, 5, 74, 657, CS::Pipeline, 20);
    e.t1 = {1515, 368, 333, 9.66, 8.54, 0.43};
    e.in_table2 = true;
    e.t2 = {-1, 1182, 2, 6, 6, 34.77, 51.50, 62.18, true, true, true};
    add(e);
  }
  {
    auto e = entry("s1488", 8, 19, 6, 653, CS::Controller, 21);
    e.t1 = {1486, 51, 820, 4.31, 4.27, 0.37};
    e.in_table2 = true;
    e.t2 = {-1, 666, 2, 2, 2, 2.56, 3.31, 9.82, false, false, false};
    e.in_table3 = true;
    e.t3 = {590, 110, 3, 3, 3, 3.10, 2.54, 3.40, false, false, false};
    add(e);
  }
  {
    auto e = entry("s1494", 8, 19, 6, 647, CS::Controller, 22);
    e.t1 = {1506, 51, 817, 4.61, 4.48, 0.40};
    e.in_table2 = true;
    e.t2 = {-1, 689, 2, 2, 2, 2.72, 3.34, 12.59, false, false, false};
    e.in_table3 = true;
    e.t3 = {469, 134, 5, 5, 5, 2.51, 2.58, 3.79, false, false, false};
    add(e);
  }
  {
    auto e = entry("s5378", 35, 49, 179, 2779, CS::RandomLogic, 23);
    e.t1 = {4603, 1647, 2327, 23.68, 18.44, 1.35};
    e.in_table2 = true;
    e.t2 = {-1, 2276, 7, 12, 99, 115, 401, 651, true, true, true};
    e.in_table3 = true;
    e.t3 = {408, 1196, 11, 19, 19, 61, 347, 543, true, true, true};
    e.in_table4 = true;
    e.t4 = {49, 200, 69, 0.36, 408, 21, 0.90, true, true};
    add(e);
  }
  // Table-I-only giants (the paper's hybrid simulator stayed mostly in
  // SOT mode for these due to the space requirements of rMOT/MOT).
  {
    auto e = entry("s9234.1", 36, 39, 211, 5597, CS::RandomLogic, 24);
    e.t1 = {6927, 4417, 366, 183.25, 132.21, 2.56};
    add(e);
  }
  {
    auto e = entry("s13207.1", 62, 152, 638, 7951, CS::RandomLogic, 25);
    e.t1 = {9815, 7476, 858, 318.53, 67.58, 3.85};
    add(e);
  }
  {
    auto e = entry("s15850.1", 77, 150, 534, 9772, CS::Pipeline, 26);
    e.t1 = {11725, 6138, 1645, 326.11, 223.12, 4.61};
    add(e);
  }
  {
    auto e = entry("s35932", 35, 320, 1728, 16065, CS::RandomLogic, 27);
    e.t1 = {39094, 4306, 22527, 267.34, 264.94, 11.82};
    add(e);
  }
  {
    auto e = entry("s38417", 28, 106, 1636, 22179, CS::Counter, 28);
    e.t1 = {31180, 29172, 1098, 1034.19, 183.17, 12.07};
    add(e);
  }
  {
    auto e = entry("s38584.1", 38, 304, 1426, 19253, CS::RandomLogic, 29);
    e.t1 = {36303, 6634, 12585, 2321.08, 2065.98, 20.35};
    add(e);
  }

  return r;
}

}  // namespace

const std::vector<BenchmarkInfo>& benchmark_roster() {
  static const std::vector<BenchmarkInfo> roster = build_roster();
  return roster;
}

const BenchmarkInfo* find_benchmark(const std::string& name) {
  for (const BenchmarkInfo& info : benchmark_roster()) {
    if (info.spec.name == name) return &info;
  }
  return nullptr;
}

Netlist make_benchmark(const BenchmarkInfo& info) {
  if (info.exact) return make_s27();
  return generate_circuit(info.spec);
}

Netlist make_benchmark(const std::string& name) {
  const BenchmarkInfo* info = find_benchmark(name);
  if (info == nullptr) {
    throw std::invalid_argument("unknown benchmark circuit: " + name);
  }
  return make_benchmark(*info);
}

}  // namespace motsim
