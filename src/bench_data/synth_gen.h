#ifndef MOTSIM_BENCH_DATA_SYNTH_GEN_H
#define MOTSIM_BENCH_DATA_SYNTH_GEN_H

#include <cstdint>
#include <string>

#include "circuit/netlist.h"

namespace motsim {

/// Structural style of a synthetic benchmark circuit. The styles
/// reproduce the *phenomena* the paper's ISCAS-89 circuits exhibit
/// (the original netlists are not available offline; see DESIGN.md §4):
enum class CircuitStyle : std::uint8_t {
  /// Ripple-carry counter with enable and no reset (s208.1 / s420.1 /
  /// s838.1): the XOR feedback keeps every flip-flop at X under
  /// three-valued logic forever, so X01 detects almost nothing while
  /// the symbolic strategies — above all full MOT — recover many
  /// faults.
  Counter,
  /// Synchronizable FSM: a decoded input pattern clears the state
  /// registers, so random vectors synchronize the machine quickly,
  /// three-valued simulation performs well and rMOT adds only a
  /// trickle (s298, s344, ..., s1488/s1494).
  Controller,
  /// Random gate network with state feedback; intermediate profile
  /// (s641, s713, s1196, ..., s5378 and the Table-I-only giants).
  RandomLogic,
  /// Twin-path comparators: each output compares two structurally
  /// different implementations of the same function, so outputs are
  /// symbolically constant but X under three-valued logic — massive
  /// X-pessimism (s510, s953): X01 detects nothing or little while
  /// symbolic SOT already detects hundreds of faults.
  TwinPaths,
  /// Deep shift-register pipelines with input taps (s1423, s15850.1):
  /// the unknown state flushes out stage by stage, so three-valued
  /// coverage ramps up with sequence length and a sizable
  /// X-redundant tail remains at the deep stages.
  Pipeline,
  /// Feedback-free DFF chains with tail-only observation: the s-graph
  /// is acyclic, every flip-flop has a finite synchronization depth,
  /// and the longest chain is fed by a dedicated head gate whose only
  /// fanout is the chain head — so the SCOAP sequential depth of that
  /// gate's faults equals the chain length, the structural init-depth
  /// maximum (the aggregate bound the s-graph tests check), and with
  /// enough frames every rMOT/MOT fault downgrades to SOT-equivalent
  /// updates (docs/ANALYSIS.md pass 6).
  AcyclicPipeline,
};

[[nodiscard]] const char* to_cstring(CircuitStyle s) noexcept;

/// Generation parameters for one synthetic circuit.
struct SynthSpec {
  std::string name;
  std::size_t inputs = 4;
  std::size_t outputs = 1;
  std::size_t dffs = 4;
  /// Approximate combinational gate count; the generator pads with
  /// observable logic until it is reached (never exceeded by more than
  /// a small tree).
  std::size_t target_gates = 50;
  CircuitStyle style = CircuitStyle::RandomLogic;
  std::uint64_t seed = 1;
};

/// Generates a deterministic synthetic synchronous circuit obeying the
/// spec. The result is finalized, structurally valid, and free of
/// dangling or unobservable logic (checked in tests with validate()).
[[nodiscard]] Netlist generate_circuit(const SynthSpec& spec);

}  // namespace motsim

#endif  // MOTSIM_BENCH_DATA_SYNTH_GEN_H
