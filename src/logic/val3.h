#ifndef MOTSIM_LOGIC_VAL3_H
#define MOTSIM_LOGIC_VAL3_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace motsim {

/// Three-valued logic value (Kleene logic) used by the conventional
/// sequential fault simulator: 0, 1 and X (unknown).
///
/// X models the unknown initial state of memory elements. Simulation
/// with Val3 computes a *lower bound* of fault coverage under the
/// single observation time (SOT) strategy — the inaccuracy the paper's
/// symbolic techniques remove.
enum class Val3 : std::uint8_t {
  Zero = 0,
  One = 1,
  X = 2,
};

/// True if `v` is a defined binary value (0 or 1).
[[nodiscard]] constexpr bool is_binary(Val3 v) noexcept {
  return v == Val3::Zero || v == Val3::One;
}

/// Converts a bool to the corresponding binary Val3.
[[nodiscard]] constexpr Val3 to_val3(bool b) noexcept {
  return b ? Val3::One : Val3::Zero;
}

/// Kleene conjunction: 0 dominates, X is absorbed by 0.
[[nodiscard]] constexpr Val3 and3(Val3 a, Val3 b) noexcept {
  if (a == Val3::Zero || b == Val3::Zero) return Val3::Zero;
  if (a == Val3::One && b == Val3::One) return Val3::One;
  return Val3::X;
}

/// Kleene disjunction: 1 dominates, X is absorbed by 1.
[[nodiscard]] constexpr Val3 or3(Val3 a, Val3 b) noexcept {
  if (a == Val3::One || b == Val3::One) return Val3::One;
  if (a == Val3::Zero && b == Val3::Zero) return Val3::Zero;
  return Val3::X;
}

/// Kleene negation: X stays X.
[[nodiscard]] constexpr Val3 not3(Val3 a) noexcept {
  if (a == Val3::Zero) return Val3::One;
  if (a == Val3::One) return Val3::Zero;
  return Val3::X;
}

/// Kleene exclusive-or: X on either side yields X.
[[nodiscard]] constexpr Val3 xor3(Val3 a, Val3 b) noexcept {
  if (!is_binary(a) || !is_binary(b)) return Val3::X;
  return to_val3(a != b);
}

/// Kleene exclusive-nor.
[[nodiscard]] constexpr Val3 xnor3(Val3 a, Val3 b) noexcept {
  return not3(xor3(a, b));
}

/// Information ordering of Kleene logic: X is refined by 0 and by 1.
/// Used by property tests: a three-valued simulation result must be an
/// abstraction of every concrete two-valued simulation.
[[nodiscard]] constexpr bool refines(Val3 concrete, Val3 abstract) noexcept {
  return abstract == Val3::X || abstract == concrete;
}

/// One-character display: '0', '1', 'X'.
[[nodiscard]] char to_char(Val3 v) noexcept;

/// Parses '0', '1', 'x'/'X'. Throws std::invalid_argument otherwise.
[[nodiscard]] Val3 val3_from_char(char c);

std::ostream& operator<<(std::ostream& os, Val3 v);

/// Renders a vector of Val3 as a compact string like "01X0".
[[nodiscard]] std::string to_string(const std::vector<Val3>& values);

}  // namespace motsim

#endif  // MOTSIM_LOGIC_VAL3_H
