#include "logic/val4.h"

#include <ostream>

namespace motsim {

const char* to_cstring(Val4 v) noexcept {
  switch (v) {
    case Val4::X:
      return "{X}";
    case Val4::X0:
      return "{X,0}";
    case Val4::X1:
      return "{X,1}";
    default:
      return "{X,0,1}";
  }
}

std::ostream& operator<<(std::ostream& os, Val4 v) {
  return os << to_cstring(v);
}

}  // namespace motsim
