#ifndef MOTSIM_LOGIC_PACKED_VAL3_H
#define MOTSIM_LOGIC_PACKED_VAL3_H

#include <cstdint>

#include "logic/val3.h"

namespace motsim {

/// Number of three-valued slots carried by one PackedVal3 word pair.
inline constexpr unsigned kPackedSlots = 64;

/// 64 three-valued values in two machine words ("two-rail" encoding):
/// bit i of `ones` set means slot i carries 1, bit i of `zeros` means
/// slot i carries 0, neither bit means X. The invariant
/// `ones & zeros == 0` holds for every well-formed pack.
///
/// This is the plane type of the bit-parallel three-valued engine
/// (sim3/bitpar_sim3): one slot per faulty machine (PPSFP) or per
/// pattern. The slot-wise operations below implement exact Kleene
/// logic, so packed evaluation is value-identical to scalar
/// Val3 evaluation of each slot.
struct PackedVal3 {
  std::uint64_t ones = 0;
  std::uint64_t zeros = 0;

  friend bool operator==(const PackedVal3&, const PackedVal3&) = default;
};

/// Slot-wise Kleene operations.
[[nodiscard]] constexpr PackedVal3 pand(PackedVal3 a, PackedVal3 b) {
  return {a.ones & b.ones, a.zeros | b.zeros};
}
[[nodiscard]] constexpr PackedVal3 por(PackedVal3 a, PackedVal3 b) {
  return {a.ones | b.ones, a.zeros & b.zeros};
}
[[nodiscard]] constexpr PackedVal3 pnot(PackedVal3 a) {
  return {a.zeros, a.ones};
}
[[nodiscard]] constexpr PackedVal3 pxor(PackedVal3 a, PackedVal3 b) {
  return {(a.ones & b.zeros) | (a.zeros & b.ones),
          (a.ones & b.ones) | (a.zeros & b.zeros)};
}

/// All 64 slots set to the same scalar value.
[[nodiscard]] constexpr PackedVal3 broadcast(Val3 v) {
  switch (v) {
    case Val3::Zero:
      return {0, ~std::uint64_t{0}};
    case Val3::One:
      return {~std::uint64_t{0}, 0};
    default:
      return {0, 0};
  }
}

/// Value of one slot.
[[nodiscard]] constexpr Val3 slot_value(PackedVal3 p, unsigned slot) {
  const std::uint64_t bit = std::uint64_t{1} << slot;
  if (p.ones & bit) return Val3::One;
  if (p.zeros & bit) return Val3::Zero;
  return Val3::X;
}

/// Overwrites one slot with a scalar value.
constexpr void set_slot(PackedVal3& p, unsigned slot, Val3 v) {
  const std::uint64_t bit = std::uint64_t{1} << slot;
  p.ones &= ~bit;
  p.zeros &= ~bit;
  if (v == Val3::One) p.ones |= bit;
  if (v == Val3::Zero) p.zeros |= bit;
}

/// Applies a forcing mask (fault injection): the forced slots are
/// overwritten with the force's value, all other slots keep their
/// computed value.
[[nodiscard]] constexpr PackedVal3 apply_force(PackedVal3 value,
                                               PackedVal3 force) {
  const std::uint64_t mask = force.ones | force.zeros;
  return {(value.ones & ~mask) | force.ones,
          (value.zeros & ~mask) | force.zeros};
}

}  // namespace motsim

#endif  // MOTSIM_LOGIC_PACKED_VAL3_H
