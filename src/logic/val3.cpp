#include "logic/val3.h"

#include <ostream>
#include <stdexcept>

namespace motsim {

char to_char(Val3 v) noexcept {
  switch (v) {
    case Val3::Zero:
      return '0';
    case Val3::One:
      return '1';
    default:
      return 'X';
  }
}

Val3 val3_from_char(char c) {
  switch (c) {
    case '0':
      return Val3::Zero;
    case '1':
      return Val3::One;
    case 'x':
    case 'X':
      return Val3::X;
    default:
      throw std::invalid_argument(std::string("not a Val3 character: ") + c);
  }
}

std::ostream& operator<<(std::ostream& os, Val3 v) { return os << to_char(v); }

std::string to_string(const std::vector<Val3>& values) {
  std::string s;
  s.reserve(values.size());
  for (Val3 v : values) s.push_back(to_char(v));
  return s;
}

}  // namespace motsim
