#ifndef MOTSIM_LOGIC_VAL4_H
#define MOTSIM_LOGIC_VAL4_H

#include <cstdint>
#include <iosfwd>

#include "logic/val3.h"

namespace motsim {

/// The four-valued I_X encoding of Section III of the paper.
///
/// After a three-valued true-value simulation of the whole test
/// sequence, each lead is summarized by *which binary values it ever
/// assumed*. The element always contains X (the unknown initial state
/// makes every lead potentially unknown); the two data bits record
/// whether the lead ever evaluated to 0 and whether it ever evaluated
/// to 1:
///
///   {X}       — the lead never assumes 0 or 1,
///   {X,0}     — the lead assumes 0 but never 1,
///   {X,1}     — the lead assumes 1 but never 0,
///   {X,0,1}   — the lead assumes both binary values.
///
/// The lattice order (information content) is {X} < {X,0},{X,1} < {X,0,1}.
enum class Val4 : std::uint8_t {
  X = 0b00,    ///< {X}
  X0 = 0b01,   ///< {X,0}
  X1 = 0b10,   ///< {X,1}
  X01 = 0b11,  ///< {X,0,1}
};

/// True if the lead ever assumed binary value 0.
[[nodiscard]] constexpr bool saw_zero(Val4 v) noexcept {
  return (static_cast<std::uint8_t>(v) & 0b01) != 0;
}

/// True if the lead ever assumed binary value 1.
[[nodiscard]] constexpr bool saw_one(Val4 v) noexcept {
  return (static_cast<std::uint8_t>(v) & 0b10) != 0;
}

/// Lattice join: union of the observed value sets.
[[nodiscard]] constexpr Val4 join(Val4 a, Val4 b) noexcept {
  return static_cast<Val4>(static_cast<std::uint8_t>(a) |
                           static_cast<std::uint8_t>(b));
}

/// Lattice meet: intersection of the observed value sets.
[[nodiscard]] constexpr Val4 meet(Val4 a, Val4 b) noexcept {
  return static_cast<Val4>(static_cast<std::uint8_t>(a) &
                           static_cast<std::uint8_t>(b));
}

/// Accumulates one simulation-step value into the I_X summary:
/// a binary 0 sets the saw-0 bit, a binary 1 the saw-1 bit, X nothing.
[[nodiscard]] constexpr Val4 accumulate(Val4 acc, Val3 step) noexcept {
  switch (step) {
    case Val3::Zero:
      return join(acc, Val4::X0);
    case Val3::One:
      return join(acc, Val4::X1);
    default:
      return acc;
  }
}

/// Partial order test: every value set is ordered by inclusion.
[[nodiscard]] constexpr bool leq(Val4 a, Val4 b) noexcept {
  return meet(a, b) == a;
}

/// Display form: "{X}", "{X,0}", "{X,1}", "{X,0,1}".
[[nodiscard]] const char* to_cstring(Val4 v) noexcept;

std::ostream& operator<<(std::ostream& os, Val4 v);

}  // namespace motsim

#endif  // MOTSIM_LOGIC_VAL4_H
