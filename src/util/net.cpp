#include "util/net.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace motsim {

namespace {

std::string errno_message(const char* what) {
  // strerror's static buffer is only racy against other strerror
  // calls; this helper is the sole caller in the process and the
  // string is copied out immediately.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  return std::string(what) + ": " + std::strerror(errno);
}

Expected<sockaddr_in, std::string> make_addr(const std::string& host,
                                             std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return make_unexpected("invalid IPv4 address '" + host + "'");
  }
  return addr;
}

}  // namespace

void OwnedFd::reset() noexcept {
  if (fd_ >= 0) {
    // Retrying close on EINTR is wrong on Linux (the fd is released
    // either way); one call is the portable best effort.
    ::close(fd_);
    fd_ = -1;
  }
}

Expected<std::size_t, std::string> read_full(int fd, void* buf,
                                             std::size_t size) {
  std::size_t done = 0;
  char* out = static_cast<char*>(buf);
  while (done < size) {
    const ssize_t n = ::read(fd, out + done, size - done);
    if (n > 0) {
      done += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) {
      if (done == 0) return std::size_t{0};  // clean EOF at a boundary
      return make_unexpected("unexpected EOF mid-read (got " +
                             std::to_string(done) + " of " +
                             std::to_string(size) + " bytes)");
    }
    if (errno == EINTR) continue;
    return make_unexpected(errno_message("read"));
  }
  return size;
}

Expected<bool, std::string> write_full(int fd, const void* buf,
                                       std::size_t size) {
  std::size_t done = 0;
  const char* in = static_cast<const char*>(buf);
  while (done < size) {
    const ssize_t n = ::write(fd, in + done, size - done);
    if (n >= 0) {
      done += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    return make_unexpected(errno_message("write"));
  }
  return true;
}

Expected<OwnedFd, std::string> listen_tcp(const std::string& host,
                                          std::uint16_t port, int backlog) {
  const auto addr = make_addr(host, port);
  if (!addr.has_value()) return make_unexpected(addr.error());
  OwnedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return make_unexpected(errno_message("socket"));
  const int one = 1;
  (void)::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&*addr),
             sizeof(*addr)) != 0) {
    return make_unexpected(errno_message("bind"));
  }
  if (::listen(fd.get(), backlog) != 0) {
    return make_unexpected(errno_message("listen"));
  }
  return fd;
}

Expected<OwnedFd, std::string> connect_tcp(const std::string& host,
                                           std::uint16_t port) {
  const auto addr = make_addr(host, port);
  if (!addr.has_value()) return make_unexpected(addr.error());
  OwnedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return make_unexpected(errno_message("socket"));
  for (;;) {
    if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&*addr),
                  sizeof(*addr)) == 0) {
      set_tcp_nodelay(fd.get());
      return fd;
    }
    if (errno == EINTR) continue;
    return make_unexpected(errno_message("connect"));
  }
}

Expected<std::uint16_t, std::string> local_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return make_unexpected(errno_message("getsockname"));
  }
  return static_cast<std::uint16_t>(ntohs(addr.sin_port));
}

Expected<OwnedFd, std::string> accept_with_timeout(int listen_fd,
                                                   int timeout_ms,
                                                   int wake_fd) {
  pollfd fds[2];
  fds[0] = {listen_fd, POLLIN, 0};
  nfds_t nfds = 1;
  if (wake_fd >= 0) {
    fds[1] = {wake_fd, POLLIN, 0};
    nfds = 2;
  }
  for (;;) {
    const int r = ::poll(fds, nfds, timeout_ms);
    if (r < 0) {
      if (errno == EINTR) continue;
      return make_unexpected(errno_message("poll"));
    }
    if (r == 0 || (nfds == 2 && (fds[1].revents & POLLIN) != 0)) {
      return OwnedFd();  // timeout or wake-up: no connection
    }
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      set_tcp_nodelay(fd);
      return OwnedFd(fd);
    }
    if (errno == EINTR || errno == ECONNABORTED) continue;
    return make_unexpected(errno_message("accept"));
  }
}

void set_tcp_nodelay(int fd) noexcept {
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace motsim
