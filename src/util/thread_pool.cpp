#include "util/thread_pool.h"

#include <algorithm>

#include "util/stopwatch.h"

namespace motsim {

ThreadPool::ThreadPool(std::size_t thread_count) {
  if (thread_count == 0) thread_count = 1;
  workers_.reserve(thread_count);
  for (std::size_t i = 0; i < thread_count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
    stats_.max_queue_depth = std::max(stats_.max_queue_depth, queue_.size());
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return in_flight_ == 0; });
}

ThreadPoolStats ThreadPool::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t ThreadPool::default_thread_count() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      const Stopwatch wait_timer;
      work_available_.wait(lock,
                           [this] { return shutdown_ || !queue_.empty(); });
      stats_.idle_seconds += wait_timer.elapsed_seconds();
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    const Stopwatch task_timer;
    task();
    const double task_seconds = task_timer.elapsed_seconds();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.tasks_executed;
      stats_.busy_seconds += task_seconds;
      --in_flight_;
      if (in_flight_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace motsim
