#include "util/thread_pool.h"

namespace motsim {

ThreadPool::ThreadPool(std::size_t thread_count) {
  if (thread_count == 0) thread_count = 1;
  workers_.reserve(thread_count);
  for (std::size_t i = 0; i < thread_count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return in_flight_ == 0; });
}

std::size_t ThreadPool::default_thread_count() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace motsim
