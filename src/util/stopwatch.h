#ifndef MOTSIM_UTIL_STOPWATCH_H
#define MOTSIM_UTIL_STOPWATCH_H

#include <chrono>

namespace motsim {

/// A simple monotonic stopwatch used for all run-time measurements
/// reported by the benchmark harnesses (the paper reports CPU seconds
/// on a SPARCstation 10; we report wall-clock seconds on the host).
class Stopwatch {
 public:
  /// Creates a stopwatch and starts it immediately.
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the measurement from zero.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last reset().
  [[nodiscard]] double elapsed_ms() const { return elapsed_seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates time across several disjoint measurement windows.
/// Useful when a phase (e.g. symbolic simulation) is interleaved with
/// another phase (e.g. three-valued fallback) and both must be timed
/// separately.
class AccumulatingTimer {
 public:
  /// Opens a measurement window. Calling start() twice without an
  /// intervening stop() restarts the current window.
  void start() {
    running_ = true;
    window_.reset();
  }

  /// Closes the current window and adds it to the running total.
  void stop() {
    if (running_) {
      total_ += window_.elapsed_seconds();
      running_ = false;
    }
  }

  /// Total seconds accumulated over all closed windows (plus the open
  /// window, if any).
  [[nodiscard]] double total_seconds() const {
    return total_ + (running_ ? window_.elapsed_seconds() : 0.0);
  }

  /// Drops all accumulated time and closes any open window.
  void reset() {
    total_ = 0.0;
    running_ = false;
  }

 private:
  Stopwatch window_;
  double total_ = 0.0;
  bool running_ = false;
};

}  // namespace motsim

#endif  // MOTSIM_UTIL_STOPWATCH_H
