#ifndef MOTSIM_UTIL_RNG_H
#define MOTSIM_UTIL_RNG_H

#include <cstdint>
#include <limits>

namespace motsim {

/// SplitMix64 — used to seed the main generator and as a cheap
/// stateless mixer. Reference: Steele, Lea, Flood (2014).
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Deterministic pseudo-random generator (xoshiro256**).
///
/// All stochastic components of the library (random test sequences,
/// the synthetic circuit generator, property-based tests) draw from
/// this generator so every experiment is reproducible from a seed.
/// Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four words of state from `seed` via SplitMix64; any
  /// 64-bit seed (including 0) yields a well-mixed state.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) noexcept;

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  /// Next 64 pseudo-random bits.
  result_type operator()() noexcept;

  /// Uniform integer in [0, bound). `bound` must be nonzero.
  [[nodiscard]] std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept;

  /// Bernoulli draw: true with probability `p` (clamped to [0,1]).
  [[nodiscard]] bool chance(double p) noexcept;

  /// Fair coin.
  [[nodiscard]] bool flip() noexcept { return (operator()() >> 63) != 0; }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept;

  /// Derives an independent child generator; used to give each
  /// sub-experiment its own stream without correlations.
  [[nodiscard]] Rng fork() noexcept;

 private:
  std::uint64_t s_[4];
};

}  // namespace motsim

#endif  // MOTSIM_UTIL_RNG_H
