#include "util/version.h"

// All three identifiers are injected by src/CMakeLists.txt; the
// fallbacks keep non-CMake builds (e.g. ad-hoc compiler invocations in
// editors) compiling.
#ifndef MOTSIM_VERSION
#define MOTSIM_VERSION "0.0.0-dev"
#endif
#ifndef MOTSIM_COMPILER
#define MOTSIM_COMPILER "unknown-compiler"
#endif
#ifndef MOTSIM_BUILD_TYPE
#define MOTSIM_BUILD_TYPE "unknown"
#endif

namespace motsim {

const char* version_string() noexcept { return MOTSIM_VERSION; }

const char* build_info_string() noexcept {
  return "motsim " MOTSIM_VERSION " (" MOTSIM_COMPILER ", "
         MOTSIM_BUILD_TYPE ")";
}

}  // namespace motsim
