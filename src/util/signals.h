#ifndef MOTSIM_UTIL_SIGNALS_H
#define MOTSIM_UTIL_SIGNALS_H

namespace motsim {

/// Process-wide signal plumbing shared by motsim_served and the
/// campaign mode of motsim_cli.
///
/// The model is deliberately minimal: one global "stop requested"
/// flag, set by SIGINT/SIGTERM, paired with a self-pipe so blocking
/// poll() loops wake up without races. Handlers only flip the flag and
/// write one byte — everything else (draining queues, flushing
/// checkpoints) happens on normal threads that poll stop_requested().

/// Ignores SIGPIPE for the whole process. A peer that disappears
/// mid-write must surface as an EPIPE write error on that one
/// connection, never kill the daemon (or a CLI piping into a closed
/// pager).
void ignore_sigpipe() noexcept;

/// Installs SIGINT + SIGTERM handlers that set the stop flag and write
/// to the wake pipe. Idempotent; the second and later calls are
/// no-ops. Handlers are installed *without* SA_RESTART so a signal
/// also interrupts blocking syscalls (the EINTR loops in util/net.h
/// then observe the flag via their wake fd).
void install_stop_handlers() noexcept;

/// True once SIGINT or SIGTERM was received (or request_stop ran).
[[nodiscard]] bool stop_requested() noexcept;

/// The signal that triggered the stop (SIGINT/SIGTERM), 0 if none.
[[nodiscard]] int stop_signal() noexcept;

/// Read end of the self-pipe: becomes readable when a stop arrives.
/// Pass as `wake_fd` to accept_with_timeout / poll loops. -1 until
/// install_stop_handlers() ran.
[[nodiscard]] int stop_wake_fd() noexcept;

/// Programmatic stop with identical semantics to receiving `sig` —
/// used by tests and by the server's own shutdown paths.
void request_stop(int sig) noexcept;

/// Installs a SIGUSR1 handler that latches a "dump state" request
/// (flight-recorder + metrics snapshot — docs/OBSERVABILITY.md). Like
/// the stop handlers it only flips a flag and pokes the wake pipe;
/// the dump itself runs on a normal thread that polls
/// take_dump_request(). Idempotent.
void install_dump_handler() noexcept;

/// Consumes one pending SIGUSR1 dump request: true exactly once per
/// latch (multiple signals before the poll coalesce into one dump).
[[nodiscard]] bool take_dump_request() noexcept;

/// Clears the stop flag (tests only; real processes stop once).
void reset_stop_for_tests() noexcept;

}  // namespace motsim

#endif  // MOTSIM_UTIL_SIGNALS_H
