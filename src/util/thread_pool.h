#ifndef MOTSIM_UTIL_THREAD_POOL_H
#define MOTSIM_UTIL_THREAD_POOL_H

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace motsim {

/// Always-on execution statistics of a ThreadPool, collected under the
/// pool's existing queue mutex (no extra synchronization on the task
/// path). `idle_seconds` sums the time workers spent blocked waiting
/// for work — including the final wait before shutdown — and
/// `busy_seconds` the time spent inside tasks; both are summed across
/// all workers, so a pool of N can accrue N seconds per wall second.
struct ThreadPoolStats {
  std::uint64_t tasks_executed = 0;
  std::size_t max_queue_depth = 0;
  double idle_seconds = 0;
  double busy_seconds = 0;
};

/// Fixed-size worker pool with a FIFO task queue.
///
/// Built for the fault-sharded symbolic driver (core/parallel_sym_sim)
/// but deliberately generic: submit() enqueues a task, wait_idle()
/// blocks until every submitted task has finished. Tasks must not
/// throw — an escaped exception terminates the process (workers run
/// them bare); callers that can fail should capture errors into their
/// own state (see ParallelSymSim for the pattern).
///
/// The pool itself is thread-safe; the objects a task touches are the
/// task's own business. In this codebase the cardinal rule is one
/// bdd::BddManager per thread (see bdd/bdd.h) — tasks therefore own
/// their manager and never share BDD handles across submissions.
class ThreadPool {
 public:
  /// Spawns `thread_count` workers (at least 1; 0 is promoted to 1).
  explicit ThreadPool(std::size_t thread_count);

  /// Joins all workers; pending tasks are still executed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task; returns immediately.
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is executing.
  void wait_idle();

  /// std::thread::hardware_concurrency() clamped to at least 1 (the
  /// standard allows it to return 0 when undeterminable).
  [[nodiscard]] static std::size_t default_thread_count();

  /// Point-in-time copy of the pool's execution statistics. Exact once
  /// the pool is idle (after wait_idle()); a mid-run read is a
  /// consistent snapshot of the completed work.
  [[nodiscard]] ThreadPoolStats stats() const;

 private:
  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;  ///< queued + currently executing
  bool shutdown_ = false;
  ThreadPoolStats stats_;  ///< guarded by mutex_
  std::vector<std::thread> workers_;
};

}  // namespace motsim

#endif  // MOTSIM_UTIL_THREAD_POOL_H
