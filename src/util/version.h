#ifndef MOTSIM_UTIL_VERSION_H
#define MOTSIM_UTIL_VERSION_H

namespace motsim {

/// Semantic version of this build, e.g. "0.7.0" — the CMake project
/// version, injected at compile time (see src/CMakeLists.txt).
[[nodiscard]] const char* version_string() noexcept;

/// One-line build identification: version, compiler and build type,
/// e.g. "motsim 0.7.0 (GNU 12.2.0, RelWithDebInfo)". Surfaced by
/// `motsim_cli --version`, `motsim_lint --version`, the serve
/// handshake frame and the `motsim_build_info` Prometheus gauge.
[[nodiscard]] const char* build_info_string() noexcept;

}  // namespace motsim

#endif  // MOTSIM_UTIL_VERSION_H
