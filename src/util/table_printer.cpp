#include "util/table_printer.h"

#include <algorithm>
#include <ostream>

namespace motsim {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  rows_.push_back(Row{std::move(cells), /*separator=*/false});
}

void TablePrinter::add_separator() {
  rows_.push_back(Row{{}, /*separator=*/true});
}

std::size_t TablePrinter::row_count() const {
  std::size_t n = 0;
  for (const auto& r : rows_) {
    if (!r.separator) ++n;
  }
  return n;
}

void TablePrinter::print(std::ostream& os) const {
  std::size_t ncols = header_.size();
  for (const auto& r : rows_) ncols = std::max(ncols, r.cells.size());

  std::vector<std::size_t> width(ncols, 0);
  auto widen = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      width[i] = std::max(width[i], cells[i].size());
    }
  };
  widen(header_);
  for (const auto& r : rows_) {
    if (!r.separator) widen(r.cells);
  }

  auto print_cells = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < ncols; ++i) {
      const std::string cell = i < cells.size() ? cells[i] : std::string{};
      const std::string pad(width[i] - cell.size(), ' ');
      // First column left-aligned, the rest right-aligned.
      os << "| " << (i == 0 ? cell + pad : pad + cell) << ' ';
    }
    os << "|\n";
  };

  auto print_sep = [&] {
    for (std::size_t i = 0; i < ncols; ++i) {
      os << '|' << std::string(width[i] + 2, '-');
    }
    os << "|\n";
  };

  print_sep();
  print_cells(header_);
  print_sep();
  for (const auto& r : rows_) {
    if (r.separator) {
      print_sep();
    } else {
      print_cells(r.cells);
    }
  }
  print_sep();
}

}  // namespace motsim
