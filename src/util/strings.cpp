#include "util/strings.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace motsim {

namespace {
bool is_space(char c) {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}
}  // namespace

std::string_view trim(std::string_view s) {
  while (!s.empty() && is_space(s.front())) s.remove_prefix(1);
  while (!s.empty() && is_space(s.back())) s.remove_suffix(1);
  return s;
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(trim(s.substr(start, i - start)));
      start = i + 1;
    }
  }
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string to_upper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::toupper(c));
  });
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

std::string format_fixed(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace motsim
