#include "util/rng.h"

namespace motsim {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& w : s_) w = splitmix64(sm);
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless bounded draw; bias is rejected.
  if (bound == 0) return 0;
  for (;;) {
    const std::uint64_t x = operator()();
    const auto m = static_cast<unsigned __int128>(x) * bound;
    const auto lo = static_cast<std::uint64_t>(m);
    if (lo >= bound || lo >= (-bound) % bound) {
      return static_cast<std::uint64_t>(m >> 64);
    }
  }
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::uniform() noexcept {
  return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
}

Rng Rng::fork() noexcept { return Rng(operator()()); }

}  // namespace motsim
