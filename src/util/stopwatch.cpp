// Header-only implementation; this translation unit exists so the
// library has a stable object for the module and to catch ODR issues
// early.
#include "util/stopwatch.h"
