#ifndef MOTSIM_UTIL_EXPECTED_H
#define MOTSIM_UTIL_EXPECTED_H

#include <stdexcept>
#include <utility>
#include <variant>

namespace motsim {

/// Error wrapper used to construct a failed Expected (mirrors
/// std::unexpected, which is C++23; this project targets C++20).
template <typename E>
struct Unexpected {
  E error;
};

template <typename E>
[[nodiscard]] Unexpected<std::decay_t<E>> make_unexpected(E&& error) {
  return {std::forward<E>(error)};
}

/// Minimal std::expected stand-in: either a value of type T or an
/// error of type E (the two types must differ). Used by validating
/// constructors/factories — most prominently SimOptions::validate() —
/// so misconfiguration is reported as data instead of an exception.
template <typename T, typename E>
class Expected {
  static_assert(!std::is_same_v<T, E>,
                "Expected<T, E> requires distinct value and error types");

 public:
  Expected(T value) : v_(std::in_place_index<0>, std::move(value)) {}
  Expected(Unexpected<E> u) : v_(std::in_place_index<1>, std::move(u.error)) {}

  [[nodiscard]] bool has_value() const noexcept { return v_.index() == 0; }
  explicit operator bool() const noexcept { return has_value(); }

  /// Throws std::logic_error when accessed in the error state.
  [[nodiscard]] T& value() {
    check();
    return std::get<0>(v_);
  }
  [[nodiscard]] const T& value() const {
    check();
    return std::get<0>(v_);
  }
  [[nodiscard]] T& operator*() { return value(); }
  [[nodiscard]] const T& operator*() const { return value(); }
  [[nodiscard]] T* operator->() { return &value(); }
  [[nodiscard]] const T* operator->() const { return &value(); }

  /// Requires !has_value().
  [[nodiscard]] const E& error() const { return std::get<1>(v_); }

  [[nodiscard]] T value_or(T fallback) const {
    return has_value() ? std::get<0>(v_) : std::move(fallback);
  }

 private:
  void check() const {
    if (!has_value()) {
      throw std::logic_error("Expected: value() called in error state");
    }
  }

  std::variant<T, E> v_;
};

}  // namespace motsim

#endif  // MOTSIM_UTIL_EXPECTED_H
