#ifndef MOTSIM_UTIL_CLI_ARGS_H
#define MOTSIM_UTIL_CLI_ARGS_H

#include <cstdint>
#include <string>

#include "util/expected.h"

namespace motsim {

/// Strict unsigned CLI-flag parsing shared by the command-line front
/// ends (motsim_cli, motsim_lint).
///
/// The whole token must be decimal digits and fit the result type —
/// no std::stoul here: its silent acceptance of "12abc"/"-3" and
/// uncaught exceptions on garbage are exactly the failure modes a
/// front end is supposed to catch. Errors are returned as the final
/// human-readable message ("<flag> expects a non-negative integer,
/// got 'x'"); the caller decides how to report it and which exit code
/// to use, so the helpers stay testable without process exits.
[[nodiscard]] Expected<std::uint64_t, std::string> parse_cli_u64(
    const std::string& flag, const std::string& value);

/// parse_cli_u64 plus a range check against std::size_t (which may be
/// narrower than 64 bits on some targets).
[[nodiscard]] Expected<std::size_t, std::string> parse_cli_size(
    const std::string& flag, const std::string& value);

}  // namespace motsim

#endif  // MOTSIM_UTIL_CLI_ARGS_H
