#include "util/env.h"

#include <cstdlib>

#include "util/strings.h"

namespace motsim {

bool env_flag(const std::string& name) {
  // getenv is mt-unsafe only against concurrent setenv; nothing in
  // this process mutates the environment after startup.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* v = std::getenv(name.c_str());
  if (v == nullptr) return false;
  const std::string s = to_lower(trim(v));
  return s == "1" || s == "true" || s == "yes" || s == "on";
}

std::int64_t env_int(const std::string& name, std::int64_t fallback) {
  // See env_flag: the environment is read-only in this process.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* v = std::getenv(name.c_str());
  if (v == nullptr) return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  if (end == v) return fallback;
  return parsed;
}

}  // namespace motsim
