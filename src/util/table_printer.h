#ifndef MOTSIM_UTIL_TABLE_PRINTER_H
#define MOTSIM_UTIL_TABLE_PRINTER_H

#include <iosfwd>
#include <string>
#include <vector>

namespace motsim {

/// Column-aligned console table used by the benchmark harnesses to
/// print paper-style result tables (Tables I-IV of the paper).
///
/// Usage:
///   TablePrinter t({"Circ.", "|F|", "X-red"});
///   t.add_row({"s298", "308", "71"});
///   t.print(std::cout);
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends a data row. Rows shorter than the header are padded with
  /// empty cells; longer rows extend the table width.
  void add_row(std::vector<std::string> cells);

  /// Appends a horizontal separator line.
  void add_separator();

  /// Renders the table. The first column is left-aligned, all other
  /// columns right-aligned (the convention of the paper's tables).
  void print(std::ostream& os) const;

  /// Number of data rows added so far (separators excluded).
  [[nodiscard]] std::size_t row_count() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };
  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

}  // namespace motsim

#endif  // MOTSIM_UTIL_TABLE_PRINTER_H
