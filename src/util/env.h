#ifndef MOTSIM_UTIL_ENV_H
#define MOTSIM_UTIL_ENV_H

#include <cstdint>
#include <string>

namespace motsim {

/// True if the environment variable `name` is set to a truthy value
/// ("1", "true", "yes", "on"; case-insensitive).
[[nodiscard]] bool env_flag(const std::string& name);

/// Integer value of environment variable `name`, or `fallback` if the
/// variable is unset or unparsable.
[[nodiscard]] std::int64_t env_int(const std::string& name,
                                   std::int64_t fallback);

}  // namespace motsim

#endif  // MOTSIM_UTIL_ENV_H
