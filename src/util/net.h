#ifndef MOTSIM_UTIL_NET_H
#define MOTSIM_UTIL_NET_H

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/expected.h"

namespace motsim {

/// EINTR-safe POSIX socket plumbing shared by the serve subsystem
/// (src/serve/) and the load generator. Everything here is loopback
/// TCP: the daemon is a front end for one host, not an internet
/// service — no TLS, no name resolution beyond dotted quads.
///
/// All calls retry on EINTR (the serve signal handlers interrupt
/// syscalls by design — see util/signals.h) and report failures as
/// Expected errors carrying errno text; none of them throw.

/// RAII file-descriptor owner: closes on destruction, move-only.
/// release() detaches (e.g. to hand a connection to its own thread).
class OwnedFd {
 public:
  OwnedFd() = default;
  explicit OwnedFd(int fd) noexcept : fd_(fd) {}
  ~OwnedFd() { reset(); }
  OwnedFd(OwnedFd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  OwnedFd& operator=(OwnedFd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  OwnedFd(const OwnedFd&) = delete;
  OwnedFd& operator=(const OwnedFd&) = delete;

  [[nodiscard]] int get() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int release() noexcept {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void reset() noexcept;

 private:
  int fd_ = -1;
};

/// Reads exactly `size` bytes. Returns `size` on success, 0 when the
/// peer closed the connection *before the first byte* (clean EOF), and
/// an error for mid-read EOF or any socket error.
[[nodiscard]] Expected<std::size_t, std::string> read_full(int fd, void* buf,
                                                           std::size_t size);

/// Writes exactly `size` bytes (short writes are continued).
[[nodiscard]] Expected<bool, std::string> write_full(int fd, const void* buf,
                                                     std::size_t size);

/// Creates a listening IPv4 TCP socket bound to `host`:`port`
/// (SO_REUSEADDR; port 0 = ephemeral — read the chosen port back with
/// local_port).
[[nodiscard]] Expected<OwnedFd, std::string> listen_tcp(
    const std::string& host, std::uint16_t port, int backlog = 64);

/// Blocking connect to `host`:`port`.
[[nodiscard]] Expected<OwnedFd, std::string> connect_tcp(
    const std::string& host, std::uint16_t port);

/// Port a bound socket actually listens on (resolves port 0).
[[nodiscard]] Expected<std::uint16_t, std::string> local_port(int fd);

/// accept() with a poll timeout so callers can interleave a stop
/// check. Returns an invalid OwnedFd on timeout, an error otherwise.
/// `wake_fd` (>= 0) is polled for readability alongside the listener —
/// the serve loop passes its signal self-pipe so a SIGTERM interrupts
/// the wait immediately.
[[nodiscard]] Expected<OwnedFd, std::string> accept_with_timeout(
    int listen_fd, int timeout_ms, int wake_fd = -1);

/// Disables Nagle batching — both sides of the serve protocol are
/// request/response with small frames, where coalescing only adds
/// latency.
void set_tcp_nodelay(int fd) noexcept;

}  // namespace motsim

#endif  // MOTSIM_UTIL_NET_H
