#ifndef MOTSIM_UTIL_STRINGS_H
#define MOTSIM_UTIL_STRINGS_H

#include <string>
#include <string_view>
#include <vector>

namespace motsim {

/// Returns `s` without leading/trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view s);

/// Splits `s` at every occurrence of `sep`, trimming each piece.
/// Empty pieces are kept (so "a,,b" yields three entries).
[[nodiscard]] std::vector<std::string> split(std::string_view s, char sep);

/// ASCII-lowercases a copy of `s`.
[[nodiscard]] std::string to_lower(std::string_view s);

/// ASCII-uppercases a copy of `s`.
[[nodiscard]] std::string to_upper(std::string_view s);

/// True if `s` begins with `prefix`.
[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);

/// Formats a double with `prec` digits after the point (fixed).
[[nodiscard]] std::string format_fixed(double v, int prec);

/// Escapes a string for embedding in a JSON string literal (quotes,
/// backslashes, control characters).
[[nodiscard]] std::string json_escape(const std::string& s);

}  // namespace motsim

#endif  // MOTSIM_UTIL_STRINGS_H
