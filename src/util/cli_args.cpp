#include "util/cli_args.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace motsim {

Expected<std::uint64_t, std::string> parse_cli_u64(const std::string& flag,
                                                   const std::string& value) {
  if (value.empty()) {
    return Unexpected<std::string>{flag + " expects a non-negative integer"};
  }
  for (char c : value) {
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      return Unexpected<std::string>{
          flag + " expects a non-negative integer, got '" + value + "'"};
    }
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long r = std::strtoull(value.c_str(), &end, 10);
  if (errno == ERANGE || end != value.c_str() + value.size()) {
    return Unexpected<std::string>{flag + " value out of range: '" + value +
                                   "'"};
  }
  return static_cast<std::uint64_t>(r);
}

Expected<std::size_t, std::string> parse_cli_size(const std::string& flag,
                                                  const std::string& value) {
  const Expected<std::uint64_t, std::string> r = parse_cli_u64(flag, value);
  if (!r.has_value()) return Unexpected<std::string>{r.error()};
  if (*r > static_cast<std::uint64_t>(static_cast<std::size_t>(-1))) {
    return Unexpected<std::string>{flag + " value out of range: '" + value +
                                   "'"};
  }
  return static_cast<std::size_t>(*r);
}

}  // namespace motsim
