#include "util/signals.h"

#include <atomic>
#include <csignal>
#include <fcntl.h>
#include <unistd.h>

namespace motsim {

namespace {

std::atomic<int> g_stop_signal{0};
std::atomic<bool> g_dump_pending{false};
// Self-pipe; write end is what the (async-signal-context) handler
// touches — write() is async-signal-safe, condition variables are not.
int g_wake_read = -1;
int g_wake_write = -1;

void on_dump_signal(int) {
  g_dump_pending.store(true, std::memory_order_relaxed);
  if (g_wake_write >= 0) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t r = ::write(g_wake_write, &byte, 1);
  }
}

void on_stop_signal(int sig) {
  g_stop_signal.store(sig, std::memory_order_relaxed);
  if (g_wake_write >= 0) {
    const char byte = 1;
    // A full pipe is fine — the reader only needs readability once.
    [[maybe_unused]] const ssize_t r = ::write(g_wake_write, &byte, 1);
  }
}

}  // namespace

void ignore_sigpipe() noexcept { std::signal(SIGPIPE, SIG_IGN); }

void install_stop_handlers() noexcept {
  static bool installed = false;
  if (installed) return;
  installed = true;
  int fds[2];
  if (::pipe(fds) == 0) {
    g_wake_read = fds[0];
    g_wake_write = fds[1];
    // Both ends non-blocking: the handler must never block on a full
    // pipe, and the test-only drain must never block on an empty one.
    (void)::fcntl(g_wake_read, F_SETFL, O_NONBLOCK);
    (void)::fcntl(g_wake_write, F_SETFL, O_NONBLOCK);
  }
  struct sigaction sa{};
  sa.sa_handler = on_stop_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: blocking syscalls must wake up
  (void)::sigaction(SIGINT, &sa, nullptr);
  (void)::sigaction(SIGTERM, &sa, nullptr);
}

bool stop_requested() noexcept {
  return g_stop_signal.load(std::memory_order_relaxed) != 0;
}

int stop_signal() noexcept {
  return g_stop_signal.load(std::memory_order_relaxed);
}

int stop_wake_fd() noexcept { return g_wake_read; }

void request_stop(int sig) noexcept { on_stop_signal(sig == 0 ? SIGTERM : sig); }

void install_dump_handler() noexcept {
  static bool installed = false;
  if (installed) return;
  installed = true;
  struct sigaction sa{};
  sa.sa_handler = on_dump_signal;
  sigemptyset(&sa.sa_mask);
  // SA_RESTART: a dump request must not abort in-flight reads/writes —
  // only the poll loops need to notice it, and they poll the flag.
  sa.sa_flags = SA_RESTART;
  (void)::sigaction(SIGUSR1, &sa, nullptr);
}

bool take_dump_request() noexcept {
  return g_dump_pending.exchange(false, std::memory_order_relaxed);
}

void reset_stop_for_tests() noexcept {
  g_stop_signal.store(0, std::memory_order_relaxed);
  if (g_wake_read >= 0) {
    char drain[64];
    while (::read(g_wake_read, drain, sizeof(drain)) > 0) {
    }
  }
}

}  // namespace motsim
