#include "core/pipeline.h"

#include "core/xred.h"
#include "sim3/fault_sim3.h"
#include "sim3/parallel_fault_sim3.h"
#include "util/stopwatch.h"

namespace motsim {

PipelineResult run_pipeline(const Netlist& netlist,
                            const std::vector<Fault>& faults,
                            const TestSequence& sequence,
                            const PipelineConfig& config) {
  PipelineResult result;

  // ---- Stage 1: ID_X-red ------------------------------------------------
  std::vector<FaultStatus> status(faults.size(), FaultStatus::Undetected);
  if (config.run_xred) {
    Stopwatch timer;
    const XRedResult xr = run_id_x_red(netlist, sequence);
    status = xr.classify(faults);
    result.seconds_xred = timer.elapsed_seconds();
    result.x_redundant = xr.count_x_redundant(faults);
  }

  // ---- Stage 2: three-valued simulation ----------------------------------
  {
    Stopwatch timer;
    FaultSim3Result r3;
    if (config.parallel_sim3) {
      ParallelFaultSim3 sim(netlist, faults);
      sim.set_initial_status(status);
      r3 = sim.run(sequence);
    } else {
      FaultSim3 sim(netlist, faults);
      sim.set_initial_status(status);
      r3 = sim.run(sequence);
    }
    result.seconds_3v = timer.elapsed_seconds();
    result.detected_3v = r3.detected_count;
    status = std::move(r3.status);
  }

  // ---- Stage 3: symbolic simulation of the remainder ---------------------
  bool has_x_inputs = false;
  for (const auto& frame : sequence) {
    for (Val3 v : frame) has_x_inputs |= !is_binary(v);
  }
  if (config.run_symbolic && has_x_inputs) {
    result.symbolic_skipped_x_inputs = true;
  }
  if (config.run_symbolic && !has_x_inputs) {
    // X-redundant faults are *not* lost causes symbolically; re-enable
    // them alongside the three-valued leftovers.
    std::vector<FaultStatus> leftover = status;
    for (auto& s : leftover) {
      if (s == FaultStatus::XRedundant) s = FaultStatus::Undetected;
    }

    Stopwatch timer;
    HybridFaultSim sym(netlist, faults, config.hybrid);
    sym.set_initial_status(leftover);
    const HybridResult rs = sym.run(sequence);
    result.seconds_symbolic = timer.elapsed_seconds();
    result.detected_symbolic = rs.detected_count;
    result.used_fallback = rs.used_fallback;

    // Merge: symbolic detections override; everything else keeps its
    // stage-1/2 classification.
    for (std::size_t i = 0; i < faults.size(); ++i) {
      if (is_detected(rs.status[i])) status[i] = rs.status[i];
    }
  }

  result.status = std::move(status);
  return result;
}

}  // namespace motsim
