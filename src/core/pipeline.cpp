#include "core/pipeline.h"

#include <memory>
#include <optional>
#include <stdexcept>
#include <string>

#include "analysis/implication.h"
#include "analysis/sgraph.h"
#include "analysis/static_xred.h"
#include "analysis/trim.h"
#include "core/parallel_sym_sim.h"
#include "core/xred.h"
#include "obs/telemetry.h"
#include "sim3/fault_simulator.h"
#include "util/stopwatch.h"

namespace motsim {

namespace {

/// Opens one pipeline stage: the structured-log record paired with the
/// span the call sites start themselves.
void begin_stage(obs::Telemetry* telemetry, const char* name) {
  obs::log_event(telemetry, obs::LogLevel::Debug, "pipeline.stage.begin",
                 {obs::LogField::str("stage", name)});
}

/// Closes out one pipeline stage: ends its trace span, reports it to
/// the progress sink, records its wall seconds as a pipeline.* gauge
/// (gauges add, so repeated runs into one context accumulate) and logs
/// the stage-end record.
void finish_stage(obs::Telemetry* telemetry, ProgressSink* progress,
                  std::optional<obs::SpanTracer::Span>& span,
                  const char* name, double seconds) {
  span.reset();
  if (telemetry != nullptr) {
    telemetry->metrics.gauge(std::string("pipeline.") + name + "_seconds")
        .add(seconds);
  }
  obs::log_event(telemetry, obs::LogLevel::Info, "pipeline.stage.end",
                 {obs::LogField::str("stage", name),
                  obs::LogField::f64("seconds", seconds)});
  if (progress != nullptr) {
    progress->on_stage((std::string("stage.") + name).c_str(), seconds);
  }
}

}  // namespace

PipelineResult run_pipeline(const Netlist& netlist,
                            const std::vector<Fault>& faults,
                            const TestSequence& sequence,
                            const PipelineConfig& config,
                            ProgressSink* progress,
                            CheckpointSink* checkpoint) {
  PipelineResult result;
  result.detect_frame.assign(faults.size(), 0);
  obs::Telemetry* const telemetry = config.telemetry;

  // ---- Stage 0: sequence-independent static analysis ---------------------
  std::vector<FaultStatus> status(faults.size(), FaultStatus::Undetected);
  std::vector<ConstVal> tied;  // nonempty => constants for the symbolic stage
  // Implication-enriched trimming plan for the symbolic stage: its
  // settled constants subsume the structural ones the engines would
  // otherwise derive themselves. Only built when the analysis stage
  // paid for the engine anyway.
  std::optional<TrimPlan> trim_plan;
  if (config.analysis) {
    std::optional<obs::SpanTracer::Span> span;
    if (telemetry != nullptr) span = telemetry->tracer.span("stage.analysis");
    begin_stage(telemetry, "analysis");
    Stopwatch timer;
    const StaticXRedAnalysis sa(netlist);
    status = sa.classify(faults);
    // The implication engine only upgrades faults the cheaper
    // structural pass left Undetected, so the two counts stay disjoint.
    const ImplicationEngine eng(netlist);
    result.static_untestable = eng.classify(faults, status);
    if (eng.tied_constant_count() != 0) tied = eng.tied_constants();
    if (config.run_symbolic && config.hybrid.trim) {
      trim_plan = build_trim_plan(eng, faults);
    }
    result.seconds_analysis = timer.elapsed_seconds();
    for (FaultStatus s : status) {
      if (s == FaultStatus::StaticXRed) ++result.static_x_redundant;
    }
    if (telemetry != nullptr) {
      telemetry->metrics.counter("analysis.implications_learned")
          .add(eng.stats().learned_implications);
      telemetry->metrics.counter("analysis.faults_pruned")
          .add(result.static_x_redundant + result.static_untestable);
      telemetry->metrics.counter("analysis.constants_tied")
          .add(eng.tied_constant_count());
    }
    finish_stage(telemetry, progress, span, "analysis",
                 result.seconds_analysis);
  }

  // ---- Stage 1: ID_X-red ------------------------------------------------
  if (config.run_xred) {
    std::optional<obs::SpanTracer::Span> span;
    if (telemetry != nullptr) span = telemetry->tracer.span("stage.xred");
    begin_stage(telemetry, "xred");
    Stopwatch timer;
    const XRedResult xr = run_id_x_red(netlist, sequence);
    const std::vector<FaultStatus> xs = xr.classify(faults);
    // Statically pruned faults keep their (stronger) verdict; the
    // x_redundant count therefore never overlaps static_x_redundant.
    for (std::size_t i = 0; i < faults.size(); ++i) {
      if (status[i] == FaultStatus::Undetected &&
          xs[i] == FaultStatus::XRedundant) {
        status[i] = FaultStatus::XRedundant;
        ++result.x_redundant;
      }
    }
    result.seconds_xred = timer.elapsed_seconds();
    finish_stage(telemetry, progress, span, "xred", result.seconds_xred);
  }

  // ---- Stage 2: three-valued simulation ----------------------------------
  {
    std::optional<obs::SpanTracer::Span> span;
    if (telemetry != nullptr) span = telemetry->tracer.span("stage.sim3");
    begin_stage(telemetry, "sim3");
    Stopwatch timer;
    Sim3EngineConfig ec;
    ec.threads = config.threads;
    ec.telemetry = telemetry;
    const std::unique_ptr<FaultSimulator3> sim =
        make_fault_simulator3(config.sim3_backend, netlist, faults, ec);
    sim->set_initial_status(status);
    const FaultSim3Result r3 = sim->run(sequence);
    result.seconds_3v = timer.elapsed_seconds();
    result.detected_3v = r3.detected_count;
    status = std::move(r3.status);
    result.detect_frame = std::move(r3.detect_frame);
    finish_stage(telemetry, progress, span, "sim3", result.seconds_3v);
  }

  // ---- Stage 3: symbolic simulation of the remainder ---------------------
  bool has_x_inputs = false;
  for (const auto& frame : sequence) {
    for (Val3 v : frame) has_x_inputs |= !is_binary(v);
  }
  if (config.run_symbolic && has_x_inputs) {
    result.symbolic_skipped_x_inputs = true;
  }
  if (config.run_symbolic && !has_x_inputs) {
    // X-redundant faults are *not* lost causes symbolically; re-enable
    // them alongside the three-valued leftovers.
    std::vector<FaultStatus> leftover = status;
    for (auto& s : leftover) {
      if (s == FaultStatus::XRedundant) s = FaultStatus::Undetected;
    }

    std::optional<obs::SpanTracer::Span> span;
    if (telemetry != nullptr) span = telemetry->tracer.span("stage.symbolic");
    begin_stage(telemetry, "symbolic");
    Stopwatch timer;
    // S-graph plan for the MOT/rMOT -> SOT downgrade, built once here
    // so serial and parallel runs (and every shard) share it; either
    // engine would derive the identical plan on its own.
    std::optional<SgraphPlan> sgraph_plan;
    if (config.hybrid.sgraph) {
      sgraph_plan = build_sgraph_plan(netlist, faults);
      result.sgraph_sccs = sgraph_plan->nontrivial_sccs;
      if (telemetry != nullptr) {
        telemetry->metrics.counter("analysis.sgraph_sccs")
            .add(sgraph_plan->nontrivial_sccs);
      }
      obs::log_event(
          telemetry, obs::LogLevel::Debug, "pipeline.sgraph",
          {obs::LogField::u64("nontrivial_sccs", sgraph_plan->nontrivial_sccs),
           obs::LogField::u64("finite_horizons",
                              sgraph_plan->finite_horizon_count()),
           obs::LogField::u64("faults", faults.size())});
    }
    HybridResult rs;
    if (config.threads == 1) {
      HybridFaultSim sym(netlist, faults, config.hybrid);
      sym.set_initial_status(leftover);
      sym.set_progress(progress);
      sym.set_checkpoint_sink(checkpoint);
      sym.set_telemetry(telemetry);
      if (!tied.empty()) sym.set_tied_constants(tied);
      if (trim_plan) sym.set_trim_plan(*trim_plan);
      if (sgraph_plan) sym.set_sgraph_plan(*sgraph_plan);
      rs = sym.run(sequence);
    } else {
      ParallelSymConfig pc;
      pc.hybrid = config.hybrid;
      pc.threads = config.threads;
      pc.chunk_size = config.chunk_size;
      ParallelSymSim sym(netlist, faults, pc);
      sym.set_initial_status(leftover);
      sym.set_progress(progress);
      sym.set_checkpoint_sink(checkpoint);
      sym.set_telemetry(telemetry);
      if (!tied.empty()) sym.set_tied_constants(tied);
      if (trim_plan) sym.set_trim_plan(*trim_plan);
      if (sgraph_plan) sym.set_sgraph_plan(*sgraph_plan);
      rs = sym.run(sequence);
    }
    result.seconds_symbolic = timer.elapsed_seconds();
    finish_stage(telemetry, progress, span, "symbolic",
                 result.seconds_symbolic);
    result.detected_symbolic = rs.detected_count;
    result.used_fallback = rs.used_fallback;
    result.frames_skipped = rs.frames_skipped;
    result.faults_terminated_early = rs.faults_terminated_early;
    result.faultfree_evals_shared = rs.faultfree_evals_shared;
    result.mot_downgrades = rs.mot_downgrades;
    // analysis.mot_downgrades is recorded by the engines themselves
    // (every shard adds into the shared telemetry); only the log record
    // belongs here, where the merged total is known.
    if (rs.mot_downgrades != 0) {
      obs::log_event(telemetry, obs::LogLevel::Debug, "pipeline.sgraph.done",
                     {obs::LogField::u64("mot_downgrades", rs.mot_downgrades)});
    }

    // Merge: symbolic detections override; everything else keeps its
    // stage-1/2 classification (and its three-valued detection frame).
    // A nonzero symbolic detect_frame identifies the faults the hybrid
    // stage itself detected — faults it merely inherited as detected
    // (DetectedSim3 pre-classifications) carry frame 0 and must keep
    // their stage-2 frame.
    for (std::size_t i = 0; i < faults.size(); ++i) {
      if (rs.detect_frame[i] != 0) {
        status[i] = rs.status[i];
        result.detect_frame[i] = rs.detect_frame[i];
      }
    }
  }

  result.status = std::move(status);
  return result;
}

PipelineResult run_pipeline(const Netlist& netlist,
                            const std::vector<Fault>& faults,
                            const TestSequence& sequence,
                            const SimOptions& options,
                            ProgressSink* progress,
                            CheckpointSink* checkpoint) {
  const Expected<SimOptions, std::string> checked = options.validate();
  if (!checked.has_value()) {
    throw std::invalid_argument("SimOptions: " + checked.error());
  }
  return run_pipeline(netlist, faults, sequence,
                      checked->to_pipeline_config(), progress, checkpoint);
}

}  // namespace motsim
