#include "core/misr.h"

#include <stdexcept>

namespace motsim {

Misr::Misr(unsigned width, std::uint64_t taps) : width_(width), taps_(taps) {
  if (width == 0 || width > 64) {
    throw std::invalid_argument("Misr: width must be in [1, 64]");
  }
  mask_ = width == 64 ? ~std::uint64_t{0}
                      : ((std::uint64_t{1} << width) - 1);
  taps_ &= mask_;
}

void Misr::shift(const std::vector<bool>& outputs) {
  // Galois-style LFSR step, then XOR the parallel inputs in.
  const bool msb = (state_ >> (width_ - 1)) & 1;
  state_ = (state_ << 1) & mask_;
  if (msb) state_ ^= taps_;
  for (std::size_t j = 0; j < outputs.size(); ++j) {
    if (outputs[j]) state_ ^= std::uint64_t{1} << (j % width_);
  }
}

std::uint64_t Misr::of(const std::vector<std::vector<bool>>& response,
                       unsigned width, std::uint64_t taps) {
  Misr m(width, taps);
  for (const auto& frame : response) m.shift(frame);
  return m.signature();
}

}  // namespace motsim
