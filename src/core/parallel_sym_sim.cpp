#include "core/parallel_sym_sim.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

#include "analysis/cone.h"
#include "obs/telemetry.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace motsim {

namespace {

/// Per-chunk progress adapter: serializes callbacks through the shared
/// mutex and maps the chunk-local fault indices that HybridFaultSim
/// reports back to the caller's global fault list.
class ChunkProgressAdapter final : public ProgressSink {
 public:
  ChunkProgressAdapter(ProgressSink* sink, std::mutex* mutex,
                       const std::size_t* global_indices)
      : sink_(sink), mutex_(mutex), global_indices_(global_indices) {}

  void on_frame(std::size_t frame, std::size_t live_nodes,
                std::size_t faults_remaining) override {
    std::lock_guard<std::mutex> lock(*mutex_);
    sink_->on_frame(frame, live_nodes, faults_remaining);
  }

  void on_fallback_window(std::size_t frame,
                          std::size_t window_frames) override {
    std::lock_guard<std::mutex> lock(*mutex_);
    sink_->on_fallback_window(frame, window_frames);
  }

  void on_fault_detected(std::size_t fault_index,
                         std::uint32_t frame) override {
    std::lock_guard<std::mutex> lock(*mutex_);
    sink_->on_fault_detected(global_indices_[fault_index], frame);
  }

 private:
  ProgressSink* sink_;
  std::mutex* mutex_;
  const std::size_t* global_indices_;
};

/// Per-chunk checkpoint adapter: stamps the chunk id, maps fault
/// indices to the global fault list and serializes on_checkpoint calls
/// through the shared sink mutex so one store can log every shard.
class ChunkCheckpointAdapter final : public CheckpointSink {
 public:
  ChunkCheckpointAdapter(CheckpointSink* sink, std::mutex* mutex,
                         const std::size_t* global_indices,
                         std::size_t chunk)
      : sink_(sink),
        mutex_(mutex),
        global_indices_(global_indices),
        chunk_(chunk) {}

  void on_checkpoint(const ChunkCheckpoint& checkpoint) override {
    ChunkCheckpoint global = checkpoint;
    global.chunk = chunk_;
    for (std::size_t& index : global.fault_index) {
      index = global_indices_[index];
    }
    std::lock_guard<std::mutex> lock(*mutex_);
    sink_->on_checkpoint(global);
  }

 private:
  CheckpointSink* sink_;
  std::mutex* mutex_;
  const std::size_t* global_indices_;
  std::size_t chunk_;
};

}  // namespace

ParallelSymSim::ParallelSymSim(const Netlist& netlist,
                               std::vector<Fault> faults,
                               ParallelSymConfig config)
    : netlist_(&netlist),
      faults_(std::move(faults)),
      config_(config),
      initial_status_(faults_.size(), FaultStatus::Undetected) {
  if (!netlist.finalized()) {
    throw std::logic_error("ParallelSymSim requires a finalized netlist");
  }
  if (config_.hybrid.node_limit == 0 || config_.hybrid.fallback_frames == 0 ||
      config_.hybrid.hard_limit_factor == 0) {
    throw std::invalid_argument("ParallelSymConfig: limits must be positive");
  }
}

void ParallelSymSim::set_initial_status(std::vector<FaultStatus> status) {
  if (status.size() != faults_.size()) {
    throw std::invalid_argument("set_initial_status: wrong size");
  }
  initial_status_ = std::move(status);
}

void ParallelSymSim::set_trim_plan(TrimPlan plan) {
  if (plan.dead_from.size() != faults_.size()) {
    throw std::invalid_argument("set_trim_plan: plan does not match the "
                                "fault list");
  }
  trim_plan_ = std::move(plan);
}

void ParallelSymSim::set_sgraph_plan(SgraphPlan plan) {
  if (plan.horizon.size() != faults_.size()) {
    throw std::invalid_argument("set_sgraph_plan: plan does not match the "
                                "fault list");
  }
  sgraph_plan_ = std::move(plan);
}

std::size_t ParallelSymSim::resolved_threads() const noexcept {
  return config_.threads == 0 ? ThreadPool::default_thread_count()
                              : config_.threads;
}

std::size_t ParallelSymSim::resolved_chunk_size() const noexcept {
  return config_.chunk_size == 0 ? kDefaultChunkSize : config_.chunk_size;
}

HybridResult ParallelSymSim::run(
    const std::vector<std::vector<Val3>>& sequence) {
  // The partition: live faults, in fault-list order, cut into fixed
  // chunks. Everything downstream is a pure function of this list and
  // the sequence, so the merged result cannot depend on thread count.
  std::vector<std::size_t> live;
  for (std::size_t i = 0; i < faults_.size(); ++i) {
    if (initial_status_[i] == FaultStatus::Undetected) live.push_back(i);
  }
  // Cluster-aware shard assignment: group faults by shared cone of
  // influence before cutting chunks (deterministic — see the class
  // comment). A resumed run recomputes the identical partition because
  // the reorder depends on nothing but the inputs validated below.
  if (config_.hybrid.trim) {
    live = cluster_live_order(*netlist_, faults_, live);
  }
  // One global trimming plan, sliced per chunk below; building it once
  // here keeps the per-shard setup cost flat in the chunk count.
  TrimPlan plan;
  if (config_.hybrid.trim) {
    plan = trim_plan_ ? *trim_plan_ : build_trim_plan(*netlist_, faults_);
  }
  // Likewise one global s-graph plan. Its horizons also refine the
  // shard assignment: a stable sort by observation horizon keeps the
  // cone clusters contiguous within each horizon class, so shard-mates
  // downgrade to the cheap SOT-style updates at the same frame instead
  // of one straggler keeping the whole shard's equality products alive.
  // Stable + pure function of the fault list, so still deterministic.
  SgraphPlan splan;
  if (config_.hybrid.sgraph) {
    splan =
        sgraph_plan_ ? *sgraph_plan_ : build_sgraph_plan(*netlist_, faults_);
    std::stable_sort(live.begin(), live.end(),
                     [&splan](std::size_t a, std::size_t b) {
                       return splan.horizon[a] < splan.horizon[b];
                     });
  }
  const std::size_t chunk_size = resolved_chunk_size();
  const std::size_t chunk_count = (live.size() + chunk_size - 1) / chunk_size;

  HybridResult merged;
  merged.status = initial_status_;
  merged.detect_frame.assign(faults_.size(), 0);
  if (chunk_count == 0) return merged;

  // Validate resume snapshots against the recomputed partition up
  // front (clear errors beat a worker rethrow) and translate each to
  // the chunk-local indexing HybridFaultSim::set_resume expects.
  std::vector<std::optional<ChunkCheckpoint>> resume_of(chunk_count);
  for (const ChunkCheckpoint& ck : resume_) {
    if (ck.chunk >= chunk_count) {
      throw std::invalid_argument(
          "ParallelSymSim::set_resume: checkpoint names chunk " +
          std::to_string(ck.chunk) + " but the partition has " +
          std::to_string(chunk_count) + " chunks");
    }
    if (resume_of[ck.chunk].has_value()) {
      throw std::invalid_argument(
          "ParallelSymSim::set_resume: duplicate checkpoint for chunk " +
          std::to_string(ck.chunk));
    }
    const std::size_t begin = ck.chunk * chunk_size;
    const std::size_t end = std::min(begin + chunk_size, live.size());
    const std::size_t n = end - begin;
    if (ck.fault_index.size() != n || ck.status.size() != n ||
        ck.detect_frame.size() != n || ck.diff.size() != n) {
      throw std::invalid_argument(
          "ParallelSymSim::set_resume: checkpoint for chunk " +
          std::to_string(ck.chunk) + " has " +
          std::to_string(ck.fault_index.size()) + " faults, partition has " +
          std::to_string(n));
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (ck.fault_index[i] != live[begin + i]) {
        throw std::invalid_argument(
            "ParallelSymSim::set_resume: checkpoint for chunk " +
            std::to_string(ck.chunk) +
            " does not match the chunk partition (fault list, initial "
            "statuses or chunk_size changed)");
      }
    }
    ChunkCheckpoint local = ck;
    local.chunk = 0;
    std::iota(local.fault_index.begin(), local.fault_index.end(),
              std::size_t{0});
    resume_of[ck.chunk] = std::move(local);
  }

  // Resolve the shard-latency histogram once; workers then observe
  // into it lock-free. Bounds span sub-millisecond s27 shards to
  // multi-minute stress runs.
  obs::Histogram* shard_hist =
      telemetry_ == nullptr
          ? nullptr
          : &telemetry_->metrics.histogram(
                "parallel.shard_seconds",
                {0.001, 0.01, 0.1, 1.0, 10.0, 60.0, 600.0});

  std::vector<HybridResult> chunk_results(chunk_count);
  std::atomic<std::size_t> next_chunk{0};
  std::mutex progress_mutex;
  std::mutex error_mutex;
  std::string first_error;

  auto worker = [&] {
    for (;;) {
      const std::size_t c = next_chunk.fetch_add(1);
      if (c >= chunk_count) return;
      {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error.empty()) return;  // fail fast, drain the queue
      }
      const std::size_t begin = c * chunk_size;
      const std::size_t end = std::min(begin + chunk_size, live.size());
      std::vector<Fault> chunk_faults;
      chunk_faults.reserve(end - begin);
      for (std::size_t k = begin; k < end; ++k) {
        chunk_faults.push_back(faults_[live[k]]);
      }
      try {
        // One private BddManager per worker-chunk lives inside this
        // HybridFaultSim::run call; nothing symbolic crosses threads.
        HybridFaultSim sim(*netlist_, std::move(chunk_faults),
                           config_.hybrid);
        ChunkProgressAdapter adapter(progress_, &progress_mutex,
                                     live.data() + begin);
        if (progress_ != nullptr) sim.set_progress(&adapter);
        ChunkCheckpointAdapter ck_adapter(checkpoint_, &progress_mutex,
                                          live.data() + begin, c);
        if (checkpoint_ != nullptr) sim.set_checkpoint_sink(&ck_adapter);
        if (telemetry_ != nullptr) sim.set_telemetry(telemetry_);
        if (resume_of[c].has_value()) sim.set_resume(*resume_of[c]);
        if (!tied_.empty()) sim.set_tied_constants(tied_);
        if (config_.hybrid.trim) {
          TrimPlan chunk_plan;
          chunk_plan.dead_from.reserve(end - begin);
          for (std::size_t k = begin; k < end; ++k) {
            chunk_plan.dead_from.push_back(plan.dead_from[live[k]]);
          }
          sim.set_trim_plan(std::move(chunk_plan));
        }
        if (config_.hybrid.sgraph) {
          SgraphPlan chunk_splan;
          chunk_splan.nontrivial_sccs = splan.nontrivial_sccs;
          chunk_splan.horizon.reserve(end - begin);
          for (std::size_t k = begin; k < end; ++k) {
            chunk_splan.horizon.push_back(splan.horizon[live[k]]);
          }
          sim.set_sgraph_plan(std::move(chunk_splan));
        }
        std::optional<obs::SpanTracer::Span> shard_span;
        if (telemetry_ != nullptr) {
          shard_span = telemetry_->tracer.span("shard");
        }
        const Stopwatch shard_timer;
        chunk_results[c] = sim.run(sequence);
        if (shard_hist != nullptr) {
          shard_hist->observe(shard_timer.elapsed_seconds());
        }
      } catch (const std::exception& e) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (first_error.empty()) first_error = e.what();
      }
    }
  };

  const std::size_t workers =
      std::min(resolved_threads(), chunk_count);
  if (workers <= 1) {
    worker();
  } else {
    ThreadPool pool(workers);
    for (std::size_t i = 0; i < workers; ++i) pool.submit(worker);
    pool.wait_idle();
    if (telemetry_ != nullptr) {
      const ThreadPoolStats ps = pool.stats();
      obs::MetricsRegistry& m = telemetry_->metrics;
      m.counter("parallel.pool_tasks").add(ps.tasks_executed);
      m.gauge("parallel.idle_seconds").add(ps.idle_seconds);
      m.gauge("parallel.busy_seconds").add(ps.busy_seconds);
      m.gauge("parallel.max_queue_depth")
          .update_max(static_cast<double>(ps.max_queue_depth));
    }
  }
  if (telemetry_ != nullptr) {
    telemetry_->metrics.counter("parallel.shards").add(chunk_count);
    telemetry_->metrics.gauge("parallel.workers")
        .update_max(static_cast<double>(workers));
  }
  if (!first_error.empty()) {
    throw std::runtime_error("ParallelSymSim worker failed: " + first_error);
  }

  // Deterministic merge, in chunk order (chunks own disjoint fault
  // index ranges, so completion order is irrelevant).
  for (std::size_t c = 0; c < chunk_count; ++c) {
    const HybridResult& r = chunk_results[c];
    const std::size_t begin = c * chunk_size;
    for (std::size_t i = 0; i < r.status.size(); ++i) {
      const std::size_t g = live[begin + i];
      merged.status[g] = r.status[i];
      merged.detect_frame[g] = r.detect_frame[i];
    }
    merged.detected_count += r.detected_count;
    merged.used_fallback |= r.used_fallback;
    merged.fallback_windows += r.fallback_windows;
    merged.symbolic_frames += r.symbolic_frames;
    merged.three_valued_frames += r.three_valued_frames;
    merged.checkpoint_syncs += r.checkpoint_syncs;
    merged.frames_skipped += r.frames_skipped;
    merged.faults_terminated_early += r.faults_terminated_early;
    merged.faultfree_evals_shared += r.faultfree_evals_shared;
    merged.mot_downgrades += r.mot_downgrades;
    merged.peak_live_nodes =
        std::max(merged.peak_live_nodes, r.peak_live_nodes);
  }
  return merged;
}

}  // namespace motsim
