#ifndef MOTSIM_CORE_EQUIVALENCE_H
#define MOTSIM_CORE_EQUIVALENCE_H

#include <optional>
#include <string>
#include <vector>

#include "circuit/netlist.h"
#include "logic/val3.h"

namespace motsim {

/// Outcome of the symbolic equivalence check.
struct EquivalenceResult {
  bool equivalent = false;
  /// Human-readable reason when not equivalent (interface mismatch or
  /// the index of the differing output/flip-flop).
  std::string reason;
  /// A distinguishing assignment when a function mismatch was found:
  /// present-state bits followed by input bits.
  std::optional<std::vector<bool>> counterexample_state;
  std::optional<std::vector<bool>> counterexample_inputs;
};

/// Symbolic combinational-equivalence check of two sequential circuits
/// that share a state encoding: the machines are equivalent iff they
/// have the same interface (|PI|, |PO|, |FF|) and, as OBDDs over the
/// shared present-state and input variables, identical output
/// functions lambda_j and next-state functions delta_i.
///
/// This is the right notion for verifying structure-preserving
/// rewrites — .bench round trips, the reset transform with the reset
/// pin tied low, generator refactorings — and is exactly how the
/// test-suite validates circuit/transform.h. (It is NOT a general
/// sequential-equivalence check across different state encodings.)
[[nodiscard]] EquivalenceResult check_equivalence(const Netlist& a,
                                                  const Netlist& b);

/// Convenience: equivalence of `b` against `a` with some of b's
/// trailing inputs tied to constants (e.g. the inserted reset pin tied
/// to 0). `tied` maps b's input position -> forced value; inputs of
/// `a` are matched positionally against the non-tied inputs of `b`.
[[nodiscard]] EquivalenceResult check_equivalence_with_tied_inputs(
    const Netlist& a, const Netlist& b,
    const std::vector<std::pair<std::size_t, bool>>& tied);

}  // namespace motsim

#endif  // MOTSIM_CORE_EQUIVALENCE_H
