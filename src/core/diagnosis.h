#ifndef MOTSIM_CORE_DIAGNOSIS_H
#define MOTSIM_CORE_DIAGNOSIS_H

#include <cstdint>
#include <vector>

#include "core/test_eval.h"
#include "faults/fault.h"
#include "logic/val3.h"
#include "tpg/sequences.h"

namespace motsim {

/// Symbolic fault dictionary for diagnosis under an unknown power-up
/// state.
///
/// Conventional fault dictionaries store, per fault, the exact
/// mismatch signature of the tester response — which is ill-defined
/// when the response depends on the unknown initial state. Following
/// the paper's symbolic treatment, this dictionary stores for every
/// fault f and every *well-defined* observation point (t, j) (where
/// the fault-free output is the constant b_{t,j} for all power-up
/// states) whether the faulty machine CAN mismatch there, i.e.
/// whether o^f_j(x, t) != b_{t,j} is satisfiable over the faulty
/// initial state x.
///
/// Diagnosis is then set-theoretic and sound: a fault is *excluded*
/// exactly when the observed response mismatches at a point where the
/// fault provably cannot mismatch; the injected fault is never
/// excluded. Candidates are ranked by how much of the observed
/// signature they can explain.
class FaultDictionary {
 public:
  /// Builds the dictionary by symbolic fault simulation of every fault
  /// over the sequence. `mgr` must outlive the dictionary.
  FaultDictionary(const Netlist& netlist, bdd::BddManager& mgr,
                  const std::vector<Fault>& faults,
                  const TestSequence& sequence);

  /// Well-defined observation points of the fault-free machine.
  struct Point {
    std::uint32_t frame;   ///< 0-based
    std::uint32_t output;  ///< output position
    bool expected;         ///< the constant fault-free value
  };
  [[nodiscard]] const std::vector<Point>& points() const noexcept {
    return points_;
  }

  /// True if fault `fi` (index into the constructor's list) can
  /// produce a mismatch at point `pi` for some power-up state.
  [[nodiscard]] bool can_mismatch(std::size_t fi, std::size_t pi) const {
    return can_mismatch_[fi * points_.size() + pi] != 0;
  }

  /// One diagnosis candidate.
  struct Candidate {
    std::size_t fault_index;
    /// Observed mismatches this fault can explain.
    std::size_t explained;
    /// Observed mismatches at points where the fault cannot mismatch
    /// (0 for all returned candidates — nonzero would exclude it).
    std::size_t contradicted;
  };

  /// Matches a tester response (frame-major, binary) against the
  /// dictionary. Returns the non-excluded faults, ranked by explained
  /// mismatches (descending). An empty observed-mismatch set returns
  /// an empty list: the response is consistent with the fault-free
  /// machine, so nothing can be diagnosed.
  [[nodiscard]] std::vector<Candidate> diagnose(
      const std::vector<std::vector<bool>>& response) const;

  [[nodiscard]] std::size_t fault_count() const noexcept {
    return fault_count_;
  }

 private:
  std::size_t fault_count_;
  std::vector<Point> points_;
  /// fault-major matrix: fault_count_ x points_.size().
  std::vector<std::uint8_t> can_mismatch_;
};

}  // namespace motsim

#endif  // MOTSIM_CORE_DIAGNOSIS_H
