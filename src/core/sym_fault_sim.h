#ifndef MOTSIM_CORE_SYM_FAULT_SIM_H
#define MOTSIM_CORE_SYM_FAULT_SIM_H

#include <cstdint>
#include <vector>

#include "analysis/sgraph.h"
#include "analysis/trim.h"
#include "bdd/bdd.h"
#include "circuit/levelize.h"
#include "circuit/netlist.h"
#include "core/sym_true_value.h"
#include "faults/fault.h"
#include "logic/val3.h"

namespace motsim {

/// Observation-time test strategy (Section IV.A of the paper).
enum class Strategy : std::uint8_t {
  /// Single observation time: a fault is marked detectable when some
  /// primary output has *constant* opposite values in the fault-free
  /// and faulty machine at one time point.
  Sot,
  /// Restricted MOT: accumulate D̃(x,x) over outputs whose fault-free
  /// value is constant; detected when D̃ becomes the zero function.
  /// Allows standard (unique-response) test evaluation.
  Rmot,
  /// Full MOT: independent initial-state variables y for the faulty
  /// machine; D̃(x,y) accumulates [o_i(x,t) == o_i^f(y,t)] over *all*
  /// outputs and times; detected when D̃ == 0 (Lemma 1).
  Mot,
};

[[nodiscard]] const char* to_cstring(Strategy s) noexcept;

/// Per-fault symbolic bookkeeping carried across frames.
struct SymFaultState {
  /// The detection function D̃ (constant 1 initially). Over x for
  /// SOT/rMOT, over (x, y) for MOT.
  bdd::Bdd detect;
  /// Sparse divergence of the faulty machine's present state from the
  /// fault-free state, as functions of x: (flip-flop position, faulty
  /// function). Entries always differ from the fault-free function.
  std::vector<std::pair<std::uint32_t, bdd::Bdd>> state_diff;
};

/// Per-frame context shared by all faults: the fault-free frame
/// computed by SymTrueValueSim plus lazily-built MOT caches.
class SymFrameContext {
 public:
  SymFrameContext(const std::vector<bdd::Bdd>& good_values,
                  const std::vector<bdd::Bdd>& good_next_state,
                  std::size_t output_count);

  [[nodiscard]] const std::vector<bdd::Bdd>& good_values() const noexcept {
    return *good_values_;
  }
  [[nodiscard]] const std::vector<bdd::Bdd>& good_next_state()
      const noexcept {
    return *good_next_state_;
  }

  /// o_j(y,t): the fault-free output function renamed x->y, cached.
  const bdd::Bdd& good_output_y(std::size_t j, const bdd::Bdd& good_out,
                                bdd::BddManager& mgr,
                                const std::vector<bdd::VarIndex>& x2y);

  /// [o_j(x,t) == o_j(y,t)]: the MOT term of an undiverged,
  /// non-constant output, cached across faults.
  const bdd::Bdd& good_eq_term(std::size_t j, const bdd::Bdd& good_out,
                               bdd::BddManager& mgr,
                               const std::vector<bdd::VarIndex>& x2y);

  /// The product of good_eq_term over ALL non-constant outputs — the
  /// full MOT contribution of a frame in which a fault's machine is
  /// identical to the fault-free one. Built once per frame, shared by
  /// every quiescent fault in the shard: by associativity and OBDD
  /// canonicity, `detect &= frame_eq_product()` yields the exact BDD
  /// node the per-output accumulation would, for the cost of one AND
  /// instead of |outputs| ANDs per fault (the trimming pass's main
  /// wall-clock win; docs/DESIGN.md).
  const bdd::Bdd& frame_eq_product(const Netlist& netlist,
                                   bdd::BddManager& mgr,
                                   const std::vector<bdd::VarIndex>& x2y);

 private:
  const std::vector<bdd::Bdd>* good_values_;
  const std::vector<bdd::Bdd>* good_next_state_;
  std::vector<bdd::Bdd> out_y_;    ///< null until first use
  std::vector<bdd::Bdd> eq_term_;  ///< null until first use
  bdd::Bdd eq_product_;            ///< null until first use
};

/// Event-driven symbolic single-fault frame kernel.
///
/// Mirrors the three-valued propagator but over OBDD values: the fault
/// is injected, divergence is propagated in level order through the
/// cone of influence, and detection is decided per the configured
/// strategy. The same kernel serves the pure symbolic simulator and
/// the symbolic phases of the hybrid simulator.
class SymFaultPropagator {
 public:
  SymFaultPropagator(const Netlist& netlist, bdd::BddManager& mgr,
                     const StateVars& vars);

  /// Simulates `fault` through the current frame. Updates
  /// `fs.state_diff` (next-state divergence) and `fs.detect`; returns
  /// true if the fault is now marked detectable (caller drops it).
  /// May throw bdd::BddOverflow when the manager's hard limit trips.
  ///
  /// `downgraded` asserts the s-graph downgrade precondition: the
  /// frame index is past the fault's observation horizon, so every
  /// output the fault can reach carries constant fault-free AND
  /// faulty values. MOT's per-output equality accumulation then
  /// collapses to one SOT-style constant comparison plus a single AND
  /// with the shared frame product, and rMOT's to the comparison
  /// alone — bit-identical to the full updates by associativity and
  /// OBDD canonicity. A violated precondition (non-constant diverged
  /// output) is detected at runtime and falls back to the full
  /// update, so a wrong horizon can cost time but never correctness.
  bool step(const Fault& fault, Strategy strategy, SymFaultState& fs,
            SymFrameContext& ctx, bool downgraded = false);

  [[nodiscard]] bdd::BddManager& manager() const noexcept { return *mgr_; }

  /// Per-fault bookkeeping when all three strategies run in one pass.
  struct MultiFaultState {
    bool sot_done = false, rmot_done = false, mot_done = false;
    std::uint32_t sot_frame = 0, rmot_frame = 0, mot_frame = 0;
    bdd::Bdd rmot_detect;  ///< D~(x,x)
    bdd::Bdd mot_detect;   ///< D~(x,y)
    std::vector<std::pair<std::uint32_t, bdd::Bdd>> state_diff;

    [[nodiscard]] bool all_done() const noexcept {
      return sot_done && rmot_done && mot_done;
    }
  };

  /// Single-pass step under ALL strategies: the faulty machine's
  /// evolution is strategy-independent, so seeding/propagation/latch
  /// are shared and only the detection bookkeeping triples. `frame` is
  /// the 1-based frame number recorded on detections. Returns true
  /// when every strategy has detected the fault (caller drops it).
  /// `downgraded` as in step() (applies to the rMOT/MOT bookkeeping).
  bool step_multi(const Fault& fault, MultiFaultState& ms,
                  SymFrameContext& ctx, std::uint32_t frame,
                  bool downgraded = false);

  /// Execution-redundancy counters of the trimming pass.
  struct TrimCounters {
    /// Fault-frames skipped because the fault was provably quiescent.
    std::uint64_t frames_skipped = 0;
    /// Fault-frames whose MOT terms came from the shared per-frame
    /// fault-free equality product instead of per-output ANDs.
    std::uint64_t shared_eq_uses = 0;
  };

  /// Enables ERASER-style frame skipping (docs/ANALYSIS.md): a fault
  /// with no stored state divergence whose activation net's fault-free
  /// value is the constant stuck value cannot be excited this frame —
  /// the faulty machine IS the fault-free machine — so propagation is
  /// skipped outright; under MOT the frame's detection contribution
  /// collapses to one AND with the shared frame_eq_product. Results
  /// are bit-identical to the untrimmed step by OBDD canonicity.
  void set_trim(bool trim) noexcept { trim_ = trim; }
  [[nodiscard]] const TrimCounters& trim_counters() const noexcept {
    return trim_counters_;
  }

  /// S-graph downgrade counters, separate from the trim counters so
  /// each pass's ablation can assert the other reports zero work.
  struct SgraphCounters {
    /// Fault-frames whose rMOT/MOT update ran in downgraded
    /// (SOT-equivalent) form.
    std::uint64_t downgraded_frames = 0;
  };
  [[nodiscard]] const SgraphCounters& sgraph_counters() const noexcept {
    return sgraph_counters_;
  }

 private:
  /// True when the trimming pass may skip this fault-frame entirely.
  [[nodiscard]] bool quiescent(
      const Fault& fault,
      const std::vector<std::pair<std::uint32_t, bdd::Bdd>>& state_diff,
      const std::vector<bdd::Bdd>& good) const;
  [[nodiscard]] const bdd::Bdd& fval(NodeIndex node,
                                     const std::vector<bdd::Bdd>& good) const;

  /// Injects the fault and propagates divergence (fills the scratch
  /// values and changed_ list).
  void propagate(const Fault& fault, const bdd::Bdd& sv,
                 const std::vector<std::pair<std::uint32_t, bdd::Bdd>>&
                     state_diff,
                 const std::vector<bdd::Bdd>& good);
  [[nodiscard]] bool detect_sot(const std::vector<bdd::Bdd>& good) const;
  /// Downgraded-path scan over the changed outputs: 1 when some
  /// output diverged with both values constant (a detection under
  /// every strategy), 0 when none diverged, -1 when a diverged output
  /// carries a non-constant value — the horizon precondition is
  /// violated and the caller must fall back to the full update.
  [[nodiscard]] int scan_const_divergence(
      const std::vector<bdd::Bdd>& good) const;
  /// Returns true when `detect` reached the zero function.
  bool update_rmot(bdd::Bdd& detect, const std::vector<bdd::Bdd>& good);
  bool update_mot(bdd::Bdd& detect, SymFrameContext& ctx);
  void latch_diffs(const Fault& fault, const bdd::Bdd& sv,
                   SymFrameContext& ctx,
                   std::vector<std::pair<std::uint32_t, bdd::Bdd>>& out);
  void release_scratch();

  const Netlist* netlist_;
  bdd::BddManager* mgr_;
  StateVars vars_;
  std::vector<bdd::VarIndex> x2y_;

  // Copy-on-write scratch (version stamps), as in FaultSim3.
  std::vector<bdd::Bdd> scratch_val_;
  std::vector<std::uint32_t> scratch_stamp_;
  std::uint32_t stamp_ = 0;
  EventQueue queue_;
  std::vector<NodeIndex> changed_;
  bool trim_ = false;
  TrimCounters trim_counters_;
  SgraphCounters sgraph_counters_;
};

/// A concrete certificate of UNdetectability under MOT (Lemma 1's
/// counterexample direction): a pair of initial states — p for the
/// fault-free machine, q for the faulty machine — whose output
/// sequences under the simulated test are identical, so no tester can
/// tell them apart. Directly checkable with the concrete simulator
/// (the tests do exactly that).
struct IndistinguishablePair {
  std::vector<bool> fault_free_state;  ///< p
  std::vector<bool> faulty_state;      ///< q
};

/// Result of a pure symbolic fault simulation.
struct SymFaultSimResult {
  std::vector<FaultStatus> status;
  std::vector<std::uint32_t> detect_frame;  ///< 1-based; 0 = never
  std::size_t detected_count = 0;
  std::size_t peak_live_nodes = 0;
  /// Trimming telemetry (all zero when trimming is off): fault-frames
  /// whose propagation was skipped, faults parked once their static
  /// activation horizon passed, and MOT fault-frames served by the
  /// shared per-frame fault-free equality product.
  std::uint64_t frames_skipped = 0;
  std::uint64_t faults_terminated_early = 0;
  std::uint64_t faultfree_evals_shared = 0;
  /// S-graph telemetry (zero when the pass is off): faults downgraded
  /// from MOT/rMOT to SOT-equivalent handling once the frame index
  /// passed their observation horizon.
  std::uint64_t mot_downgrades = 0;
  /// For every fault left undetected under rMOT/MOT (when
  /// SymFaultSim::set_collect_witnesses(true) was called): a satisfying
  /// pair of D~ — the indistinguishability certificate. Indexed like
  /// `status`; detected/skipped faults carry empty vectors. Under rMOT
  /// the pair shares one state variable set, so p is the faulty
  /// machine's state and fault_free_state is meaningless there (set
  /// equal to q).
  std::vector<IndistinguishablePair> witnesses;
};

/// Pure symbolic fault simulator (no three-valued fallback): exact
/// with respect to the chosen strategy. Used directly on circuits
/// whose OBDDs stay small, and by the correctness test-suite; large
/// circuits should go through HybridFaultSim.
///
/// Throws bdd::BddOverflow if the configured hard node limit trips.
class SymFaultSim {
 public:
  SymFaultSim(const Netlist& netlist, std::vector<Fault> faults,
              Strategy strategy, const bdd::BddConfig& bdd_config = {},
              VarLayout layout = VarLayout::Interleaved);

  /// Pre-classifies faults; non-Undetected entries are not simulated.
  void set_initial_status(std::vector<FaultStatus> status);

  /// Requests indistinguishability witnesses for faults that remain
  /// undetected (rMOT/MOT only; D~ is not maintained under SOT).
  void set_collect_witnesses(bool collect) { collect_witnesses_ = collect; }

  /// Enables the execution-redundancy trimming pass (docs/ANALYSIS.md):
  /// dynamic quiescent-frame skipping plus static activation parking
  /// under SOT/rMOT. Verdicts, detect frames and witnesses are
  /// bit-identical with trimming on or off. Off by default here so the
  /// correctness suite can diff both paths; the production engines
  /// (HybridFaultSim / ParallelSymSim) default it on.
  void set_trim(bool trim) { trim_ = trim; }

  /// Enables the s-graph synchronization-depth pass (docs/ANALYSIS.md
  /// pass 6): faults whose observation cone is past its horizon run
  /// the downgraded rMOT/MOT updates. Verdicts, detect frames and
  /// witnesses are bit-identical with the pass on or off. Off by
  /// default here (like trimming) so the correctness suite can diff
  /// both paths; the production engines default it on.
  void set_sgraph(bool sgraph) { sgraph_ = sgraph; }

  [[nodiscard]] SymFaultSimResult run(
      const std::vector<std::vector<Val3>>& sequence);

 private:
  const Netlist* netlist_;
  std::vector<Fault> faults_;
  Strategy strategy_;
  std::vector<FaultStatus> initial_status_;
  bdd::BddConfig bdd_config_;
  VarLayout layout_;
  bool collect_witnesses_ = false;
  bool trim_ = false;
  bool sgraph_ = false;
};

/// Status value corresponding to a detection under `s`.
[[nodiscard]] FaultStatus detected_status(Strategy s) noexcept;

/// Results of one single-pass run under all three strategies; each
/// entry equals the corresponding dedicated SymFaultSim run.
struct MultiStrategyResult {
  SymFaultSimResult sot;
  SymFaultSimResult rmot;
  SymFaultSimResult mot;
};

/// Pure symbolic fault simulation of all three observation strategies
/// in ONE pass — ~2-3x cheaper than three dedicated runs because the
/// event-driven symbolic propagation (the dominating cost) is shared.
/// A fault stays live until every strategy has classified it or the
/// sequence ends. `trim` enables quiescent-frame skipping (never
/// parking — MOT must keep accumulating); `sgraph` enables the
/// observation-horizon downgrade; results are bit-identical either
/// way.
[[nodiscard]] MultiStrategyResult run_all_strategies(
    const Netlist& netlist, const std::vector<Fault>& faults,
    const std::vector<std::vector<Val3>>& sequence,
    const bdd::BddConfig& bdd_config = {},
    VarLayout layout = VarLayout::Interleaved, bool trim = false,
    bool sgraph = false);

}  // namespace motsim

#endif  // MOTSIM_CORE_SYM_FAULT_SIM_H
