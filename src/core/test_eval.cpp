#include "core/test_eval.h"

#include <stdexcept>

#include "core/sym_true_value.h"
#include "sim3/good_sim3.h"

namespace motsim {

using bdd::Bdd;

SymbolicResponse::SymbolicResponse(
    const Netlist& netlist, bdd::BddManager& mgr,
    const std::vector<std::vector<Val3>>& sequence, std::size_t skip_frames)
    : mgr_(&mgr), output_count_(netlist.output_count()) {
  if (skip_frames > sequence.size()) skip_frames = sequence.size();
  skipped_ = skip_frames;
  frames_ = sequence.size() - skip_frames;

  // Leading three-valued frames (partial evaluation for large
  // circuits).
  GoodSim3 sim3(netlist);
  three_valued_.reserve(skipped_ * output_count_);
  for (std::size_t t = 0; t < skipped_; ++t) {
    const std::vector<Val3> outs = sim3.step(sequence[t]);
    three_valued_.insert(three_valued_.end(), outs.begin(), outs.end());
  }

  // Symbolic frames. The state handed over from the three-valued
  // prefix re-seeds unknown bits with state variables, exactly as the
  // hybrid simulator does.
  const StateVars vars(netlist.dff_count());
  SymTrueValueSim sym(netlist, mgr, vars);
  if (skipped_ > 0) {
    std::vector<Bdd> state;
    state.reserve(netlist.dff_count());
    const std::vector<Val3>& s3 = sim3.state();
    for (std::size_t i = 0; i < s3.size(); ++i) {
      state.push_back(s3[i] == Val3::X ? mgr.var(vars.x(i))
                                       : mgr.constant(s3[i] == Val3::One));
    }
    sym.set_state(std::move(state));
  }
  symbolic_.reserve(frames_ * output_count_);
  for (std::size_t t = skipped_; t < sequence.size(); ++t) {
    std::vector<Bdd> outs = sym.step(sequence[t]);
    for (Bdd& b : outs) symbolic_.push_back(std::move(b));
  }
}

const Bdd& SymbolicResponse::output(std::size_t t, std::size_t j) const {
  if (t < skipped_ || t >= frame_count() || j >= output_count_) {
    throw std::out_of_range("SymbolicResponse::output");
  }
  return symbolic_[(t - skipped_) * output_count_ + j];
}

Val3 SymbolicResponse::skipped_output(std::size_t t, std::size_t j) const {
  if (t >= skipped_ || j >= output_count_) {
    throw std::out_of_range("SymbolicResponse::skipped_output");
  }
  return three_valued_[t * output_count_ + j];
}

std::size_t SymbolicResponse::bdd_size() const {
  return mgr_->node_count(std::span<const Bdd>(symbolic_));
}

TestEvaluator::TestEvaluator(const SymbolicResponse& response)
    : response_(&response) {}

Verdict TestEvaluator::evaluate(
    const std::vector<std::vector<bool>>& response) const {
  Session session(*response_);
  for (const auto& frame : response) {
    if (session.feed(frame) == Verdict::Faulty) return Verdict::Faulty;
  }
  return session.verdict();
}

TestEvaluator::Session::Session(const SymbolicResponse& response)
    : response_(&response), product_(response.manager().one()) {}

Verdict TestEvaluator::Session::feed(const std::vector<bool>& frame_outputs) {
  if (t_ >= response_->frame_count()) {
    throw std::out_of_range("TestEvaluator: more frames than the sequence");
  }
  if (frame_outputs.size() != response_->output_count()) {
    throw std::invalid_argument("TestEvaluator: wrong output width");
  }
  if (verdict_ == Verdict::Faulty) {
    ++t_;
    return verdict_;  // Faulty is sticky
  }

  if (t_ < response_->skipped_frames()) {
    // Three-valued prefix: classic evaluation against defined values.
    for (std::size_t j = 0; j < frame_outputs.size(); ++j) {
      const Val3 expected = response_->skipped_output(t_, j);
      if (is_binary(expected) &&
          (expected == Val3::One) != frame_outputs[j]) {
        verdict_ = Verdict::Faulty;
        break;
      }
    }
  } else {
    bdd::BddManager& mgr = response_->manager();
    for (std::size_t j = 0; j < frame_outputs.size(); ++j) {
      const Bdd& o = response_->output(t_, j);
      product_ &= frame_outputs[j] ? o : !o;
      if (product_.is_zero()) {
        verdict_ = Verdict::Faulty;
        break;
      }
    }
    (void)mgr;
  }
  ++t_;
  return verdict_;
}

RmotEvaluator::RmotEvaluator(const SymbolicResponse& response)
    : frame_count_(response.frame_count()),
      output_count_(response.output_count()) {
  for (std::size_t t = 0; t < response.frame_count(); ++t) {
    for (std::size_t j = 0; j < response.output_count(); ++j) {
      if (t < response.skipped_frames()) {
        const Val3 v = response.skipped_output(t, j);
        if (is_binary(v)) points_.push_back({t, j, v == Val3::One});
      } else {
        const bdd::Bdd& o = response.output(t, j);
        if (o.is_const()) points_.push_back({t, j, o.is_one()});
      }
    }
  }
}

Verdict RmotEvaluator::evaluate(
    const std::vector<std::vector<bool>>& response) const {
  if (response.size() != frame_count_) {
    throw std::invalid_argument("RmotEvaluator: wrong frame count");
  }
  for (const Point& p : points_) {
    if (response[p.t].size() != output_count_) {
      throw std::invalid_argument("RmotEvaluator: wrong output width");
    }
    if (response[p.t][p.j] != p.value) return Verdict::Faulty;
  }
  return Verdict::Pass;
}

}  // namespace motsim
