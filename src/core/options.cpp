#include "core/options.h"

#include "core/pipeline.h"

namespace motsim {

namespace {

/// Hard sanity ceiling on worker threads: far above any real machine,
/// low enough to catch a garbage value (e.g. a negative int cast to
/// size_t) before it allocates thousands of BDD managers.
constexpr std::size_t kMaxThreads = 1024;

}  // namespace

Expected<SimOptions, std::string> SimOptions::validate() const {
  using Err = Unexpected<std::string>;
  if (node_limit == 0) {
    return Err{"node_limit must be positive"};
  }
  if (fallback_frames == 0) {
    return Err{"fallback_frames must be positive"};
  }
  if (hard_limit_factor == 0) {
    return Err{"hard_limit_factor must be positive"};
  }
  if (threads > kMaxThreads) {
    return Err{"threads must be at most " + std::to_string(kMaxThreads) +
               " (0 = one per hardware thread)"};
  }
  if (bdd_initial_capacity < 2) {
    return Err{"bdd_initial_capacity must hold at least the two terminals"};
  }
  if (bdd_cache_size_log2 < 4 || bdd_cache_size_log2 > 30) {
    return Err{"bdd_cache_size_log2 must be in [4, 30]"};
  }
  switch (strategy) {
    case Strategy::Sot:
    case Strategy::Rmot:
    case Strategy::Mot:
      break;
    default:
      return Err{"strategy is not a valid Strategy value"};
  }
  switch (layout) {
    case VarLayout::Interleaved:
    case VarLayout::Blocked:
      break;
    default:
      return Err{"layout is not a valid VarLayout value"};
  }
  switch (sim3_backend) {
    case Sim3Backend::Event:
    case Sim3Backend::BitPar:
      break;
    default:
      return Err{"sim3_backend is not a valid Sim3Backend value"};
  }
  return *this;
}

bdd::BddConfig SimOptions::to_bdd_config() const {
  bdd::BddConfig c;
  c.initial_capacity = bdd_initial_capacity;
  c.cache_size_log2 = bdd_cache_size_log2;
  c.auto_gc_floor = bdd_auto_gc_floor;
  // hard_node_limit is derived by the hybrid simulator from
  // node_limit * hard_limit_factor; the raw BddConfig keeps its
  // default (unlimited) here.
  return c;
}

HybridConfig SimOptions::to_hybrid_config() const {
  HybridConfig c;
  c.strategy = strategy;
  c.layout = layout;
  c.node_limit = node_limit;
  c.fallback_frames = fallback_frames;
  c.hard_limit_factor = hard_limit_factor;
  c.checkpoint_interval = checkpoint_interval;
  c.bdd = to_bdd_config();
  c.sim3_backend = sim3_backend;
  c.trim = trim;
  c.sgraph = sgraph;
  return c;
}

PipelineConfig SimOptions::to_pipeline_config() const {
  PipelineConfig c;
  c.analysis = analysis;
  c.run_xred = run_xred;
  c.sim3_backend = sim3_backend;
  c.run_symbolic = run_symbolic;
  c.threads = threads;
  c.chunk_size = chunk_size;
  c.hybrid = to_hybrid_config();
  c.telemetry = telemetry;
  return c;
}

SimOptions SimOptions::from_pipeline_config(const PipelineConfig& config) {
  SimOptions o;
  o.analysis = config.analysis;
  o.run_xred = config.run_xred;
  o.sim3_backend = config.sim3_backend;
  o.run_symbolic = config.run_symbolic;
  o.threads = config.threads;
  o.chunk_size = config.chunk_size;
  o.strategy = config.hybrid.strategy;
  o.layout = config.hybrid.layout;
  o.node_limit = config.hybrid.node_limit;
  o.fallback_frames = config.hybrid.fallback_frames;
  o.hard_limit_factor = config.hybrid.hard_limit_factor;
  o.checkpoint_interval = config.hybrid.checkpoint_interval;
  o.trim = config.hybrid.trim;
  o.sgraph = config.hybrid.sgraph;
  o.bdd_initial_capacity = config.hybrid.bdd.initial_capacity;
  o.bdd_cache_size_log2 = config.hybrid.bdd.cache_size_log2;
  o.bdd_auto_gc_floor = config.hybrid.bdd.auto_gc_floor;
  o.telemetry = config.telemetry;
  return o;
}

}  // namespace motsim
