#include "core/hybrid_sim.h"

#include <numeric>
#include <stdexcept>

#include "core/sym_true_value.h"
#include "obs/telemetry.h"
#include "sim3/fault_simulator.h"
#include "util/stopwatch.h"

namespace motsim {

using bdd::Bdd;

HybridFaultSim::HybridFaultSim(const Netlist& netlist,
                               std::vector<Fault> faults, HybridConfig config)
    : netlist_(&netlist),
      faults_(std::move(faults)),
      config_(config),
      initial_status_(faults_.size(), FaultStatus::Undetected) {
  if (!netlist.finalized()) {
    throw std::logic_error("HybridFaultSim requires a finalized netlist");
  }
  if (config_.node_limit == 0 || config_.fallback_frames == 0 ||
      config_.hard_limit_factor == 0) {
    throw std::invalid_argument("HybridConfig: limits must be positive");
  }
}

void HybridFaultSim::set_initial_status(std::vector<FaultStatus> status) {
  if (status.size() != faults_.size()) {
    throw std::invalid_argument("set_initial_status: wrong size");
  }
  initial_status_ = std::move(status);
  resume_.reset();
}

void HybridFaultSim::set_trim_plan(TrimPlan plan) {
  if (plan.dead_from.size() != faults_.size()) {
    throw std::invalid_argument("set_trim_plan: plan does not match the "
                                "fault list");
  }
  trim_plan_ = std::move(plan);
}

void HybridFaultSim::set_sgraph_plan(SgraphPlan plan) {
  if (plan.horizon.size() != faults_.size()) {
    throw std::invalid_argument("set_sgraph_plan: plan does not match the "
                                "fault list");
  }
  sgraph_plan_ = std::move(plan);
}

void HybridFaultSim::set_resume(ChunkCheckpoint checkpoint) {
  if (checkpoint.status.size() != faults_.size() ||
      checkpoint.detect_frame.size() != faults_.size() ||
      checkpoint.diff.size() != faults_.size()) {
    throw std::invalid_argument("set_resume: checkpoint does not match the "
                                "fault list");
  }
  if (checkpoint.good_state.size() != netlist_->dff_count()) {
    throw std::invalid_argument("set_resume: checkpoint state width does "
                                "not match the netlist");
  }
  initial_status_ = checkpoint.status;
  resume_ = std::move(checkpoint);
}

namespace {

Val3 bdd_to_val3(const Bdd& b) {
  if (b.is_zero()) return Val3::Zero;
  if (b.is_one()) return Val3::One;
  return Val3::X;
}

}  // namespace

HybridResult HybridFaultSim::run(
    const std::vector<std::vector<Val3>>& sequence) {
  const Netlist& nl = *netlist_;

  bdd::BddConfig bddc = config_.bdd;
  bddc.hard_node_limit = config_.node_limit * config_.hard_limit_factor;
  bdd::BddManager mgr(bddc);
  const StateVars vars(nl.dff_count(), config_.layout);
  SymTrueValueSim sym(nl, mgr, vars);
  if (!tied_.empty()) sym.set_tied_constants(tied_);
  SymFaultPropagator symprop(nl, mgr, vars);
  symprop.set_trim(config_.trim);
  // Static activation horizons for SOT/rMOT parking: once past
  // dead_from with no stored divergence the fault can never be excited
  // again, so its remaining symbolic frames are pure no-ops. MOT never
  // parks (D̃ keeps accumulating). Parked faults keep their BDD handles
  // alive so gc pressure — and hence every fallback decision — matches
  // the untrimmed run.
  TrimPlan plan;
  if (config_.trim) {
    plan = trim_plan_ ? *trim_plan_ : build_trim_plan(nl, faults_);
  }
  // S-graph observation horizons for the rMOT/MOT downgrade. Horizons
  // are epoch-relative: every re-seed of the symbolic state variables
  // (window exit, checkpoint sync, resume) restarts the clock.
  SgraphPlan splan;
  if (config_.sgraph) {
    splan = sgraph_plan_ ? *sgraph_plan_ : build_sgraph_plan(nl, faults_);
  }
  // Three-valued engine behind the fallback windows; the backend is a
  // pure performance knob (bit-identical results). Runs serially —
  // the parallel symbolic driver shards at the fault level already.
  const std::unique_ptr<FaultSimulator3> sim3 = make_fault_simulator3(
      config_.sim3_backend, nl, faults_,
      Sim3EngineConfig{/*threads=*/1, telemetry_});

  HybridResult result;
  result.status = initial_status_;
  result.detect_frame = resume_ ? resume_->detect_frame
                                : std::vector<std::uint32_t>(faults_.size(), 0);

  struct Live {
    std::size_t index;
    SymFaultState sym;  ///< valid in symbolic mode
    StateDiff3 diff3;   ///< valid in three-valued mode
    bool parked = false;
    bool downgraded = false;
  };
  std::vector<Live> live;
  for (std::size_t i = 0; i < faults_.size(); ++i) {
    if (initial_status_[i] == FaultStatus::Undetected) {
      live.push_back(Live{i, SymFaultState{mgr.one(), {}}, {}, false, false});
      if (resume_) live.back().diff3 = resume_->diff[i];
    }
  }

  enum class Mode { Symbolic, ThreeValued };
  Mode mode = Mode::Symbolic;
  std::size_t window_left = 0;
  std::size_t t = 0;  ///< index of the next frame to simulate
  /// Frames completed when the current symbolic state variables were
  /// seeded; the s-graph horizons count from here.
  std::size_t epoch = 0;
  if (resume_) {
    if (resume_->frame > sequence.size()) {
      throw std::invalid_argument("set_resume: checkpoint frame beyond the "
                                  "sequence");
    }
    t = resume_->frame;
  }
  const std::size_t start_frame = t;
  const FaultStatus det = detected_status(config_.strategy);

  // Telemetry locals (all dormant when telemetry_ == nullptr): mode
  // timers accumulate symbolic vs. three-valued wall seconds across
  // the run's interleaved stretches; mode_span is the currently open
  // "symbolic" / "fallback_window" trace span.
  AccumulatingTimer sym_timer;
  AccumulatingTimer fb_timer;
  std::uint64_t reseeded_bits = 0;
  std::optional<obs::SpanTracer::Span> mode_span;

  // Converts one fault's symbolic state divergence into a three-valued
  // divergence against the given three-valued good state. Symbolic
  // functions that are not constant become X; entries that no longer
  // differ are dropped (both unknown == "assume equal", which only
  // grows the represented state set, keeping all detection claims
  // sound).
  auto diff_to_3v = [](const SymFaultState& fs,
                       const std::vector<Val3>& good_state3) {
    StateDiff3 d3;
    for (const auto& [pos, b] : fs.state_diff) {
      const Val3 fv = bdd_to_val3(b);
      if (fv != good_state3[pos]) d3.emplace_back(pos, fv);
    }
    return d3;
  };

  // Opens an engine window session over the surviving faults. During
  // a window `live` is frozen (no compaction): window position i is
  // live[i], the engine tracks which positions were dropped, and the
  // survivors are harvested when the window closes.
  auto enter_three_valued = [&](const std::vector<Val3>& good_state3,
                                std::vector<StateDiff3> diffs3) {
    std::vector<std::size_t> indices;
    indices.reserve(live.size());
    for (Live& lf : live) {
      indices.push_back(lf.index);
      lf.diff3.clear();
      lf.sym.state_diff.clear();
      lf.sym.detect = Bdd();
    }
    const std::size_t nodes_at_entry = mgr.live_node_count();
    sim3->begin_window(good_state3, std::move(indices), std::move(diffs3));
    sym.release();
    mgr.gc();
    mode = Mode::ThreeValued;
    window_left = config_.fallback_frames;
    result.used_fallback = true;
    ++result.fallback_windows;
    obs::log_event(telemetry_, obs::LogLevel::Warn, "hybrid.fallback.enter",
                   {obs::LogField::u64("frame", t + 1),
                    obs::LogField::u64("live_nodes", nodes_at_entry),
                    obs::LogField::u64("live_faults", live.size()),
                    obs::LogField::u64("window_frames",
                                       config_.fallback_frames)});
    // Both entry paths leave `t` pointing at the first frame the
    // window will simulate, so t + 1 is its 1-based number.
    if (progress_) progress_->on_fallback_window(t + 1, config_.fallback_frames);
  };

  // Seeds the symbolic machine from a three-valued snapshot (paper
  // Section IV.A): unknown state bits become state variables, every
  // detection function restarts at constant 1, and per-fault
  // divergences are rebuilt against the seeded good state. `diffs3` is
  // aligned with `live`. Serves three entry paths identically:
  // re-entry after a fallback window, a checkpoint synchronization,
  // and resumption from a stored checkpoint.
  auto seed_symbolic = [&](const std::vector<Val3>& state3,
                           const std::vector<StateDiff3>& diffs3) {
    if (telemetry_ != nullptr) {
      for (Val3 v : state3) {
        if (v == Val3::X) ++reseeded_bits;
      }
    }
    std::vector<Bdd> state_bdds;
    state_bdds.reserve(state3.size());
    for (std::size_t i = 0; i < state3.size(); ++i) {
      state_bdds.push_back(state3[i] == Val3::X
                               ? mgr.var(vars.x(i))
                               : mgr.constant(state3[i] == Val3::One));
    }
    sym.set_state(std::move(state_bdds));
    epoch = t;  // horizons restart with the fresh state variables
    for (std::size_t i = 0; i < live.size(); ++i) {
      Live& lf = live[i];
      lf.parked = false;  // re-park check runs every symbolic frame
      lf.downgraded = false;  // horizon re-passes relative to the epoch
      lf.sym.detect = mgr.one();
      lf.sym.state_diff.clear();
      for (const auto& [pos, v] : diffs3[i]) {
        const Bdd fb = v == Val3::X ? mgr.var(vars.x(pos))
                                    : mgr.constant(v == Val3::One);
        const Bdd gb = state3[pos] == Val3::X
                           ? mgr.var(vars.x(pos))
                           : mgr.constant(state3[pos] == Val3::One);
        if (fb != gb) lf.sym.state_diff.emplace_back(pos, fb);
      }
      lf.diff3.clear();
    }
    mode = Mode::Symbolic;
  };

  auto resume_symbolic = [&] {
    const std::vector<Val3> state3 = sim3->window_state();
    std::vector<Live> survivors;
    std::vector<StateDiff3> diffs3;
    survivors.reserve(sim3->window_live());
    diffs3.reserve(sim3->window_live());
    for (std::uint32_t pos = 0; pos < live.size(); ++pos) {
      if (!sim3->window_fault_alive(pos)) continue;
      diffs3.push_back(sim3->window_diff(pos));
      survivors.push_back(std::move(live[pos]));
    }
    live = std::move(survivors);
    sim3->end_window();
    seed_symbolic(state3, diffs3);
    obs::log_event(telemetry_, obs::LogLevel::Info, "hybrid.fallback.exit",
                   {obs::LogField::u64("frame", t + 1),
                    obs::LogField::u64("live_faults", live.size()),
                    obs::LogField::u64("live_nodes", mgr.live_node_count())});
  };

  // Builds the current boundary snapshot. In a three-valued window the
  // state is already in snapshot form; in symbolic mode the machine is
  // converted (the caller then decides whether to also re-seed).
  auto make_checkpoint = [&](bool complete) {
    ChunkCheckpoint ck;
    ck.frame = t;
    ck.complete = complete;
    ck.fault_index.resize(faults_.size());
    std::iota(ck.fault_index.begin(), ck.fault_index.end(), std::size_t{0});
    ck.status = result.status;
    ck.detect_frame = result.detect_frame;
    ck.diff.resize(faults_.size());
    if (mode == Mode::ThreeValued) {
      ck.in_window = true;
      ck.window_left = window_left;
      ck.good_state = sim3->window_state();
      for (std::uint32_t pos = 0; pos < live.size(); ++pos) {
        if (sim3->window_fault_alive(pos)) {
          ck.diff[live[pos].index] = sim3->window_diff(pos);
        }
      }
    } else {
      ck.good_state = sym.state_as_val3();
      for (const Live& lf : live) {
        ck.diff[lf.index] = diff_to_3v(lf.sym, ck.good_state);
      }
    }
    return ck;
  };

  // Surviving faults: during a window `live` is frozen and the engine
  // tracks drops, so the engine's count is authoritative there.
  auto live_count = [&] {
    return mode == Mode::ThreeValued ? sim3->window_live() : live.size();
  };

  const std::size_t interval = config_.checkpoint_interval;
  auto at_boundary = [&] {
    return interval != 0 && t % interval == 0 && t < sequence.size() &&
           live_count() != 0;
  };

  // ---- resume entry ----------------------------------------------------
  if (resume_ && t < sequence.size() && !live.empty()) {
    if (resume_->in_window && resume_->window_left > 0) {
      std::vector<std::size_t> indices;
      std::vector<StateDiff3> diffs3;
      indices.reserve(live.size());
      diffs3.reserve(live.size());
      for (Live& lf : live) {
        indices.push_back(lf.index);
        diffs3.push_back(std::move(lf.diff3));
        lf.diff3.clear();
      }
      sim3->begin_window(resume_->good_state, std::move(indices),
                         std::move(diffs3));
      mode = Mode::ThreeValued;
      window_left = resume_->window_left;
      result.used_fallback = true;
    } else {
      // A snapshot at a sync boundary (or at the very end of a
      // window): re-seed exactly like the uninterrupted run did.
      std::vector<StateDiff3> diffs3;
      diffs3.reserve(live.size());
      for (const Live& lf : live) diffs3.push_back(resume_->diff[lf.index]);
      seed_symbolic(resume_->good_state, diffs3);
    }
  }

  if (telemetry_ != nullptr && t < sequence.size() && live_count() != 0) {
    mode_span = telemetry_->tracer.span(
        mode == Mode::Symbolic ? "symbolic" : "fallback_window");
  }
  // Resolved once: the per-frame gauge update must not pay the
  // registry's map lookup inside the hot loop.
  obs::Gauge* const live_nodes_gauge =
      telemetry_ != nullptr ? &telemetry_->metrics.gauge("bdd.live_nodes")
                            : nullptr;

  while (t < sequence.size() && live_count() != 0) {
    const Mode frame_mode = mode;
    if (telemetry_ != nullptr) {
      (frame_mode == Mode::Symbolic ? sym_timer : fb_timer).start();
    }
    if (mode == Mode::Symbolic) {
      // Snapshot the pre-frame machine in three-valued form so an
      // aborted frame (hard-limit overflow) can be redone in the
      // three-valued mode.
      const std::vector<Val3> pre_state3 = sym.state_as_val3();
      std::vector<StateDiff3> pre_diffs3;
      pre_diffs3.reserve(live.size());
      for (const Live& lf : live) {
        pre_diffs3.push_back(diff_to_3v(lf.sym, pre_state3));
      }

      bool frame_completed = false;
      std::uint64_t parked_skips = 0;  ///< committed only if t completes
      try {
        sym.step(sequence[t]);
        SymFrameContext ctx(sym.values(), sym.state(), nl.output_count());

        // `live` is compacted only after the whole frame succeeds so
        // the exception path below sees the vector intact and aligned
        // with pre_diffs3.
        for (Live& lf : live) {
          if (config_.trim && config_.strategy != Strategy::Mot &&
              !lf.parked && plan.dead_from[lf.index] != 0 &&
              t + 1 >= plan.dead_from[lf.index] &&
              lf.sym.state_diff.empty()) {
            lf.parked = true;
          }
          if (lf.parked) {
            ++parked_skips;
            continue;
          }
          if (config_.sgraph && config_.strategy != Strategy::Sot &&
              !lf.downgraded && splan.horizon[lf.index] != kInfDepth &&
              t >= epoch + splan.horizon[lf.index]) {
            lf.downgraded = true;
            ++result.mot_downgrades;
          }
          if (symprop.step(faults_[lf.index], config_.strategy, lf.sym,
                           ctx, lf.downgraded)) {
            result.status[lf.index] = det;
            result.detect_frame[lf.index] = static_cast<std::uint32_t>(t + 1);
            ++result.detected_count;
            if (progress_) {
              progress_->on_fault_detected(lf.index,
                                           result.detect_frame[lf.index]);
            }
          }
        }
        std::size_t keep = 0;
        for (std::size_t i = 0; i < live.size(); ++i) {
          if (result.status[live[i].index] == det) continue;
          if (keep != i) live[keep] = std::move(live[i]);
          ++keep;
        }
        live.resize(keep);

        ++result.symbolic_frames;
        result.frames_skipped += parked_skips;
        ++t;
        frame_completed = true;
        mgr.gc();
        result.peak_live_nodes =
            std::max(result.peak_live_nodes, mgr.live_node_count());
        if (live_nodes_gauge != nullptr) {
          live_nodes_gauge->set(
              static_cast<double>(mgr.live_node_count()));
        }
        obs::log_event(telemetry_, obs::LogLevel::Trace, "bdd.gc",
                       {obs::LogField::u64("frame", t),
                        obs::LogField::u64("live_nodes",
                                           mgr.live_node_count())});
        if (progress_) {
          progress_->on_frame(t, mgr.live_node_count(), live.size());
        }
        if (mgr.live_node_count() > config_.node_limit && t < sequence.size()) {
          // Soft limit: leave symbolic mode at the frame boundary.
          const std::vector<Val3> post_state3 = sym.state_as_val3();
          std::vector<StateDiff3> diffs3;
          diffs3.reserve(live.size());
          for (const Live& lf : live) {
            diffs3.push_back(diff_to_3v(lf.sym, post_state3));
          }
          enter_three_valued(post_state3, std::move(diffs3));
        }
      } catch (const bdd::BddOverflow&) {
        // Hard limit mid-frame: discard the frame's partial symbolic
        // work and redo frame t in three-valued mode. Faults already
        // marked detected this frame keep their (valid) verdicts;
        // snapshot diffs restore every surviving fault.
        obs::log_event(telemetry_, obs::LogLevel::Warn, "bdd.overflow",
                       {obs::LogField::u64("frame", t + 1),
                        obs::LogField::u64("node_limit",
                                           config_.node_limit)},
                       "hard node limit mid-frame; redoing frame "
                       "three-valued");
        std::size_t keep = 0;
        std::vector<StateDiff3> survivors;
        for (std::size_t i = 0; i < live.size(); ++i) {
          if (result.status[live[i].index] == det) continue;  // dropped
          survivors.push_back(std::move(pre_diffs3[i]));
          if (keep != i) live[keep] = std::move(live[i]);
          ++keep;
        }
        live.resize(keep);
        enter_three_valued(pre_state3, std::move(survivors));
        // t intentionally not advanced: the frame reruns three-valued.
      }

      if (frame_completed && at_boundary()) {
        if (mode == Mode::Symbolic) {
          // Checkpoint synchronization: convert, snapshot, re-seed.
          const ChunkCheckpoint ck = make_checkpoint(false);
          if (checkpoint_) checkpoint_->on_checkpoint(ck);
          std::vector<StateDiff3> diffs3;
          diffs3.reserve(live.size());
          for (const Live& lf : live) diffs3.push_back(ck.diff[lf.index]);
          sym.release();
          seed_symbolic(ck.good_state, diffs3);
          mgr.gc();
          ++result.checkpoint_syncs;
          if (telemetry_ != nullptr) {
            telemetry_->tracer.instant("checkpoint_sync");
          }
          obs::log_event(telemetry_, obs::LogLevel::Debug,
                         "hybrid.checkpoint.sync",
                         {obs::LogField::u64("frame", t),
                          obs::LogField::u64("live_faults", live.size()),
                          obs::LogField::u64("live_nodes",
                                             mgr.live_node_count())});
        } else if (checkpoint_) {
          // The soft limit just opened a window: snapshot its entry
          // state without disturbing it.
          checkpoint_->on_checkpoint(make_checkpoint(false));
        }
      }
    } else {
      for (const std::uint32_t pos : sim3->step_window(sequence[t])) {
        // A three-valued detection is a genuine detection under
        // every strategy (constant opposite binary responses).
        const std::size_t fi = live[pos].index;
        result.status[fi] = det;
        result.detect_frame[fi] = static_cast<std::uint32_t>(t + 1);
        ++result.detected_count;
        sim3->drop_window_fault(pos);
        if (progress_) {
          progress_->on_fault_detected(fi, result.detect_frame[fi]);
        }
      }

      ++result.three_valued_frames;
      ++t;
      --window_left;
      if (progress_) progress_->on_frame(t, 0, sim3->window_live());
      if (checkpoint_ && at_boundary()) {
        checkpoint_->on_checkpoint(make_checkpoint(false));
      }
      if (window_left == 0 && t < sequence.size() &&
          sim3->window_live() != 0) {
        resume_symbolic();
      }
    }
    if (telemetry_ != nullptr) {
      (frame_mode == Mode::Symbolic ? sym_timer : fb_timer).stop();
      if (mode != frame_mode) {
        mode_span.reset();  // closes the stretch that just ended
        mode_span = telemetry_->tracer.span(
            mode == Mode::Symbolic ? "symbolic" : "fallback_window");
      }
    }
  }

  // Final snapshot: marks the chunk complete and carries the state
  // incremental re-simulation extends from. Suppressed when a resumed
  // run had nothing left to do (the store already holds this record).
  if (checkpoint_ && interval != 0 && (t > start_frame || !resume_)) {
    checkpoint_->on_checkpoint(make_checkpoint(true));
  }

  // Trimming telemetry: dynamic quiescent skips accumulated inside the
  // propagator, parked skips committed per completed frame above, and
  // the faults still parked when the run ends (counted once here so
  // window round-trips cannot double-count them).
  result.frames_skipped += symprop.trim_counters().frames_skipped;
  result.faultfree_evals_shared = symprop.trim_counters().shared_eq_uses;
  for (const Live& lf : live) {
    if (lf.parked) ++result.faults_terminated_early;
  }

  if (telemetry_ != nullptr) {
    mode_span.reset();
    obs::MetricsRegistry& m = telemetry_->metrics;
    m.counter("hybrid.symbolic_frames").add(result.symbolic_frames);
    m.counter("hybrid.three_valued_frames").add(result.three_valued_frames);
    m.counter("hybrid.fallback_windows").add(result.fallback_windows);
    m.counter("hybrid.checkpoint_syncs").add(result.checkpoint_syncs);
    m.counter("hybrid.detected_faults").add(result.detected_count);
    m.counter("engine.reseeded_state_bits").add(reseeded_bits);
    m.counter("analysis.frames_skipped").add(result.frames_skipped);
    m.counter("analysis.faults_terminated_early")
        .add(result.faults_terminated_early);
    m.counter("analysis.mot_downgrades").add(result.mot_downgrades);
    m.counter("sym.faultfree_evals_shared")
        .add(result.faultfree_evals_shared);
    m.gauge("hybrid.symbolic_seconds").add(sym_timer.total_seconds());
    m.gauge("hybrid.fallback_seconds").add(fb_timer.total_seconds());

    const bdd::BddStats& bs = mgr.stats();
    m.counter("bdd.apply_cache_lookups").add(bs.cache_lookups);
    m.counter("bdd.apply_cache_hits").add(bs.cache_hits);
    m.counter("bdd.unique_hits").add(bs.unique_hits);
    m.counter("bdd.nodes_created").add(bs.nodes_created);
    m.counter("bdd.gc_runs").add(bs.gc_runs);
    m.counter("bdd.gc_reclaimed_nodes").add(bs.gc_reclaimed_nodes);
    m.gauge("bdd.reorder_seconds").add(bs.reorder_seconds);
    m.gauge("bdd.peak_live_nodes")
        .update_max(static_cast<double>(bs.peak_live_nodes));
    m.gauge("bdd.unique_table_buckets")
        .update_max(static_cast<double>(mgr.unique_bucket_count()));
    if (mgr.unique_bucket_count() != 0) {
      m.gauge("bdd.unique_table_load")
          .update_max(static_cast<double>(mgr.live_node_count()) /
                      static_cast<double>(mgr.unique_bucket_count()));
    }
  }

  return result;
}

}  // namespace motsim
