#ifndef MOTSIM_CORE_CHECKPOINT_H
#define MOTSIM_CORE_CHECKPOINT_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "faults/fault.h"
#include "logic/val3.h"
#include "sim3/fault_sim3.h"

namespace motsim {

/// Snapshot of one hybrid-engine chunk at a completed frame boundary.
///
/// Checkpoints are taken only where the machine state is representable
/// in three-valued form: inside a three-valued fallback window the
/// state already is, and at a checkpoint-synchronization boundary the
/// engine converts its symbolic state (non-constant functions become
/// X) before snapshotting. Symbolic D̃ accumulators therefore never
/// need serializing — on resume the engine re-seeds unknown state bits
/// with fresh state variables and restarts every detection function at
/// constant 1, exactly the paper's re-entry after a fallback window.
/// Soundness carries over: the represented state sets only ever grow,
/// so a resumed run never claims a false detection.
///
/// `fault_index`, `status`, `detect_frame` and `diff` are aligned, one
/// entry per fault of the chunk. `fault_index` holds indices into the
/// caller's fault list: HybridFaultSim emits 0..n-1 (its own order),
/// ParallelSymSim rewrites them to the global fault list. `diff` is
/// meaningful only for faults still Undetected (live); it is the
/// sparse three-valued divergence of the faulty machine's state from
/// `good_state`.
struct ChunkCheckpoint {
  /// Chunk id within the sharded driver (0 for the serial engine).
  std::size_t chunk = 0;
  /// Number of frames completed when the snapshot was taken; a resumed
  /// run continues with frame `frame` (0-based index into the
  /// sequence).
  std::size_t frame = 0;
  /// True when the snapshot was taken inside a three-valued fallback
  /// window; `window_left` frames of the window remain (0 means the
  /// window just ended and the next frame re-enters symbolic mode).
  bool in_window = false;
  std::size_t window_left = 0;
  /// True for the record emitted after the final frame (or after the
  /// last live fault dropped): the chunk finished this sequence.
  bool complete = false;
  /// Fault-free machine state, one value per flip-flop.
  std::vector<Val3> good_state;
  std::vector<std::size_t> fault_index;
  std::vector<FaultStatus> status;
  std::vector<std::uint32_t> detect_frame;  ///< 1-based; 0 = never
  std::vector<StateDiff3> diff;
};

/// Observer for checkpoint snapshots, the persistence hook of the run
/// store. Like ProgressSink: HybridFaultSim calls it from the thread
/// that executes run(); ParallelSymSim serializes calls through one
/// mutex and translates chunk ids and fault indices to the global
/// fault list. A sink that throws aborts the run (the parallel driver
/// rethrows the first error) — the run-store tests use exactly that to
/// simulate a crash between two checkpoints.
class CheckpointSink {
 public:
  virtual ~CheckpointSink() = default;
  virtual void on_checkpoint(const ChunkCheckpoint& checkpoint) = 0;
};

}  // namespace motsim

#endif  // MOTSIM_CORE_CHECKPOINT_H
