#include "core/diagnosis.h"

#include <algorithm>
#include <stdexcept>

#include "core/sym_true_value.h"

namespace motsim {

using bdd::Bdd;

FaultDictionary::FaultDictionary(const Netlist& nl, bdd::BddManager& mgr,
                                 const std::vector<Fault>& faults,
                                 const TestSequence& sequence)
    : fault_count_(faults.size()) {
  if (!nl.finalized()) {
    throw std::logic_error("FaultDictionary requires a finalized netlist");
  }
  const StateVars vars(nl.dff_count());
  mgr.ensure_vars(vars.var_count());

  // Pass 1: fault-free symbolic simulation defines the well-defined
  // observation points (constant outputs), per frame.
  {
    SymTrueValueSim good(nl, mgr, vars);
    for (std::size_t t = 0; t < sequence.size(); ++t) {
      const std::vector<Bdd> outs = good.step(sequence[t]);
      for (std::size_t j = 0; j < outs.size(); ++j) {
        if (outs[j].is_const()) {
          points_.push_back(Point{static_cast<std::uint32_t>(t),
                                  static_cast<std::uint32_t>(j),
                                  outs[j].is_one()});
        }
      }
    }
  }
  // Points grouped per frame for the per-fault pass.
  std::vector<std::vector<std::size_t>> points_by_frame(sequence.size());
  for (std::size_t p = 0; p < points_.size(); ++p) {
    points_by_frame[points_[p].frame].push_back(p);
  }

  can_mismatch_.assign(fault_count_ * points_.size(), 0);

  // Pass 2: per fault, a full (non-event-driven) symbolic simulation
  // of the faulty machine; at every well-defined point, the fault can
  // mismatch iff its output function is not identically the expected
  // constant. Dictionary building is a diagnosis-time tool for
  // generator-scale circuits, so the simple full evaluation is fine.
  for (std::size_t fi = 0; fi < fault_count_; ++fi) {
    const Fault& fault = faults[fi];
    const bool stem = fault.site.is_stem();
    const Bdd sv = mgr.constant(fault.stuck_value);

    std::vector<Bdd> values(nl.node_count());
    std::vector<Bdd> state;
    state.reserve(nl.dff_count());
    for (std::size_t i = 0; i < nl.dff_count(); ++i) {
      state.push_back(mgr.var(vars.x(i)));
    }

    for (std::size_t t = 0; t < sequence.size(); ++t) {
      for (std::size_t j = 0; j < nl.input_count(); ++j) {
        values[nl.inputs()[j]] =
            mgr.constant(sequence[t][j] == Val3::One);
      }
      for (std::size_t i = 0; i < nl.dff_count(); ++i) {
        values[nl.dffs()[i]] = state[i];
      }
      if (stem) values[fault.site.node] = sv;

      for (NodeIndex n : nl.topo_order()) {
        const Gate& g = nl.gate(n);
        if (is_frame_input(g.type)) {
          if (g.type == GateType::Const0) values[n] = mgr.zero();
          if (g.type == GateType::Const1) values[n] = mgr.one();
          if (stem && n == fault.site.node) values[n] = sv;
          continue;
        }
        if (stem && n == fault.site.node) {
          values[n] = sv;
          continue;
        }
        const bool here = !stem && n == fault.site.node;
        values[n] = eval_gate_sym(mgr, g.type, g.fanins.size(),
                                  [&](std::size_t i) -> const Bdd& {
                                    if (here && i == fault.site.pin) {
                                      return sv;
                                    }
                                    return values[g.fanins[i]];
                                  });
      }

      for (std::size_t p : points_by_frame[t]) {
        const Bdd& out = values[nl.outputs()[points_[p].output]];
        const Bdd expected = mgr.constant(points_[p].expected);
        if (out != expected) {
          can_mismatch_[fi * points_.size() + p] = 1;
        }
      }

      for (std::size_t i = 0; i < nl.dff_count(); ++i) {
        const NodeIndex dff = nl.dffs()[i];
        Bdd v = values[nl.gate(dff).fanins[0]];
        if (!stem && fault.site.node == dff) v = sv;
        state[i] = std::move(v);
      }
    }
    mgr.gc();
  }
}

std::vector<FaultDictionary::Candidate> FaultDictionary::diagnose(
    const std::vector<std::vector<bool>>& response) const {
  // Observed mismatch set over the well-defined points.
  std::vector<std::size_t> observed;
  for (std::size_t p = 0; p < points_.size(); ++p) {
    const Point& pt = points_[p];
    if (pt.frame >= response.size() ||
        pt.output >= response[pt.frame].size()) {
      throw std::invalid_argument("diagnose: response too short");
    }
    if (response[pt.frame][pt.output] != pt.expected) observed.push_back(p);
  }
  if (observed.empty()) return {};

  std::vector<Candidate> candidates;
  for (std::size_t fi = 0; fi < fault_count_; ++fi) {
    Candidate c{fi, 0, 0};
    for (std::size_t p : observed) {
      if (can_mismatch(fi, p)) {
        ++c.explained;
      } else {
        ++c.contradicted;
      }
    }
    if (c.contradicted == 0) candidates.push_back(c);
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.explained != b.explained) return a.explained > b.explained;
              return a.fault_index < b.fault_index;
            });
  return candidates;
}

}  // namespace motsim
