#ifndef MOTSIM_CORE_HYBRID_SIM_H
#define MOTSIM_CORE_HYBRID_SIM_H

#include <cstdint>
#include <optional>
#include <vector>

#include "analysis/static_xred.h"
#include "analysis/trim.h"
#include "bdd/bdd.h"
#include "core/checkpoint.h"
#include "core/progress.h"
#include "core/sym_fault_sim.h"
#include "faults/fault.h"
#include "logic/val3.h"
#include "sim3/fault_simulator.h"

namespace motsim {

namespace obs {
struct Telemetry;  // obs/telemetry.h
}

/// Configuration of the hybrid fault simulator.
///
/// Compatibility note: new code should prefer the flat SimOptions
/// (core/options.h) and its to_hybrid_config() conversion; this struct
/// remains the engine-level representation and a thin wrapper for
/// existing callers.
struct HybridConfig {
  Strategy strategy = Strategy::Mot;
  /// Placement of the x/y state variables (see VarLayout).
  VarLayout layout = VarLayout::Interleaved;
  /// Soft space limit checked after each symbolic frame (the paper
  /// uses 30,000 OBDD nodes); exceeding it triggers a three-valued
  /// window.
  std::size_t node_limit = 30000;
  /// Length of a three-valued fallback window, in frames.
  std::size_t fallback_frames = 8;
  /// Mid-frame abort threshold = node_limit * hard_limit_factor; a
  /// single frame whose intermediate OBDDs blow past this aborts the
  /// frame and redoes it three-valued.
  std::size_t hard_limit_factor = 8;
  /// Checkpoint-synchronization interval in frames (0 = off, the
  /// historical behaviour). Every `checkpoint_interval` completed
  /// frames the engine brings itself into three-valued-representable
  /// form: inside a fallback window the state already is; in symbolic
  /// mode it converts the machine state to three-valued logic and
  /// immediately re-enters symbolic mode (unknown bits re-seeded with
  /// state variables, every D̃ restarted at constant 1 — the paper's
  /// fallback re-entry with a zero-length window). The snapshot is
  /// handed to the CheckpointSink, if any. The synchronization happens
  /// whether or not a sink listens, so a run's results depend only on
  /// this configuration — which is what makes a resumed run
  /// bit-identical to an uninterrupted one. All claims stay sound
  /// (state sets only grow), but like fallback windows a sync can
  /// lose symbolic cross-frame correlations, so coverage with
  /// checkpointing enabled is a (typically equal) lower bound on the
  /// K=0 run.
  std::size_t checkpoint_interval = 0;
  /// Tuning of the underlying BDD manager (the hard limit field is
  /// overridden from node_limit/hard_limit_factor).
  bdd::BddConfig bdd;
  /// Three-valued engine driving the fallback windows (see
  /// sim3/fault_simulator.h). Both backends are bit-identical by
  /// contract, so this is a pure performance knob; it is excluded from
  /// store fingerprints and a checkpointed run may resume under either.
  Sim3Backend sim3_backend = default_sim3_backend();
  /// Execution-redundancy trimming (docs/ANALYSIS.md): skip the
  /// symbolic propagation of provably quiescent fault-frames, park
  /// SOT/rMOT faults past their static activation horizon, and serve
  /// quiescent MOT frames from the shared fault-free equality product.
  /// Like sim3_backend this is a pure performance knob — verdicts,
  /// detection frames and D̃ functions are bit-identical either way —
  /// so it is likewise excluded from store fingerprints. On by default.
  bool trim = true;
  /// S-graph synchronization-depth pass (docs/ANALYSIS.md pass 6):
  /// once the frame index passes a fault's observation horizon —
  /// relative to the frame at which the current symbolic state
  /// variables were seeded — its rMOT/MOT updates run in downgraded,
  /// SOT-equivalent form (the per-frame equality products collapse).
  /// Another pure performance knob, bit-identical by OBDD canonicity
  /// and likewise excluded from store fingerprints; the manifest still
  /// records it (opt_sgraph) because the parallel shard partition
  /// folds horizons into the cluster order. On by default.
  bool sgraph = true;
};

/// Result of a hybrid run.
struct HybridResult {
  std::vector<FaultStatus> status;
  std::vector<std::uint32_t> detect_frame;  ///< 1-based; 0 = never
  std::size_t detected_count = 0;
  /// True when at least one three-valued window ran — the asterisk in
  /// the paper's Tables II/III (coverage may then be inexact).
  bool used_fallback = false;
  std::size_t fallback_windows = 0;
  std::size_t symbolic_frames = 0;
  std::size_t three_valued_frames = 0;
  std::size_t peak_live_nodes = 0;
  /// Checkpoint synchronizations performed (symbolic-mode re-seeds at
  /// checkpoint boundaries; window-mode checkpoints do not sync).
  std::size_t checkpoint_syncs = 0;
  /// Trimming telemetry (zero when HybridConfig::trim is off): symbolic
  /// fault-frames whose propagation was skipped (quiescent or parked),
  /// faults parked past their static activation horizon, and MOT
  /// fault-frames served by the shared fault-free equality product.
  std::uint64_t frames_skipped = 0;
  std::uint64_t faults_terminated_early = 0;
  std::uint64_t faultfree_evals_shared = 0;
  /// S-graph telemetry (zero when HybridConfig::sgraph is off): fault
  /// downgrade events — a fault counts once per symbolic epoch in
  /// which its observation horizon passed (re-seeding the state
  /// variables restarts the clock, so a fault may re-downgrade after
  /// every fallback window or checkpoint sync).
  std::uint64_t mot_downgrades = 0;
};

/// Hybrid fault simulator (paper Sections I and IV.A, following [8]):
/// symbolic simulation under the configured observation strategy, with
/// bounded OBDD space. When the live node count exceeds the limit the
/// simulator converts machine state to three-valued logic, simulates a
/// few frames with the conventional event-driven simulator (still
/// detecting and dropping faults), then re-enters symbolic mode:
/// unknown state bits are re-seeded with state variables and every
/// detection function D̃ restarts at constant 1. All claims made in
/// fallback and after resumption remain sound — the represented state
/// sets only ever grow.
class HybridFaultSim {
 public:
  HybridFaultSim(const Netlist& netlist, std::vector<Fault> faults,
                 HybridConfig config = {});

  /// Pre-classifies faults; non-Undetected entries are not simulated.
  void set_initial_status(std::vector<FaultStatus> status);

  /// Observer for the run (see ProgressSink). Called from the thread
  /// that executes run(); nullptr (the default) keeps the hot path
  /// free of everything but one predictable branch per event.
  void set_progress(ProgressSink* sink) noexcept { progress_ = sink; }

  /// Telemetry context for the run (see obs/telemetry.h): symbolic /
  /// fallback mode timers and spans, frame counters, re-seeded state
  /// bits and the BDD manager's operation statistics. nullptr (the
  /// default) costs one branch per frame. Called from the thread that
  /// executes run().
  void set_telemetry(obs::Telemetry* telemetry) noexcept {
    telemetry_ = telemetry;
  }

  /// Receiver of checkpoint snapshots (see core/checkpoint.h); only
  /// consulted when config.checkpoint_interval != 0. Called from the
  /// thread that executes run(). Emitted chunk ids are 0 and fault
  /// indices are this fault list's (the parallel driver translates).
  void set_checkpoint_sink(CheckpointSink* sink) noexcept {
    checkpoint_ = sink;
  }

  /// Every-frame constant nets the symbolic true-value simulator may
  /// tie to constant OBDDs (ImplicationEngine::tied_constants; empty =
  /// none). By canonicity the tied functions are what evaluation would
  /// produce anyway, so results are bit-identical — tying only skips
  /// the intermediate apply() work. The vector is validated by
  /// SymTrueValueSim::set_tied_constants when run() starts.
  void set_tied_constants(std::vector<ConstVal> tied) {
    tied_ = std::move(tied);
  }

  /// Supplies a pre-built trimming plan (aligned with this fault
  /// list). Used by the pipeline to hand down the implication-enriched
  /// plan and by the parallel driver to slice one global plan per
  /// chunk; without it the engine builds the structural plan itself
  /// when config.trim is on. Ignored when config.trim is off.
  void set_trim_plan(TrimPlan plan);

  /// Supplies a pre-built s-graph plan (aligned with this fault
  /// list); same contract as set_trim_plan but for the observation
  /// horizons. Ignored when config.sgraph is off.
  void set_sgraph_plan(SgraphPlan plan);

  /// Resumes a previous run from a snapshot this engine emitted:
  /// run() starts at frame `ck.frame` in the recorded mode, with
  /// statuses, detection frames and per-fault state divergences
  /// restored. Replaces any set_initial_status. With the same
  /// configuration (same checkpoint_interval in particular) the
  /// resumed run's result is bit-identical to the uninterrupted run.
  void set_resume(ChunkCheckpoint checkpoint);

  [[nodiscard]] HybridResult run(
      const std::vector<std::vector<Val3>>& sequence);

 private:
  const Netlist* netlist_;
  std::vector<Fault> faults_;
  HybridConfig config_;
  std::vector<FaultStatus> initial_status_;
  ProgressSink* progress_ = nullptr;
  CheckpointSink* checkpoint_ = nullptr;
  obs::Telemetry* telemetry_ = nullptr;
  std::optional<ChunkCheckpoint> resume_;
  std::vector<ConstVal> tied_;
  std::optional<TrimPlan> trim_plan_;
  std::optional<SgraphPlan> sgraph_plan_;
};

}  // namespace motsim

#endif  // MOTSIM_CORE_HYBRID_SIM_H
