#ifndef MOTSIM_CORE_HYBRID_SIM_H
#define MOTSIM_CORE_HYBRID_SIM_H

#include <cstdint>
#include <vector>

#include "bdd/bdd.h"
#include "core/progress.h"
#include "core/sym_fault_sim.h"
#include "faults/fault.h"
#include "logic/val3.h"

namespace motsim {

/// Configuration of the hybrid fault simulator.
///
/// Compatibility note: new code should prefer the flat SimOptions
/// (core/options.h) and its to_hybrid_config() conversion; this struct
/// remains the engine-level representation and a thin wrapper for
/// existing callers.
struct HybridConfig {
  Strategy strategy = Strategy::Mot;
  /// Placement of the x/y state variables (see VarLayout).
  VarLayout layout = VarLayout::Interleaved;
  /// Soft space limit checked after each symbolic frame (the paper
  /// uses 30,000 OBDD nodes); exceeding it triggers a three-valued
  /// window.
  std::size_t node_limit = 30000;
  /// Length of a three-valued fallback window, in frames.
  std::size_t fallback_frames = 8;
  /// Mid-frame abort threshold = node_limit * hard_limit_factor; a
  /// single frame whose intermediate OBDDs blow past this aborts the
  /// frame and redoes it three-valued.
  std::size_t hard_limit_factor = 8;
  /// Tuning of the underlying BDD manager (the hard limit field is
  /// overridden from node_limit/hard_limit_factor).
  bdd::BddConfig bdd;
};

/// Result of a hybrid run.
struct HybridResult {
  std::vector<FaultStatus> status;
  std::vector<std::uint32_t> detect_frame;  ///< 1-based; 0 = never
  std::size_t detected_count = 0;
  /// True when at least one three-valued window ran — the asterisk in
  /// the paper's Tables II/III (coverage may then be inexact).
  bool used_fallback = false;
  std::size_t fallback_windows = 0;
  std::size_t symbolic_frames = 0;
  std::size_t three_valued_frames = 0;
  std::size_t peak_live_nodes = 0;
};

/// Hybrid fault simulator (paper Sections I and IV.A, following [8]):
/// symbolic simulation under the configured observation strategy, with
/// bounded OBDD space. When the live node count exceeds the limit the
/// simulator converts machine state to three-valued logic, simulates a
/// few frames with the conventional event-driven simulator (still
/// detecting and dropping faults), then re-enters symbolic mode:
/// unknown state bits are re-seeded with state variables and every
/// detection function D̃ restarts at constant 1. All claims made in
/// fallback and after resumption remain sound — the represented state
/// sets only ever grow.
class HybridFaultSim {
 public:
  HybridFaultSim(const Netlist& netlist, std::vector<Fault> faults,
                 HybridConfig config = {});

  /// Pre-classifies faults; non-Undetected entries are not simulated.
  void set_initial_status(std::vector<FaultStatus> status);

  /// Observer for the run (see ProgressSink). Called from the thread
  /// that executes run(); nullptr (the default) keeps the hot path
  /// free of everything but one predictable branch per event.
  void set_progress(ProgressSink* sink) noexcept { progress_ = sink; }

  [[nodiscard]] HybridResult run(
      const std::vector<std::vector<Val3>>& sequence);

 private:
  const Netlist* netlist_;
  std::vector<Fault> faults_;
  HybridConfig config_;
  std::vector<FaultStatus> initial_status_;
  ProgressSink* progress_ = nullptr;
};

}  // namespace motsim

#endif  // MOTSIM_CORE_HYBRID_SIM_H
