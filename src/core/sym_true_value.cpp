#include "core/sym_true_value.h"

#include <stdexcept>

namespace motsim {

std::vector<bdd::VarIndex> StateVars::x_to_y_mapping() const {
  std::vector<bdd::VarIndex> mapping(var_count());
  for (std::size_t i = 0; i < m_; ++i) {
    mapping[x(i)] = y(i);
    mapping[y(i)] = y(i);  // y variables stay put
  }
  return mapping;
}

std::vector<bdd::VarIndex> StateVars::x_vars() const {
  std::vector<bdd::VarIndex> out(m_);
  for (std::size_t i = 0; i < m_; ++i) out[i] = x(i);
  return out;
}

std::vector<bdd::VarIndex> StateVars::y_vars() const {
  std::vector<bdd::VarIndex> out(m_);
  for (std::size_t i = 0; i < m_; ++i) out[i] = y(i);
  return out;
}

SymTrueValueSim::SymTrueValueSim(const Netlist& netlist, bdd::BddManager& mgr,
                                 const StateVars& vars)
    : netlist_(&netlist), mgr_(&mgr), vars_(vars) {
  if (!netlist.finalized()) {
    throw std::logic_error("SymTrueValueSim requires a finalized netlist");
  }
  if (vars.dff_count() != netlist.dff_count()) {
    throw std::invalid_argument("StateVars plan does not match the netlist");
  }
  mgr.ensure_vars(vars.var_count());
  values_.assign(netlist.node_count(), mgr.zero());
  reset_symbolic();
}

void SymTrueValueSim::reset_symbolic() {
  state_.clear();
  state_.reserve(netlist_->dff_count());
  for (std::size_t i = 0; i < netlist_->dff_count(); ++i) {
    state_.push_back(mgr_->var(vars_.x(i)));
  }
}

void SymTrueValueSim::set_state(std::vector<bdd::Bdd> state) {
  if (state.size() != netlist_->dff_count()) {
    throw std::invalid_argument("set_state: wrong state width");
  }
  state_ = std::move(state);
}

std::vector<Val3> SymTrueValueSim::state_as_val3() const {
  std::vector<Val3> out;
  out.reserve(state_.size());
  for (const bdd::Bdd& b : state_) {
    if (b.is_zero()) {
      out.push_back(Val3::Zero);
    } else if (b.is_one()) {
      out.push_back(Val3::One);
    } else {
      out.push_back(Val3::X);
    }
  }
  return out;
}

void SymTrueValueSim::set_tied_constants(std::vector<ConstVal> tied) {
  if (!tied.empty() && tied.size() != netlist_->node_count()) {
    throw std::invalid_argument("set_tied_constants: wrong vector width");
  }
  for (std::size_t n = 0; n < tied.size(); ++n) {
    if (tied[n] != ConstVal::Unknown &&
        is_frame_input(netlist_->type(static_cast<NodeIndex>(n)))) {
      throw std::invalid_argument(
          "set_tied_constants: frame inputs cannot be tied");
    }
  }
  tied_ = std::move(tied);
}

void SymTrueValueSim::release() {
  for (bdd::Bdd& b : values_) b = bdd::Bdd();
  for (bdd::Bdd& b : state_) b = bdd::Bdd();
}

std::vector<bdd::Bdd> SymTrueValueSim::step(const std::vector<Val3>& inputs) {
  const Netlist& nl = *netlist_;
  if (inputs.size() != nl.input_count()) {
    throw std::invalid_argument("step: wrong input vector width");
  }

  // Frame inputs: binary test-vector values and the symbolic state.
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    if (!is_binary(inputs[i])) {
      throw std::invalid_argument(
          "symbolic simulation requires fully specified input vectors");
    }
    values_[nl.inputs()[i]] = mgr_->constant(inputs[i] == Val3::One);
  }
  for (std::size_t i = 0; i < nl.dffs().size(); ++i) {
    values_[nl.dffs()[i]] = state_[i];
  }

  for (NodeIndex n : nl.topo_order()) {
    const Gate& g = nl.gate(n);
    if (is_frame_input(g.type)) {
      if (g.type == GateType::Const0) values_[n] = mgr_->zero();
      if (g.type == GateType::Const1) values_[n] = mgr_->one();
      continue;
    }
    if (!tied_.empty() && tied_[n] != ConstVal::Unknown) {
      values_[n] = mgr_->constant(tied_[n] == ConstVal::One);
      continue;
    }
    values_[n] = eval_gate_sym(*mgr_, g.type, g.fanins.size(),
                               [&](std::size_t i) -> const bdd::Bdd& {
                                 return values_[g.fanins[i]];
                               });
  }

  for (std::size_t i = 0; i < nl.dffs().size(); ++i) {
    state_[i] = values_[nl.gate(nl.dffs()[i]).fanins[0]];
  }

  return outputs();
}

std::vector<bdd::Bdd> SymTrueValueSim::outputs() const {
  std::vector<bdd::Bdd> out;
  out.reserve(netlist_->outputs().size());
  for (NodeIndex n : netlist_->outputs()) out.push_back(values_[n]);
  return out;
}

}  // namespace motsim
