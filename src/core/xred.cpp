#include "core/xred.h"

#include <stdexcept>

#include "circuit/ffr.h"
#include "sim3/good_sim3.h"

namespace motsim {

XRedResult::XRedResult(SiteTable sites, std::vector<Val4> ix,
                       std::vector<std::uint8_t> ob)
    : sites_(std::move(sites)), ix_(std::move(ix)), ob_(std::move(ob)) {}

bool XRedResult::is_x_redundant(const Fault& f) const {
  const std::size_t site = sites_.site_of(f.site);
  const Val4 v = ix_[site];
  if (ob_[site] == 0) return true;
  if (v == Val4::X) return true;
  // Activation: a stuck-at-0 fault needs the lead to carry 1 somewhere
  // in the fault-free simulation, and vice versa.
  if (!f.stuck_value && !saw_one(v)) return true;
  if (f.stuck_value && !saw_zero(v)) return true;
  return false;
}

std::size_t XRedResult::count_x_redundant(
    const std::vector<Fault>& faults) const {
  std::size_t n = 0;
  for (const Fault& f : faults) {
    if (is_x_redundant(f)) ++n;
  }
  return n;
}

std::vector<FaultStatus> XRedResult::classify(
    const std::vector<Fault>& faults) const {
  std::vector<FaultStatus> status(faults.size(), FaultStatus::Undetected);
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (is_x_redundant(faults[i])) status[i] = FaultStatus::XRedundant;
  }
  return status;
}

XRedResult run_id_x_red(const Netlist& nl,
                        const std::vector<std::vector<Val3>>& sequence,
                        const XRedOptions& options) {
  if (!nl.finalized()) {
    throw std::logic_error("run_id_x_red requires a finalized netlist");
  }
  const SiteTable sites(nl);
  std::vector<Val4> ix(sites.site_count(), Val4::X);

  // ---- Step 1: true-value simulation folded into I_X ------------------
  GoodSim3 good(nl);
  for (const auto& vec : sequence) {
    good.step(vec);
    const std::vector<Val3>& values = good.values();
    for (NodeIndex n = 0; n < nl.node_count(); ++n) {
      ix[sites.stem_site(n)] = accumulate(ix[sites.stem_site(n)], values[n]);
    }
  }
  // Branches start with their source stem's summary.
  for (NodeIndex n = 0; n < nl.node_count(); ++n) {
    const Gate& g = nl.gate(n);
    for (std::uint32_t p = 0; p < g.fanins.size(); ++p) {
      ix[sites.branch_site(n, p)] = ix[sites.stem_site(g.fanins[p])];
    }
  }

  // ---- Step 2: iterated backward {X} pass -----------------------------
  // Reverse topological sweeps until the fixpoint: consumers first, so
  // one sweep pushes {X} from outputs toward inputs; the flip-flop rule
  // (Q-stem {X} lowers the D-branch) couples consecutive frames and is
  // what makes iteration necessary.
  const auto& topo = nl.topo_order();
  bool changed = options.backward_pass;
  while (changed) {
    changed = false;
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
      const NodeIndex n = *it;

      // Stem rule: a non-PO stem whose every branch is {X} — or that
      // has no sink at all — can never be observed.
      const std::size_t stem = sites.stem_site(n);
      if (!nl.is_output(n) && ix[stem] != Val4::X) {
        bool all_x = true;
        for (const FanoutRef& fo : nl.fanouts(n)) {
          if (ix[sites.branch_site(fo.node, fo.pin)] != Val4::X) {
            all_x = false;
            break;
          }
        }
        if (all_x) {
          ix[stem] = Val4::X;
          changed = true;
        }
      }

      // Gate rule (covers flip-flops too): if the output stem is {X},
      // the input branches cannot contribute an observable value.
      if (ix[stem] == Val4::X) {
        const Gate& g = nl.gate(n);
        for (std::uint32_t p = 0; p < g.fanins.size(); ++p) {
          const std::size_t branch = sites.branch_site(n, p);
          if (ix[branch] != Val4::X) {
            ix[branch] = Val4::X;
            changed = true;
          }
        }
      }
    }
  }

  // ---- Step 3: observability inside fanout-free regions ---------------
  std::vector<std::uint8_t> ob(sites.site_count(), 1);
  if (!options.observability) {
    return XRedResult(sites, std::move(ix), std::move(ob));
  }
  const FanoutFreeRegions regions(nl);

  // Region heads: observable at the region output iff not {X}.
  for (NodeIndex head : regions.heads()) {
    ob[sites.stem_site(head)] =
        ix[sites.stem_site(head)] == Val4::X ? 0 : 1;
  }

  for (NodeIndex head : regions.heads()) {
    for (NodeIndex n : regions.members_backward(head)) {
      const Gate& g = nl.gate(n);
      if (is_frame_input(g.type) || g.type == GateType::Dff) continue;
      const bool out_ob = ob[sites.stem_site(n)] != 0;
      for (std::uint32_t p = 0; p < g.fanins.size(); ++p) {
        bool in_ob = out_ob;
        if (in_ob) {
          switch (g.type) {
            case GateType::And:
            case GateType::Nand:
              // Siblings must each assume the non-controlling value 1.
              for (std::uint32_t q = 0; in_ob && q < g.fanins.size(); ++q) {
                if (q != p && !saw_one(ix[sites.branch_site(n, q)])) {
                  in_ob = false;
                }
              }
              break;
            case GateType::Or:
            case GateType::Nor:
              // Siblings must each assume the non-controlling value 0.
              for (std::uint32_t q = 0; in_ob && q < g.fanins.size(); ++q) {
                if (q != p && !saw_zero(ix[sites.branch_site(n, q)])) {
                  in_ob = false;
                }
              }
              break;
            case GateType::Xor:
            case GateType::Xnor:
              // A sibling that never goes binary blocks propagation.
              for (std::uint32_t q = 0; in_ob && q < g.fanins.size(); ++q) {
                if (q != p && ix[sites.branch_site(n, q)] == Val4::X) {
                  in_ob = false;
                }
              }
              break;
            default:
              break;  // BUF/NOT: inherits output observability
          }
        }
        ob[sites.branch_site(n, p)] = in_ob ? 1 : 0;
        // A fanout-free source net is the same lead as this branch.
        const NodeIndex src = g.fanins[p];
        if (nl.fanouts(src).size() == 1 && !nl.is_output(src)) {
          ob[sites.stem_site(src)] = in_ob ? 1 : 0;
        }
      }
    }
  }

  return XRedResult(sites, std::move(ix), std::move(ob));
}

}  // namespace motsim
