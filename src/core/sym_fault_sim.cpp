#include "core/sym_fault_sim.h"

#include <stdexcept>

namespace motsim {

using bdd::Bdd;

const char* to_cstring(Strategy s) noexcept {
  switch (s) {
    case Strategy::Sot:
      return "SOT";
    case Strategy::Rmot:
      return "rMOT";
    case Strategy::Mot:
      return "MOT";
  }
  return "?";
}

FaultStatus detected_status(Strategy s) noexcept {
  switch (s) {
    case Strategy::Sot:
      return FaultStatus::DetectedSot;
    case Strategy::Rmot:
      return FaultStatus::DetectedRmot;
    default:
      return FaultStatus::DetectedMot;
  }
}

// ---------------------------------------------------------------------------
// SymFrameContext
// ---------------------------------------------------------------------------

SymFrameContext::SymFrameContext(const std::vector<Bdd>& good_values,
                                 const std::vector<Bdd>& good_next_state,
                                 std::size_t output_count)
    : good_values_(&good_values),
      good_next_state_(&good_next_state),
      out_y_(output_count),
      eq_term_(output_count) {}

const Bdd& SymFrameContext::good_output_y(
    std::size_t j, const Bdd& good_out, bdd::BddManager& mgr,
    const std::vector<bdd::VarIndex>& x2y) {
  if (out_y_[j].is_null()) out_y_[j] = mgr.rename(good_out, x2y);
  return out_y_[j];
}

const Bdd& SymFrameContext::good_eq_term(
    std::size_t j, const Bdd& good_out, bdd::BddManager& mgr,
    const std::vector<bdd::VarIndex>& x2y) {
  if (eq_term_[j].is_null()) {
    eq_term_[j] = good_out.xnor(good_output_y(j, good_out, mgr, x2y));
  }
  return eq_term_[j];
}

const Bdd& SymFrameContext::frame_eq_product(
    const Netlist& netlist, bdd::BddManager& mgr,
    const std::vector<bdd::VarIndex>& x2y) {
  if (eq_product_.is_null()) {
    const std::vector<Bdd>& good = *good_values_;
    const auto& outputs = netlist.outputs();
    // Never zero: every assignment with y == x satisfies each term.
    Bdd p = mgr.one();
    for (std::size_t j = 0; j < outputs.size(); ++j) {
      const Bdd& gv = good[outputs[j]];
      if (gv.is_const()) continue;  // [b == b] == 1
      p &= good_eq_term(j, gv, mgr, x2y);
    }
    eq_product_ = p;
  }
  return eq_product_;
}

// ---------------------------------------------------------------------------
// SymFaultPropagator
// ---------------------------------------------------------------------------

SymFaultPropagator::SymFaultPropagator(const Netlist& netlist,
                                       bdd::BddManager& mgr,
                                       const StateVars& vars)
    : netlist_(&netlist),
      mgr_(&mgr),
      vars_(vars),
      x2y_(vars.x_to_y_mapping()),
      scratch_val_(netlist.node_count()),
      scratch_stamp_(netlist.node_count(), 0),
      queue_(netlist) {
  mgr.ensure_vars(vars.var_count());
}

const Bdd& SymFaultPropagator::fval(NodeIndex node,
                                    const std::vector<Bdd>& good) const {
  return scratch_stamp_[node] == stamp_ ? scratch_val_[node] : good[node];
}

bool SymFaultPropagator::quiescent(
    const Fault& fault,
    const std::vector<std::pair<std::uint32_t, Bdd>>& state_diff,
    const std::vector<Bdd>& good) const {
  if (!trim_ || !state_diff.empty()) return false;
  // With no stored state divergence, the faulty machine can only
  // diverge this frame through the fault site itself; when the
  // activation net's fault-free value is the constant stuck value (for
  // every power-up state — the BDD is the constant node), forcing the
  // stuck value changes nothing anywhere. Because primary inputs are
  // concrete per frame, input-cone nets have constant good values and
  // this fires far beyond statically tied nets.
  const NodeIndex act = activation_node(*netlist_, fault);
  if (act == kNoNode) return false;
  const Bdd& av = good[act];
  return av.is_const() && av.is_one() == fault.stuck_value;
}

void SymFaultPropagator::propagate(
    const Fault& fault, const Bdd& sv,
    const std::vector<std::pair<std::uint32_t, Bdd>>& state_diff,
    const std::vector<Bdd>& good) {
  const Netlist& nl = *netlist_;

  ++stamp_;
  changed_.clear();

  auto set_fval = [&](NodeIndex n, const Bdd& v) {
    if (scratch_stamp_[n] != stamp_) {
      scratch_stamp_[n] = stamp_;
      changed_.push_back(n);
    }
    scratch_val_[n] = v;
  };

  auto enqueue_fanouts = [&](NodeIndex n) {
    for (const FanoutRef& fo : nl.fanouts(n)) {
      if (nl.type(fo.node) != GateType::Dff) queue_.push(fo.node);
    }
  };

  // Seed 1: diverging present-state bits (the flip-flop nodes carry
  // the *present* state as frame inputs in the good-value vector).
  for (const auto& [pos, v] : state_diff) {
    const NodeIndex dff = nl.dffs()[pos];
    set_fval(dff, v);
    enqueue_fanouts(dff);
  }

  // Seed 2: the fault site.
  const NodeIndex site_node = fault.site.node;
  if (fault.site.is_stem()) {
    const bool diverges = fval(site_node, good) != sv;
    set_fval(site_node, sv);
    if (diverges) enqueue_fanouts(site_node);
  } else if (nl.type(site_node) != GateType::Dff) {
    const NodeIndex src = nl.gate(site_node).fanins[fault.site.pin];
    if (fval(src, good) != sv) queue_.push(site_node);
  }

  // Propagate divergence in level order.
  for (NodeIndex n = queue_.pop(); n != kNoNode; n = queue_.pop()) {
    if (fault.site.is_stem() && n == site_node) continue;  // output pinned
    const Gate& g = nl.gate(n);
    const bool branch_here = !fault.site.is_stem() && n == site_node;
    const Bdd newv = eval_gate_sym(
        *mgr_, g.type, g.fanins.size(), [&](std::size_t i) -> const Bdd& {
          if (branch_here && i == fault.site.pin) return sv;
          return fval(g.fanins[i], good);
        });
    if (newv != fval(n, good)) {
      set_fval(n, newv);
      enqueue_fanouts(n);
    }
  }
}

bool SymFaultPropagator::detect_sot(const std::vector<Bdd>& good) const {
  // Both responses constant and opposite (paper IV.A case 1).
  const Netlist& nl = *netlist_;
  for (NodeIndex n : changed_) {
    if (!nl.is_output(n)) continue;
    const Bdd& gv = good[n];
    const Bdd& fv = scratch_val_[n];
    if (gv.is_const() && fv.is_const() && gv != fv) return true;
  }
  return false;
}

int SymFaultPropagator::scan_const_divergence(
    const std::vector<Bdd>& good) const {
  // Past a fault's observation horizon, every output it can reach is
  // a function of primary inputs alone in BOTH machines — a constant
  // BDD under the frame's concrete inputs (the fault only removes
  // s-graph edges, so faulty synchronization depths never exceed the
  // fault-free ones). Propagation never writes outside the fault's
  // cone, so scanning the changed outputs covers every possible
  // divergence.
  int found = 0;
  const Netlist& nl = *netlist_;
  for (NodeIndex n : changed_) {
    if (!nl.is_output(n)) continue;
    const Bdd& gv = good[n];
    const Bdd& fv = scratch_val_[n];
    if (fv == gv) continue;
    if (!gv.is_const() || !fv.is_const()) return -1;
    found = 1;
  }
  return found;
}

bool SymFaultPropagator::update_rmot(Bdd& detect,
                                     const std::vector<Bdd>& good) {
  // Accumulate over diverged outputs whose fault-free value is
  // constant (paper IV.A case 2); undiverged outputs contribute the
  // unit term.
  const Netlist& nl = *netlist_;
  for (NodeIndex n : changed_) {
    if (!nl.is_output(n) || !good[n].is_const()) continue;
    const Bdd& fv = scratch_val_[n];
    if (fv == good[n]) continue;
    const Bdd term = good[n].is_one() ? fv : !fv;
    detect &= term;
    if (detect.is_zero()) return true;
  }
  return false;
}

bool SymFaultPropagator::update_mot(Bdd& detect, SymFrameContext& ctx) {
  // All outputs contribute [o(x,t) == o^f(y,t)] (paper IV.A case 3);
  // the faulty x-based response is mapped to the independent initial
  // state y by the order-preserving rename.
  const Netlist& nl = *netlist_;
  const std::vector<Bdd>& good = ctx.good_values();
  const auto& outputs = nl.outputs();
  for (std::size_t j = 0; j < outputs.size(); ++j) {
    const NodeIndex n = outputs[j];
    const bool diverged =
        scratch_stamp_[n] == stamp_ && scratch_val_[n] != good[n];
    Bdd term;
    if (diverged) {
      const Bdd of_y = mgr_->rename(scratch_val_[n], x2y_);
      term = good[n].xnor(of_y);
    } else if (good[n].is_const()) {
      continue;  // [b == b] == 1
    } else {
      term = ctx.good_eq_term(j, good[n], *mgr_, x2y_);
    }
    detect &= term;
    if (detect.is_zero()) return true;
  }
  return false;
}

void SymFaultPropagator::latch_diffs(
    const Fault& fault, const Bdd& sv, SymFrameContext& ctx,
    std::vector<std::pair<std::uint32_t, Bdd>>& out) {
  const Netlist& nl = *netlist_;
  const std::vector<Bdd>& good = ctx.good_values();
  const std::vector<Bdd>& good_next = ctx.good_next_state();
  out.clear();
  for (std::uint32_t pos = 0; pos < nl.dffs().size(); ++pos) {
    const NodeIndex dff = nl.dffs()[pos];
    const NodeIndex d = nl.gate(dff).fanins[0];
    Bdd fv = fval(d, good);
    if (!fault.site.is_stem() && fault.site.node == dff) fv = sv;
    if (fv != good_next[pos]) out.emplace_back(pos, fv);
  }
}

void SymFaultPropagator::release_scratch() {
  // Releases the scratch handles so dead intermediate functions can be
  // collected; the stamp already invalidates them logically.
  for (NodeIndex n : changed_) scratch_val_[n] = Bdd();
}

bool SymFaultPropagator::step(const Fault& fault, Strategy strategy,
                              SymFaultState& fs, SymFrameContext& ctx,
                              bool downgraded) {
  if (quiescent(fault, fs.state_diff, ctx.good_values())) {
    // Identical machines this frame: propagation, SOT/rMOT detection
    // (both only examine diverged outputs) and latching are no-ops.
    // MOT still owes [o_j(x) == o_j(y)] for every non-constant output;
    // that is exactly the shared frame product, and `zero & t == zero`
    // plus associativity make the result bit-identical to the
    // untrimmed per-output accumulation.
    ++trim_counters_.frames_skipped;
    if (strategy != Strategy::Mot) return false;
    ++trim_counters_.shared_eq_uses;
    fs.detect &= ctx.frame_eq_product(*netlist_, *mgr_, x2y_);
    return fs.detect.is_zero();
  }

  const Bdd sv = mgr_->constant(fault.stuck_value);
  propagate(fault, sv, fs.state_diff, ctx.good_values());

  // Downgraded rMOT/MOT: every reachable output is constant in both
  // machines, so a divergence is a constant-opposite pair — its
  // equality term is the zero function under every strategy. What
  // remains of the full MOT update is the shared product over the
  // still-symbolic (unreachable) outputs. A -1 scan means the horizon
  // precondition failed; fall back to the exact update.
  const int dv = downgraded && strategy != Strategy::Sot
                     ? scan_const_divergence(ctx.good_values())
                     : -1;
  bool detected = false;
  if (dv >= 0) {
    ++sgraph_counters_.downgraded_frames;
    if (dv == 1) {
      fs.detect = mgr_->constant(false);
      detected = true;
    } else if (strategy == Strategy::Mot) {
      fs.detect &= ctx.frame_eq_product(*netlist_, *mgr_, x2y_);
      detected = fs.detect.is_zero();
    }
  } else {
    switch (strategy) {
      case Strategy::Sot:
        detected = detect_sot(ctx.good_values());
        break;
      case Strategy::Rmot:
        detected = update_rmot(fs.detect, ctx.good_values());
        break;
      case Strategy::Mot:
        detected = update_mot(fs.detect, ctx);
        break;
    }
  }
  if (detected) {
    queue_.clear();
    release_scratch();
    return true;
  }

  latch_diffs(fault, sv, ctx, fs.state_diff);
  release_scratch();
  return false;
}

bool SymFaultPropagator::step_multi(const Fault& fault, MultiFaultState& ms,
                                    SymFrameContext& ctx,
                                    std::uint32_t frame, bool downgraded) {
  if (quiescent(fault, ms.state_diff, ctx.good_values())) {
    // Same argument as in step(): only MOT's accumulation survives a
    // quiescent frame, and it collapses to the shared frame product.
    ++trim_counters_.frames_skipped;
    if (!ms.mot_done) {
      ++trim_counters_.shared_eq_uses;
      ms.mot_detect &= ctx.frame_eq_product(*netlist_, *mgr_, x2y_);
      if (ms.mot_detect.is_zero()) {
        ms.mot_done = true;
        ms.mot_frame = frame;
        ms.mot_detect = Bdd();
      }
    }
    return ms.all_done();
  }

  const Bdd sv = mgr_->constant(fault.stuck_value);
  propagate(fault, sv, ms.state_diff, ctx.good_values());

  if (!ms.sot_done && detect_sot(ctx.good_values())) {
    ms.sot_done = true;
    ms.sot_frame = frame;
  }
  // Downgraded rMOT/MOT bookkeeping; see step() for the argument.
  const int dv = downgraded && (!ms.rmot_done || !ms.mot_done)
                     ? scan_const_divergence(ctx.good_values())
                     : -1;
  if (dv >= 0) {
    ++sgraph_counters_.downgraded_frames;
    if (!ms.rmot_done && dv == 1) {
      ms.rmot_done = true;
      ms.rmot_frame = frame;
      ms.rmot_detect = Bdd();
    }
    if (!ms.mot_done) {
      if (dv == 1) {
        ms.mot_done = true;
        ms.mot_frame = frame;
        ms.mot_detect = Bdd();
      } else {
        ms.mot_detect &= ctx.frame_eq_product(*netlist_, *mgr_, x2y_);
        if (ms.mot_detect.is_zero()) {
          ms.mot_done = true;
          ms.mot_frame = frame;
          ms.mot_detect = Bdd();
        }
      }
    }
  } else {
    if (!ms.rmot_done && update_rmot(ms.rmot_detect, ctx.good_values())) {
      ms.rmot_done = true;
      ms.rmot_frame = frame;
      ms.rmot_detect = Bdd();
    }
    if (!ms.mot_done && update_mot(ms.mot_detect, ctx)) {
      ms.mot_done = true;
      ms.mot_frame = frame;
      ms.mot_detect = Bdd();
    }
  }

  if (ms.all_done()) {
    queue_.clear();
    release_scratch();
    return true;
  }
  latch_diffs(fault, sv, ctx, ms.state_diff);
  release_scratch();
  return false;
}

// ---------------------------------------------------------------------------
// SymFaultSim (pure symbolic sequence driver)
// ---------------------------------------------------------------------------

SymFaultSim::SymFaultSim(const Netlist& netlist, std::vector<Fault> faults,
                         Strategy strategy, const bdd::BddConfig& bdd_config,
                         VarLayout layout)
    : netlist_(&netlist),
      faults_(std::move(faults)),
      strategy_(strategy),
      initial_status_(faults_.size(), FaultStatus::Undetected),
      bdd_config_(bdd_config),
      layout_(layout) {
  if (!netlist.finalized()) {
    throw std::logic_error("SymFaultSim requires a finalized netlist");
  }
}

void SymFaultSim::set_initial_status(std::vector<FaultStatus> status) {
  if (status.size() != faults_.size()) {
    throw std::invalid_argument("set_initial_status: wrong size");
  }
  initial_status_ = std::move(status);
}

SymFaultSimResult SymFaultSim::run(
    const std::vector<std::vector<Val3>>& sequence) {
  const Netlist& nl = *netlist_;

  bdd::BddManager mgr(bdd_config_);
  const StateVars vars(nl.dff_count(), layout_);
  SymTrueValueSim good(nl, mgr, vars);
  SymFaultPropagator prop(nl, mgr, vars);
  prop.set_trim(trim_);

  // Static activation horizons for SOT/rMOT parking: once past
  // dead_from with no stored divergence, the fault can never be
  // excited again, so its remaining frames are pure no-ops. MOT never
  // parks (D~ keeps accumulating equality terms). BDD handles of
  // parked faults stay alive so gc pressure matches the untrimmed run.
  TrimPlan plan;
  if (trim_) plan = build_trim_plan(nl, faults_);

  // S-graph observation horizons: frames at which the per-fault
  // rMOT/MOT updates may run in downgraded (SOT-equivalent) form.
  // Vars are seeded once at frame 0 here, so the epoch is 0.
  SgraphPlan splan;
  if (sgraph_) splan = build_sgraph_plan(nl, faults_);

  SymFaultSimResult result;
  result.status = initial_status_;
  result.detect_frame.assign(faults_.size(), 0);
  if (collect_witnesses_) result.witnesses.resize(faults_.size());

  struct Live {
    std::size_t index;
    SymFaultState fs;
    bool parked = false;
    bool downgraded = false;
  };
  std::vector<Live> live;
  for (std::size_t i = 0; i < faults_.size(); ++i) {
    if (initial_status_[i] == FaultStatus::Undetected) {
      live.push_back(Live{i, SymFaultState{mgr.one(), {}}, false, false});
    }
  }

  const FaultStatus det = detected_status(strategy_);
  for (std::size_t t = 0; t < sequence.size() && !live.empty(); ++t) {
    good.step(sequence[t]);
    SymFrameContext ctx(good.values(), good.state(), nl.output_count());

    std::size_t keep = 0;
    for (std::size_t i = 0; i < live.size(); ++i) {
      Live& lf = live[i];
      if (trim_ && strategy_ != Strategy::Mot && !lf.parked &&
          plan.dead_from[lf.index] != 0 &&
          t + 1 >= plan.dead_from[lf.index] && lf.fs.state_diff.empty()) {
        lf.parked = true;
      }
      bool detected = false;
      if (lf.parked) {
        ++result.frames_skipped;
      } else {
        if (sgraph_ && strategy_ != Strategy::Sot && !lf.downgraded &&
            splan.horizon[lf.index] != kInfDepth &&
            t >= splan.horizon[lf.index]) {
          lf.downgraded = true;
          ++result.mot_downgrades;
        }
        detected = prop.step(faults_[lf.index], strategy_, lf.fs, ctx,
                             lf.downgraded);
      }
      if (detected) {
        result.status[lf.index] = det;
        result.detect_frame[lf.index] = static_cast<std::uint32_t>(t + 1);
        ++result.detected_count;
      } else {
        if (keep != i) live[keep] = std::move(live[i]);
        ++keep;
      }
    }
    live.resize(keep);
    mgr.gc();
    result.peak_live_nodes =
        std::max(result.peak_live_nodes, mgr.live_node_count());
  }

  result.frames_skipped += prop.trim_counters().frames_skipped;
  result.faultfree_evals_shared = prop.trim_counters().shared_eq_uses;
  for (const Live& lf : live) {
    if (lf.parked) ++result.faults_terminated_early;
  }

  // Witnesses for the survivors: D~ is nonzero, so a satisfying
  // assignment names a (p, q) pair the test cannot distinguish.
  if (collect_witnesses_ && strategy_ != Strategy::Sot) {
    for (const Live& lf : live) {
      const auto assignment = mgr.pick_one(lf.fs.detect);
      if (!assignment.has_value()) continue;  // defensive; D~ != 0 here
      IndistinguishablePair pair;
      pair.fault_free_state.resize(nl.dff_count());
      pair.faulty_state.resize(nl.dff_count());
      for (std::size_t i = 0; i < nl.dff_count(); ++i) {
        const auto xv = (*assignment)[vars.x(i)];
        const auto yv = strategy_ == Strategy::Mot ? (*assignment)[vars.y(i)]
                                                   : xv;
        // Don't-care bits (-1) may take either value; pick 0.
        pair.faulty_state[i] = strategy_ == Strategy::Mot ? yv == 1 : xv == 1;
        pair.fault_free_state[i] = xv == 1;
        if (strategy_ == Strategy::Rmot) {
          // rMOT's D~ ranges over the faulty initial state only; the
          // fault-free side is reported equal to q by convention.
          pair.fault_free_state[i] = pair.faulty_state[i];
        }
      }
      result.witnesses[lf.index] = std::move(pair);
    }
  }

  return result;
}

// ---------------------------------------------------------------------------
// run_all_strategies (single-pass multi-strategy driver)
// ---------------------------------------------------------------------------

MultiStrategyResult run_all_strategies(
    const Netlist& nl, const std::vector<Fault>& faults,
    const std::vector<std::vector<Val3>>& sequence,
    const bdd::BddConfig& bdd_config, VarLayout layout, bool trim,
    bool sgraph) {
  if (!nl.finalized()) {
    throw std::logic_error("run_all_strategies requires a finalized netlist");
  }

  bdd::BddManager mgr(bdd_config);
  const StateVars vars(nl.dff_count(), layout);
  SymTrueValueSim good(nl, mgr, vars);
  SymFaultPropagator prop(nl, mgr, vars);
  prop.set_trim(trim);

  SgraphPlan splan;
  if (sgraph) splan = build_sgraph_plan(nl, faults);
  std::uint64_t mot_downgrades = 0;

  MultiStrategyResult result;
  for (SymFaultSimResult* r : {&result.sot, &result.rmot, &result.mot}) {
    r->status.assign(faults.size(), FaultStatus::Undetected);
    r->detect_frame.assign(faults.size(), 0);
  }

  struct Live {
    std::size_t index;
    SymFaultPropagator::MultiFaultState ms;
    bool downgraded = false;
  };
  std::vector<Live> live;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    Live lf;
    lf.index = i;
    lf.ms.rmot_detect = mgr.one();
    lf.ms.mot_detect = mgr.one();
    live.push_back(std::move(lf));
  }

  auto record = [&](const Live& lf) {
    const std::size_t i = lf.index;
    if (lf.ms.sot_done && result.sot.detect_frame[i] == 0) {
      result.sot.status[i] = FaultStatus::DetectedSot;
      result.sot.detect_frame[i] = lf.ms.sot_frame;
      ++result.sot.detected_count;
    }
    if (lf.ms.rmot_done && result.rmot.detect_frame[i] == 0) {
      result.rmot.status[i] = FaultStatus::DetectedRmot;
      result.rmot.detect_frame[i] = lf.ms.rmot_frame;
      ++result.rmot.detected_count;
    }
    if (lf.ms.mot_done && result.mot.detect_frame[i] == 0) {
      result.mot.status[i] = FaultStatus::DetectedMot;
      result.mot.detect_frame[i] = lf.ms.mot_frame;
      ++result.mot.detected_count;
    }
  };

  for (std::size_t t = 0; t < sequence.size() && !live.empty(); ++t) {
    good.step(sequence[t]);
    SymFrameContext ctx(good.values(), good.state(), nl.output_count());

    std::size_t keep = 0;
    for (std::size_t i = 0; i < live.size(); ++i) {
      Live& lf = live[i];
      if (sgraph && !lf.downgraded &&
          splan.horizon[lf.index] != kInfDepth &&
          t >= splan.horizon[lf.index]) {
        lf.downgraded = true;
        ++mot_downgrades;
      }
      const bool done = prop.step_multi(
          faults[lf.index], lf.ms, ctx,
          static_cast<std::uint32_t>(t + 1), lf.downgraded);
      record(live[i]);
      if (!done) {
        if (keep != i) live[keep] = std::move(live[i]);
        ++keep;
      }
    }
    live.resize(keep);
    mgr.gc();
    const std::size_t peak = mgr.live_node_count();
    result.sot.peak_live_nodes = std::max(result.sot.peak_live_nodes, peak);
    result.rmot.peak_live_nodes = result.sot.peak_live_nodes;
    result.mot.peak_live_nodes = result.sot.peak_live_nodes;
  }

  // One shared pass, so the trimming telemetry is mirrored like the
  // peak above.
  for (SymFaultSimResult* r : {&result.sot, &result.rmot, &result.mot}) {
    r->frames_skipped = prop.trim_counters().frames_skipped;
    r->faultfree_evals_shared = prop.trim_counters().shared_eq_uses;
    r->mot_downgrades = mot_downgrades;
  }

  return result;
}

}  // namespace motsim
