#ifndef MOTSIM_CORE_XRED_H
#define MOTSIM_CORE_XRED_H

#include <cstdint>
#include <vector>

#include "circuit/netlist.h"
#include "faults/fault.h"
#include "faults/fault_list.h"
#include "logic/val3.h"
#include "logic/val4.h"

namespace motsim {

/// Result of the ID_X-red procedure (paper Section III).
///
/// For every lead (stem and branch, numbered by SiteTable) it exposes
/// the final four-valued I_X summary and the fanout-free-region
/// observability OB, plus the derived per-fault verdict: a fault
/// flagged X-redundant cannot be detected *by the given test sequence*
/// under three-valued logic and the SOT strategy, so the three-valued
/// fault simulator may skip it.
class XRedResult {
 public:
  XRedResult(SiteTable sites, std::vector<Val4> ix,
             std::vector<std::uint8_t> ob);

  /// I_X value of a lead.
  [[nodiscard]] Val4 ix(const FaultSite& s) const {
    return ix_[sites_.site_of(s)];
  }
  /// Observability (inside its fanout-free region) of a lead.
  [[nodiscard]] bool observable(const FaultSite& s) const {
    return ob_[sites_.site_of(s)] != 0;
  }

  /// Step 4's sufficient undetectability condition:
  /// s-a-0 at l is X-redundant if I_X(l) is {X} or {X,0}, or OB(l)=0;
  /// s-a-1 at l is X-redundant if I_X(l) is {X} or {X,1}, or OB(l)=0.
  [[nodiscard]] bool is_x_redundant(const Fault& f) const;

  /// Number of X-redundant faults in `faults`.
  [[nodiscard]] std::size_t count_x_redundant(
      const std::vector<Fault>& faults) const;

  /// Maps a fault list to initial statuses for FaultSim3: XRedundant
  /// where flagged, Undetected otherwise.
  [[nodiscard]] std::vector<FaultStatus> classify(
      const std::vector<Fault>& faults) const;

  [[nodiscard]] const SiteTable& sites() const noexcept { return sites_; }

 private:
  SiteTable sites_;
  std::vector<Val4> ix_;
  std::vector<std::uint8_t> ob_;
};

/// Ablation switches for run_id_x_red (the full procedure enables
/// everything; the ablation benchmark measures each step's
/// contribution).
struct XRedOptions {
  /// Step 2: iterated backward {X} pass.
  bool backward_pass = true;
  /// Step 3: fanout-free-region observability.
  bool observability = true;
};

/// Runs the four steps of ID_X-red for the given test sequence:
///
///  1. three-valued true-value simulation, folded per lead into the
///     four-valued I_X lattice ({X} / {X,0} / {X,1} / {X,0,1});
///  2. iterated backward pass lowering leads to {X} when all paths to
///     a primary or secondary output are blocked by {X} leads
///     (flip-flops close the sequential loop: a D-branch is lowered
///     when the corresponding Q-stem is {X});
///  3. backward observability OB inside each fanout-free region (an
///     AND input is observable only if every sibling ever carries a 1,
///     an OR input only if every sibling ever carries a 0, an XOR
///     input only if no sibling is stuck at {X});
///  4. verdict per fault (see XRedResult::is_x_redundant).
///
/// Run time: O(|C|·|Z|) for step 1 and O(|C|) per backward sweep —
/// negligible next to three-valued fault simulation, which is the
/// point of Table I.
[[nodiscard]] XRedResult run_id_x_red(
    const Netlist& netlist, const std::vector<std::vector<Val3>>& sequence,
    const XRedOptions& options = {});

}  // namespace motsim

#endif  // MOTSIM_CORE_XRED_H
