#include "core/equivalence.h"

#include <algorithm>

#include "core/symbolic_fsm.h"

namespace motsim {

namespace {

using bdd::Bdd;

/// Decodes a satisfying assignment of `diff` into (state, inputs).
void fill_counterexample(const SymbolicFsm& fsm, const Bdd& diff,
                         EquivalenceResult& out) {
  const auto assignment = fsm.manager().pick_one(diff);
  if (!assignment.has_value()) return;
  std::vector<bool> state(fsm.vars().dff_count());
  for (std::size_t i = 0; i < state.size(); ++i) {
    state[i] = (*assignment)[fsm.vars().x(i)] == 1;
  }
  std::vector<bool> inputs(fsm.netlist().input_count());
  for (std::size_t j = 0; j < inputs.size(); ++j) {
    inputs[j] = (*assignment)[fsm.input_var(j)] == 1;
  }
  out.counterexample_state = std::move(state);
  out.counterexample_inputs = std::move(inputs);
}

EquivalenceResult compare(const SymbolicFsm& fa,
                          const std::vector<Bdd>& lambda_b,
                          const std::vector<Bdd>& delta_b) {
  EquivalenceResult result;
  for (std::size_t j = 0; j < fa.netlist().output_count(); ++j) {
    if (fa.lambda(j) != lambda_b[j]) {
      result.reason = "output " + std::to_string(j) + " ('" +
                      fa.netlist().gate(fa.netlist().outputs()[j]).name +
                      "') differs";
      fill_counterexample(fa, fa.lambda(j) ^ lambda_b[j], result);
      return result;
    }
  }
  for (std::size_t i = 0; i < fa.netlist().dff_count(); ++i) {
    if (fa.delta(i) != delta_b[i]) {
      result.reason = "next-state function of flip-flop " +
                      std::to_string(i) + " ('" +
                      fa.netlist().gate(fa.netlist().dffs()[i]).name +
                      "') differs";
      fill_counterexample(fa, fa.delta(i) ^ delta_b[i], result);
      return result;
    }
  }
  result.equivalent = true;
  return result;
}

}  // namespace

EquivalenceResult check_equivalence(const Netlist& a, const Netlist& b) {
  // The general path with nothing tied: both machines share the state
  // variables; b's (separately allocated) input variables are
  // substituted by a's positionally.
  return check_equivalence_with_tied_inputs(a, b, {});
}

EquivalenceResult check_equivalence_with_tied_inputs(
    const Netlist& a, const Netlist& b,
    const std::vector<std::pair<std::size_t, bool>>& tied) {
  EquivalenceResult result;
  if (a.dff_count() != b.dff_count() ||
      a.output_count() != b.output_count() ||
      a.input_count() + tied.size() != b.input_count()) {
    result.reason = "interface mismatch (after tying)";
    return result;
  }

  bdd::BddManager mgr;
  const StateVars vars(a.dff_count());
  const SymbolicFsm fa(a, mgr, vars);
  const SymbolicFsm fb(b, mgr, vars);

  // Restrict b's functions by the tied inputs, then substitute b's
  // free input variables with a's (positional match).
  std::vector<std::size_t> free_inputs;
  for (std::size_t j = 0; j < b.input_count(); ++j) {
    const auto it =
        std::find_if(tied.begin(), tied.end(),
                     [&](const auto& t) { return t.first == j; });
    if (it == tied.end()) free_inputs.push_back(j);
  }

  auto adapt = [&](Bdd f) {
    for (const auto& [pos, value] : tied) {
      f = mgr.restrict_var(f, fb.input_var(pos), value);
    }
    for (std::size_t k = 0; k < free_inputs.size(); ++k) {
      // a's k-th input variable replaces b's k-th free input variable.
      f = mgr.compose(f, fb.input_var(free_inputs[k]),
                      mgr.var(fa.input_var(k)));
    }
    return f;
  };

  std::vector<Bdd> lambda_b;
  for (std::size_t j = 0; j < b.output_count(); ++j) {
    lambda_b.push_back(adapt(fb.lambda(j)));
  }
  std::vector<Bdd> delta_b;
  for (std::size_t i = 0; i < b.dff_count(); ++i) {
    delta_b.push_back(adapt(fb.delta(i)));
  }
  return compare(fa, lambda_b, delta_b);
}

}  // namespace motsim
