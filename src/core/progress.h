#ifndef MOTSIM_CORE_PROGRESS_H
#define MOTSIM_CORE_PROGRESS_H

#include <cstddef>
#include <cstdint>

namespace motsim {

/// Observer interface for a running fault simulation.
///
/// HybridFaultSim and ParallelSymSim accept a ProgressSink pointer and
/// invoke it from the simulation loop; the default (nullptr) costs one
/// branch per event and allocates nothing, so the hot path is
/// unchanged when nobody is listening. Every callback has an empty
/// default body — override only what you need.
///
/// Threading: HybridFaultSim calls the sink from the thread that runs
/// run(). ParallelSymSim serializes all callbacks through one mutex
/// and translates fault indices to the caller's (global) fault list,
/// so a sink never needs its own locking; callbacks from different
/// chunks may interleave in any order between frames.
class ProgressSink {
 public:
  virtual ~ProgressSink() = default;

  /// End of one simulated frame. `frame` is 1-based; `live_nodes` is
  /// the manager's live OBDD count (0 during three-valued windows);
  /// `faults_remaining` counts the faults still undecided in the
  /// reporting engine (per chunk under the parallel driver).
  virtual void on_frame(std::size_t frame, std::size_t live_nodes,
                        std::size_t faults_remaining) {
    (void)frame;
    (void)live_nodes;
    (void)faults_remaining;
  }

  /// The hybrid engine left symbolic mode: a three-valued window of
  /// `window_frames` frames starts at `frame` (1-based, the first
  /// frame simulated three-valued).
  virtual void on_fallback_window(std::size_t frame,
                                  std::size_t window_frames) {
    (void)frame;
    (void)window_frames;
  }

  /// Fault `fault_index` (into the simulated fault list; global under
  /// the parallel driver) was detected at `frame` (1-based).
  virtual void on_fault_detected(std::size_t fault_index,
                                 std::uint32_t frame) {
    (void)fault_index;
    (void)frame;
  }

  /// A pipeline stage finished: `name` is the stage's stable span name
  /// ("stage.analysis", "stage.xred", "stage.sim3", "stage.symbolic" —
  /// see docs/OBSERVABILITY.md), `seconds` its wall-clock duration.
  /// Called from the thread that runs the pipeline, in stage order.
  virtual void on_stage(const char* name, double seconds) {
    (void)name;
    (void)seconds;
  }
};

}  // namespace motsim

#endif  // MOTSIM_CORE_PROGRESS_H
