#ifndef MOTSIM_CORE_PIPELINE_H
#define MOTSIM_CORE_PIPELINE_H

#include <cstdint>
#include <vector>

#include "core/hybrid_sim.h"
#include "core/options.h"
#include "core/progress.h"
#include "faults/fault.h"
#include "faults/report.h"
#include "logic/val3.h"
#include "tpg/sequences.h"

namespace motsim {

/// Configuration of the full fault-simulation pipeline of the paper:
/// ID_X-red -> three-valued simulation -> symbolic simulation of the
/// remainder under the chosen observation strategy.
///
/// Compatibility note: new code should prefer the flat SimOptions
/// (core/options.h); this struct remains as a thin wrapper (and the
/// internal representation) for one release.
struct PipelineConfig {
  /// Run the sequence-independent static analysis before every other
  /// stage (see SimOptions::analysis).
  bool analysis = false;
  /// Run ID_X-red before the three-valued stage (paper Section III).
  bool run_xred = true;
  /// Three-valued fault-simulation backend (sim3/fault_simulator.h).
  /// Both backends are bit-identical by contract, so this is a pure
  /// performance knob.
  Sim3Backend sim3_backend = default_sim3_backend();
  /// Skip the symbolic stage entirely (pure X01 run).
  bool run_symbolic = true;
  /// Worker threads of the symbolic stage: 1 = the serial
  /// HybridFaultSim (exactly the historical path), 0 = one per
  /// hardware thread, N >= 2 = fault-sharded ParallelSymSim. Results
  /// are bit-identical for every N >= 2 and 0; see
  /// core/parallel_sym_sim.h for when they match the serial engine.
  std::size_t threads = 1;
  /// Shard size of the parallel driver (0 = default); ignored when
  /// `threads == 1`.
  std::size_t chunk_size = 0;
  /// Hybrid simulator settings for the symbolic stage; its `strategy`
  /// field selects SOT / rMOT / MOT.
  HybridConfig hybrid;
  /// Telemetry context observing the run (see SimOptions::telemetry);
  /// nullptr = off, one branch per instrumentation site.
  obs::Telemetry* telemetry = nullptr;
};

/// Outcome of run_pipeline. `status` holds the final per-fault
/// classification: X-redundant faults that the symbolic stage
/// subsequently detected carry the symbolic Detected* status.
struct PipelineResult {
  std::vector<FaultStatus> status;
  /// Frame (1-based) at which each fault was detected, aligned with
  /// `status`; 0 = never. Three-valued and symbolic detections both
  /// record their frame, so test-evaluation and diagnosis callers no
  /// longer re-run the simulator to recover detection times.
  std::vector<std::uint32_t> detect_frame;
  /// Faults ID_X-red flagged (before the symbolic stage re-enabled
  /// them). When the static analysis ran, only faults *not* already
  /// statically pruned are counted here — the two buckets never
  /// overlap.
  std::size_t x_redundant = 0;
  /// Faults the static analysis proved undetectable by any sequence
  /// (StaticXRed in `status`). 0 unless `config.analysis` was set.
  std::size_t static_x_redundant = 0;
  /// Faults the implication engine proved untestable by any sequence
  /// (StaticUntestable in `status`; disjoint from static_x_redundant —
  /// StaticXRed wins when both analyses flag a fault). 0 unless
  /// `config.analysis` was set.
  std::size_t static_untestable = 0;
  std::size_t detected_3v = 0;
  std::size_t detected_symbolic = 0;
  /// True if the hybrid simulator used three-valued fallback windows
  /// (the paper's asterisk: symbolic coverage then a lower bound).
  bool used_fallback = false;
  /// True if the symbolic stage was skipped because the sequence
  /// carries X (partially specified) inputs, which only the
  /// three-valued stage supports.
  bool symbolic_skipped_x_inputs = false;
  /// Execution-redundancy trimming counters of the symbolic stage
  /// (docs/ANALYSIS.md; all zero when trimming was off or the stage
  /// did not run): fault-frames whose propagation was skipped, faults
  /// parked once their static activation horizon passed, and MOT
  /// fault-frames served from the shared fault-free equality product.
  std::uint64_t frames_skipped = 0;
  std::uint64_t faults_terminated_early = 0;
  std::uint64_t faultfree_evals_shared = 0;
  /// S-graph pass results (docs/ANALYSIS.md pass 6; zero when
  /// `config.hybrid.sgraph` was off or the symbolic stage did not
  /// run): nontrivial SCCs of the flip-flop dependency graph, and
  /// rMOT/MOT faults downgraded to SOT-equivalent updates once the
  /// frame index passed their observation horizon (one event per
  /// fault per symbolic epoch).
  std::size_t sgraph_sccs = 0;
  std::uint64_t mot_downgrades = 0;
  double seconds_analysis = 0;
  double seconds_xred = 0;
  double seconds_3v = 0;
  double seconds_symbolic = 0;

  [[nodiscard]] CoverageSummary summary() const {
    return CoverageSummary::from_status(status);
  }
};

/// Runs the paper's complete flow on one fault list and test sequence.
///
/// Stage order and semantics follow Section V's experimental protocol:
/// X-redundant faults are skipped by the three-valued stage (that is
/// the whole point of ID_X-red) but handed to the symbolic stage
/// together with the three-valued leftovers — symbolic simulation can
/// detect faults that are undetectable under three-valued logic.
///
/// `progress` (optional) observes the symbolic stage; see ProgressSink
/// for the threading contract under `config.threads != 1`.
///
/// `checkpoint` (optional) receives symbolic-stage snapshots when
/// `config.hybrid.checkpoint_interval != 0` (see core/checkpoint.h);
/// checkpointed *campaigns* — persistence, resume, incremental
/// extension — live in store/campaign.h, which bypasses the
/// three-valued stage for exact resumability.
[[nodiscard]] PipelineResult run_pipeline(const Netlist& netlist,
                                          const std::vector<Fault>& faults,
                                          const TestSequence& sequence,
                                          const PipelineConfig& config = {},
                                          ProgressSink* progress = nullptr,
                                          CheckpointSink* checkpoint = nullptr);

/// SimOptions front door: validates the options (throws
/// std::invalid_argument with the validation message on failure) and
/// runs the pipeline.
[[nodiscard]] PipelineResult run_pipeline(const Netlist& netlist,
                                          const std::vector<Fault>& faults,
                                          const TestSequence& sequence,
                                          const SimOptions& options,
                                          ProgressSink* progress = nullptr,
                                          CheckpointSink* checkpoint = nullptr);

}  // namespace motsim

#endif  // MOTSIM_CORE_PIPELINE_H
