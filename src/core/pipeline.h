#ifndef MOTSIM_CORE_PIPELINE_H
#define MOTSIM_CORE_PIPELINE_H

#include <vector>

#include "core/hybrid_sim.h"
#include "faults/fault.h"
#include "faults/report.h"
#include "logic/val3.h"
#include "tpg/sequences.h"

namespace motsim {

/// Configuration of the full fault-simulation pipeline of the paper:
/// ID_X-red -> three-valued simulation -> symbolic simulation of the
/// remainder under the chosen observation strategy.
struct PipelineConfig {
  /// Run ID_X-red before the three-valued stage (paper Section III).
  bool run_xred = true;
  /// Use the bit-parallel three-valued simulator instead of the
  /// serial event-driven one (identical results).
  bool parallel_sim3 = false;
  /// Skip the symbolic stage entirely (pure X01 run).
  bool run_symbolic = true;
  /// Hybrid simulator settings for the symbolic stage; its `strategy`
  /// field selects SOT / rMOT / MOT.
  HybridConfig hybrid;
};

/// Outcome of run_pipeline. `status` holds the final per-fault
/// classification: X-redundant faults that the symbolic stage
/// subsequently detected carry the symbolic Detected* status.
struct PipelineResult {
  std::vector<FaultStatus> status;
  /// Faults ID_X-red flagged (before the symbolic stage re-enabled
  /// them).
  std::size_t x_redundant = 0;
  std::size_t detected_3v = 0;
  std::size_t detected_symbolic = 0;
  /// True if the hybrid simulator used three-valued fallback windows
  /// (the paper's asterisk: symbolic coverage then a lower bound).
  bool used_fallback = false;
  /// True if the symbolic stage was skipped because the sequence
  /// carries X (partially specified) inputs, which only the
  /// three-valued stage supports.
  bool symbolic_skipped_x_inputs = false;
  double seconds_xred = 0;
  double seconds_3v = 0;
  double seconds_symbolic = 0;

  [[nodiscard]] CoverageSummary summary() const {
    return CoverageSummary::from_status(status);
  }
};

/// Runs the paper's complete flow on one fault list and test sequence.
///
/// Stage order and semantics follow Section V's experimental protocol:
/// X-redundant faults are skipped by the three-valued stage (that is
/// the whole point of ID_X-red) but handed to the symbolic stage
/// together with the three-valued leftovers — symbolic simulation can
/// detect faults that are undetectable under three-valued logic.
[[nodiscard]] PipelineResult run_pipeline(const Netlist& netlist,
                                          const std::vector<Fault>& faults,
                                          const TestSequence& sequence,
                                          const PipelineConfig& config = {});

}  // namespace motsim

#endif  // MOTSIM_CORE_PIPELINE_H
