#ifndef MOTSIM_CORE_PARALLEL_SYM_SIM_H
#define MOTSIM_CORE_PARALLEL_SYM_SIM_H

#include <cstddef>
#include <optional>
#include <vector>

#include "core/checkpoint.h"
#include "core/hybrid_sim.h"
#include "core/progress.h"
#include "faults/fault.h"
#include "logic/val3.h"

namespace motsim {

/// Default shard size of the parallel driver: small enough to load-
/// balance a handful of workers on a ~1k-fault list, large enough that
/// the per-shard fixed cost (BDD manager + symbolic true-value
/// simulation of the whole sequence) stays amortized.
inline constexpr std::size_t kDefaultChunkSize = 64;

/// Configuration of the fault-sharded parallel symbolic driver.
struct ParallelSymConfig {
  /// Settings of each per-shard HybridFaultSim. Note that `node_limit`
  /// is per shard (per BDD manager): a shard enters its three-valued
  /// fallback window based on its own manager's live-node count.
  HybridConfig hybrid;
  /// Worker threads; 0 = one per hardware thread.
  std::size_t threads = 0;
  /// Faults per shard; 0 = kDefaultChunkSize. Results depend on the
  /// partition only when fallback windows trigger (the window schedule
  /// is a function of each shard's aggregate OBDD size); they NEVER
  /// depend on `threads`.
  std::size_t chunk_size = 0;
};

/// Fault-sharded parallel symbolic fault simulator.
///
/// The paper's hybrid engine is embarrassingly parallel across the
/// fault list — each faulty machine's detection function D̃ evolves
/// independently of every other fault — so this driver partitions the
/// live faults into fixed chunks, runs one HybridFaultSim per chunk,
/// each with its own private bdd::BddManager (the manager is single-
/// threaded by design; see bdd/bdd.h), and lets a pool of workers
/// drain the chunk queue via an atomic cursor.
///
/// When config.hybrid.trim is on, the live faults are first reordered
/// so faults sharing a cone-of-influence signature become shard
/// neighbours (cluster_live_order, analysis/cone.h): shard-mates then
/// diverge over the same region of the circuit, maximizing reuse of
/// the shard's one fault-free OBDD evaluation and its shared per-frame
/// MOT equality products. When config.hybrid.sgraph is additionally
/// on, the clustered order is stably partitioned by s-graph
/// observation horizon, so faults that downgrade at the same frame —
/// equivalently, whose cones avoid the same SCC-fed outputs — share
/// shards and their downgraded frames stay cheap together (docs/
/// DESIGN.md). Both reorders are pure functions of the netlist, fault
/// list and initial statuses, so determinism is unaffected.
///
/// Determinism: the chunk partition is a pure function of the fault
/// list, the initial statuses, `chunk_size` and the trim/sgraph flags
/// — never of `threads` or of scheduling — and every chunk's simulation is
/// self-contained, so
/// the merged result is bit-identical for ANY thread count (1, 2, 8,
/// ...), including runs where fallback windows trigger. Relative to
/// the UNsharded serial engine the per-fault statuses also match
/// whenever no fallback window runs in either engine (the common
/// case); under memory pressure the window *schedules* differ — the
/// serial engine trips its limit on the whole fault list's nodes, a
/// shard only on its own — and coverage may legitimately differ while
/// remaining sound in both. docs/PARALLEL.md spells this out.
///
/// The merged HybridResult: per-fault status/detect_frame are written
/// into the global fault order; detected_count, fallback_windows,
/// symbolic_frames and three_valued_frames are summed over shards
/// (each shard walks the whole sequence, so frame counters scale with
/// the shard count); peak_live_nodes is the max over shards;
/// used_fallback is the OR.
class ParallelSymSim {
 public:
  /// Validates the configuration like HybridFaultSim does (throws
  /// std::invalid_argument / std::logic_error on bad limits or a
  /// non-finalized netlist).
  ParallelSymSim(const Netlist& netlist, std::vector<Fault> faults,
                 ParallelSymConfig config = {});

  /// Pre-classifies faults; non-Undetected entries are not simulated.
  void set_initial_status(std::vector<FaultStatus> status);

  /// Observer for the run; callbacks are serialized through a mutex
  /// and fault indices are translated to this fault list's indexing.
  /// Pass nullptr (default) for zero overhead.
  void set_progress(ProgressSink* sink) noexcept { progress_ = sink; }

  /// Telemetry context shared by every shard (see obs/telemetry.h):
  /// each worker-chunk's HybridFaultSim reports into it concurrently
  /// (its instruments are thread-safe by construction), the driver
  /// adds a per-shard "shard" span, the parallel.shard_seconds
  /// histogram and the worker pool's statistics. nullptr = off.
  void set_telemetry(obs::Telemetry* telemetry) noexcept {
    telemetry_ = telemetry;
  }

  /// Receiver of checkpoint snapshots (config.hybrid.checkpoint_interval
  /// must be nonzero for any to fire). Calls are serialized through
  /// the same mutex as progress callbacks; `chunk` and `fault_index`
  /// are translated to this driver's global chunk/fault numbering, so
  /// one sink (e.g. a RunStore) can persist every shard's snapshots
  /// into a single log. A sink that throws aborts the run.
  void set_checkpoint_sink(CheckpointSink* sink) noexcept {
    checkpoint_ = sink;
  }

  /// Resumes from per-chunk snapshots previously emitted through a
  /// checkpoint sink (global numbering, at most one per chunk; chunks
  /// without a snapshot start from frame 0). The caller must recreate
  /// the original partition: same fault list, same initial statuses,
  /// same chunk_size. run() validates each snapshot's fault set
  /// against the partition and throws std::invalid_argument on any
  /// mismatch. Thread count may differ from the original run — the
  /// merged result is still bit-identical.
  void set_resume(std::vector<ChunkCheckpoint> chunks) {
    resume_ = std::move(chunks);
  }

  /// Every-frame constant nets to tie in every shard's symbolic
  /// true-value simulator (see HybridFaultSim::set_tied_constants;
  /// empty = none). Bit-identical by OBDD canonicity, per shard.
  void set_tied_constants(std::vector<ConstVal> tied) {
    tied_ = std::move(tied);
  }

  /// Supplies a pre-built trimming plan in this fault list's global
  /// indexing (see HybridFaultSim::set_trim_plan); the driver slices
  /// it per chunk. Without it a structural plan is built once when
  /// config.hybrid.trim is on. Ignored when trimming is off.
  void set_trim_plan(TrimPlan plan);

  /// Supplies a pre-built s-graph plan in this fault list's global
  /// indexing (see HybridFaultSim::set_sgraph_plan); the driver slices
  /// it per chunk and folds its horizons into the shard assignment.
  /// Without it a plan is built once when config.hybrid.sgraph is on.
  /// Ignored when the pass is off.
  void set_sgraph_plan(SgraphPlan plan);

  /// Thread count after resolving 0 to the hardware default.
  [[nodiscard]] std::size_t resolved_threads() const noexcept;
  /// Shard size after resolving 0 to kDefaultChunkSize.
  [[nodiscard]] std::size_t resolved_chunk_size() const noexcept;

  [[nodiscard]] HybridResult run(
      const std::vector<std::vector<Val3>>& sequence);

 private:
  const Netlist* netlist_;
  std::vector<Fault> faults_;
  ParallelSymConfig config_;
  std::vector<FaultStatus> initial_status_;
  ProgressSink* progress_ = nullptr;
  CheckpointSink* checkpoint_ = nullptr;
  obs::Telemetry* telemetry_ = nullptr;
  std::vector<ChunkCheckpoint> resume_;
  std::vector<ConstVal> tied_;
  std::optional<TrimPlan> trim_plan_;
  std::optional<SgraphPlan> sgraph_plan_;
};

}  // namespace motsim

#endif  // MOTSIM_CORE_PARALLEL_SYM_SIM_H
