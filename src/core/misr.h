#ifndef MOTSIM_CORE_MISR_H
#define MOTSIM_CORE_MISR_H

#include <cstdint>
#include <vector>

namespace motsim {

/// Multiple-input signature register (MISR) — the classic test-response
/// compactor: an LFSR that folds one output vector per clock into a
/// fixed-width signature.
///
/// Included as the counterpoint to the paper's Section IV.B: signature
/// comparison presumes a UNIQUE fault-free response, which machines
/// with an unknown power-up state do not have. A fault-free chip can
/// produce as many distinct signatures as it has distinguishable
/// power-up states, so MISR-based go/no-go testing false-fails unless
/// the test was generated under rMOT (outputs checked only at
/// well-defined points) or evaluated symbolically
/// (core/test_eval.h). tests/test_misr.cpp demonstrates both effects.
class Misr {
 public:
  /// `width` up to 64 bits; `taps` is the feedback polynomial mask
  /// (bit i set = stage i feeds back). Default: a maximal-length-ish
  /// 32-bit polynomial.
  explicit Misr(unsigned width = 32,
                std::uint64_t taps = 0xC3308C66ull);

  /// Folds one output vector (output j -> stage j mod width).
  void shift(const std::vector<bool>& outputs);

  [[nodiscard]] std::uint64_t signature() const noexcept { return state_; }

  void reset() noexcept { state_ = 0; }

  /// Convenience: signature of a whole response (frame-major).
  [[nodiscard]] static std::uint64_t of(
      const std::vector<std::vector<bool>>& response, unsigned width = 32,
      std::uint64_t taps = 0xC3308C66ull);

 private:
  unsigned width_;
  std::uint64_t taps_;
  std::uint64_t mask_;
  std::uint64_t state_ = 0;
};

}  // namespace motsim

#endif  // MOTSIM_CORE_MISR_H
