#ifndef MOTSIM_CORE_OPTIONS_H
#define MOTSIM_CORE_OPTIONS_H

#include <cstddef>
#include <cstdint>
#include <string>

#include "bdd/bdd.h"
#include "core/hybrid_sim.h"
#include "core/sym_fault_sim.h"
#include "util/expected.h"

namespace motsim {

struct PipelineConfig;  // core/pipeline.h

namespace obs {
struct Telemetry;  // obs/telemetry.h
}

/// The unified, flat configuration surface of the fault-simulation
/// engines. One struct covers everything the pipeline, the hybrid
/// simulator, the parallel driver and the BDD package used to spread
/// over the nested PipelineConfig -> HybridConfig -> BddConfig chain;
/// those structs remain as thin compatibility wrappers (and as the
/// internal representation) for one release — new code should build a
/// SimOptions, validate() it, and hand it to run_pipeline or
/// ParallelSymSim.
///
/// Every field has the same default as the legacy structs, so a
/// default-constructed SimOptions reproduces today's behaviour
/// exactly.
struct SimOptions {
  // ---- pipeline stages ------------------------------------------------
  /// Run the sequence-independent static analyses (StaticXRedAnalysis
  /// and the ImplicationEngine) before every other stage: faults
  /// proven undetectable by any sequence are excluded up front with
  /// the StaticXRed / StaticUntestable verdicts, and every-frame
  /// constant nets the implication engine learned are tied to constant
  /// OBDDs in the symbolic stage. Off by default — the classification
  /// and the tying are sound, so enabling it never changes coverage or
  /// the detected-fault set, only the bucketing of never-detectable
  /// faults (and the work the symbolic stage skips). CLI flag: --lint.
  bool analysis = false;
  /// Run ID_X-red before the three-valued stage (paper Section III).
  bool run_xred = true;
  /// Three-valued fault-simulation backend (sim3/fault_simulator.h):
  /// the serial event-driven reference engine or the bit-parallel
  /// levelized PPSFP engine. Bit-identical results by contract, so the
  /// choice is a pure performance knob: it is excluded from store
  /// fingerprints, and a campaign checkpointed under one backend
  /// resumes under the other. CLI flag: --sim3-backend.
  Sim3Backend sim3_backend = default_sim3_backend();
  /// Run the symbolic stage (false = pure X01 run).
  bool run_symbolic = true;

  // ---- symbolic engine ------------------------------------------------
  /// Observation strategy of the symbolic stage: SOT / rMOT / MOT.
  Strategy strategy = Strategy::Mot;
  /// Placement of the x/y state variables (see VarLayout).
  VarLayout layout = VarLayout::Interleaved;
  /// Soft OBDD space limit per BDD manager (the paper uses 30,000
  /// nodes); exceeding it triggers a three-valued window.
  std::size_t node_limit = 30000;
  /// Length of a three-valued fallback window, in frames.
  std::size_t fallback_frames = 8;
  /// Mid-frame abort threshold = node_limit * hard_limit_factor.
  std::size_t hard_limit_factor = 8;
  /// Checkpoint-synchronization interval in frames (0 = off). Every K
  /// completed frames the symbolic engine converts machine state to
  /// three-valued form and re-seeds (a zero-length fallback window) so
  /// a snapshot can be persisted; the sync happens whether or not a
  /// CheckpointSink listens, making resumed runs bit-identical to
  /// uninterrupted ones. See HybridConfig::checkpoint_interval and
  /// docs/CHECKPOINT.md.
  std::size_t checkpoint_interval = 0;
  /// Execution-redundancy trimming in the symbolic stage (see
  /// HybridConfig::trim and docs/ANALYSIS.md): quiescent-frame
  /// skipping, SOT/rMOT activation parking, shared MOT equality
  /// products and cluster-aware shard assignment. Bit-identical to the
  /// untrimmed run by construction, so — like sim3_backend — it is a
  /// pure performance knob, excluded from store fingerprints; it IS
  /// recorded in manifests so a resumed campaign recomputes the same
  /// shard partition. On by default. CLI flag: --no-trim.
  bool trim = true;
  /// S-graph synchronization-depth analysis in the symbolic stage (see
  /// HybridConfig::sgraph and docs/ANALYSIS.md pass 6): once the frame
  /// index passes a fault's observation horizon its rMOT/MOT updates
  /// run in downgraded, SOT-equivalent form, and the parallel shard
  /// assignment groups faults by horizon class. Bit-identical by OBDD
  /// canonicity — another pure performance knob, excluded from store
  /// fingerprints but recorded in manifests for the same partition-
  /// reproducibility reason as `trim`. On by default. CLI flag:
  /// --no-sgraph.
  bool sgraph = true;

  // ---- parallel execution --------------------------------------------
  /// Worker threads for the symbolic stage: 1 = the serial
  /// HybridFaultSim (exactly the legacy path), 0 = one per hardware
  /// thread, N >= 2 = fault-sharded ParallelSymSim with N workers.
  std::size_t threads = 1;
  /// Faults per shard of the parallel driver; 0 = the driver's default
  /// (kDefaultChunkSize). The partition depends only on this value and
  /// the fault list — never on `threads` — which is what makes results
  /// independent of the thread count (see docs/PARALLEL.md).
  std::size_t chunk_size = 0;

  // ---- workload -------------------------------------------------------
  /// Seed recorded for workload generation (sequence generation is
  /// outside run_pipeline, but front ends carry the seed here so one
  /// struct describes a whole reproducible run).
  std::uint64_t seed = 1;

  // ---- BDD tuning -----------------------------------------------------
  /// Initial node-table capacity of each BDD manager.
  std::size_t bdd_initial_capacity = 1u << 12;
  /// log2 of the computed-cache size of each BDD manager.
  unsigned bdd_cache_size_log2 = 16;
  /// Auto-GC floor of each BDD manager (see BddConfig::auto_gc_floor).
  std::size_t bdd_auto_gc_floor = 1u << 16;

  // ---- observability ---------------------------------------------------
  /// Telemetry context receiving metrics and trace spans from every
  /// engine the run touches (see obs/telemetry.h and
  /// docs/OBSERVABILITY.md). nullptr — the default — keeps each
  /// instrumentation site at one predictable branch, exactly like
  /// ProgressSink. Not part of a run's identity: excluded from
  /// operator==, never serialized into a run-store manifest and never
  /// fingerprinted, so a campaign recorded without telemetry resumes
  /// bit-identically with it (and vice versa).
  obs::Telemetry* telemetry = nullptr;

  /// Checks every field and returns a normalized copy, or a
  /// human-readable description of the first problem found. The only
  /// normalization applied: nothing today — the copy is returned so
  /// future versions may canonicalize without breaking callers.
  [[nodiscard]] Expected<SimOptions, std::string> validate() const;

  // ---- conversions to the legacy structs ------------------------------
  [[nodiscard]] bdd::BddConfig to_bdd_config() const;
  [[nodiscard]] HybridConfig to_hybrid_config() const;
  [[nodiscard]] PipelineConfig to_pipeline_config() const;

  /// Lifts a legacy nested config into the flat surface (seed keeps
  /// its default — PipelineConfig never carried one).
  [[nodiscard]] static SimOptions from_pipeline_config(
      const PipelineConfig& config);

  /// Field-by-field equality of the *configuration* — the telemetry
  /// pointer is deliberately ignored (observers don't change what a
  /// run computes).
  friend bool operator==(const SimOptions& a, const SimOptions& b) {
    return a.analysis == b.analysis && a.run_xred == b.run_xred &&
           a.sim3_backend == b.sim3_backend &&
           a.run_symbolic == b.run_symbolic && a.strategy == b.strategy &&
           a.layout == b.layout && a.node_limit == b.node_limit &&
           a.fallback_frames == b.fallback_frames &&
           a.hard_limit_factor == b.hard_limit_factor &&
           a.checkpoint_interval == b.checkpoint_interval &&
           a.trim == b.trim && a.sgraph == b.sgraph &&
           a.threads == b.threads && a.chunk_size == b.chunk_size &&
           a.seed == b.seed &&
           a.bdd_initial_capacity == b.bdd_initial_capacity &&
           a.bdd_cache_size_log2 == b.bdd_cache_size_log2 &&
           a.bdd_auto_gc_floor == b.bdd_auto_gc_floor;
  }
};

}  // namespace motsim

#endif  // MOTSIM_CORE_OPTIONS_H
