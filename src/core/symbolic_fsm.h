#ifndef MOTSIM_CORE_SYMBOLIC_FSM_H
#define MOTSIM_CORE_SYMBOLIC_FSM_H

#include <cstdint>
#include <optional>
#include <vector>

#include "bdd/bdd.h"
#include "circuit/netlist.h"
#include "core/sym_true_value.h"
#include "logic/val3.h"
#include "tpg/sequences.h"

namespace motsim {

/// Fully symbolic view of the sequential circuit as an FSM
/// M = (I, O, S, delta, lambda): the next-state and output functions
/// are OBDDs over the present-state variables x_i AND symbolic input
/// variables (allocated after the state-variable block).
///
/// This is the machinery behind the paper's motivation (Section I):
/// synchronizing-sequence analysis [5, 11] explains *why* three-valued
/// simulation under-approximates — circuits without short synchronizing
/// sequences (the Counter style) leave X everywhere, yet are perfectly
/// testable under MOT. The class provides image computation,
/// reachability fixpoints and a breadth-first synchronizing-sequence
/// search over symbolically represented uncertainty sets.
class SymbolicFsm {
 public:
  /// The manager must outlive the FSM. `vars` supplies the state
  /// variable plan; input variables are created on top.
  SymbolicFsm(const Netlist& netlist, bdd::BddManager& mgr,
              const StateVars& vars);

  [[nodiscard]] const Netlist& netlist() const noexcept { return *netlist_; }
  [[nodiscard]] bdd::BddManager& manager() const noexcept { return *mgr_; }
  [[nodiscard]] const StateVars& vars() const noexcept { return vars_; }

  /// BDD variable carrying primary input j.
  [[nodiscard]] bdd::VarIndex input_var(std::size_t j) const {
    return input_base_ + static_cast<bdd::VarIndex>(j);
  }

  /// Next-state function delta_i(x, in) of flip-flop i.
  [[nodiscard]] const bdd::Bdd& delta(std::size_t i) const {
    return delta_[i];
  }
  /// Output function lambda_j(x, in) of primary output j.
  [[nodiscard]] const bdd::Bdd& lambda(std::size_t j) const {
    return lambda_[j];
  }

  /// Characteristic function of the full state space (constant 1).
  [[nodiscard]] bdd::Bdd all_states() const { return mgr_->one(); }

  /// Number of states in a set S(x).
  [[nodiscard]] double count_states(const bdd::Bdd& states) const;

  /// Forward image of a state set under one *fully specified* input
  /// vector: { delta(s, v) : s in S }.
  [[nodiscard]] bdd::Bdd image(const bdd::Bdd& states,
                               const std::vector<Val3>& input) const;

  /// Forward image with the inputs existentially quantified:
  /// { delta(s, v) : s in S, v in I }.
  [[nodiscard]] bdd::Bdd image_any_input(const bdd::Bdd& states) const;

  /// Least fixpoint of states reachable from `init` under any inputs.
  /// `max_iterations` bounds the frame depth (the diameter).
  [[nodiscard]] bdd::Bdd reachable(const bdd::Bdd& init,
                                   std::size_t max_iterations = SIZE_MAX)
      const;

 private:
  /// Builds the image of S through the function vector `fs` (each a
  /// function of x and possibly inputs), quantifying `quantify`.
  [[nodiscard]] bdd::Bdd image_through(
      const bdd::Bdd& states, const std::vector<bdd::Bdd>& fs,
      const std::vector<bdd::VarIndex>& quantify) const;

  const Netlist* netlist_;
  bdd::BddManager* mgr_;
  StateVars vars_;
  bdd::VarIndex input_base_;
  std::vector<bdd::Bdd> delta_;
  std::vector<bdd::Bdd> lambda_;
  std::vector<bdd::VarIndex> x_vars_;
  std::vector<bdd::VarIndex> input_vars_;
};

/// Result of the synchronizing-sequence search.
struct SyncSearchResult {
  /// True if a sequence was found within the bounds.
  bool found = false;
  /// The synchronizing input sequence (empty when !found).
  TestSequence sequence;
  /// Size of the final uncertainty set (1 when found; the smallest set
  /// encountered otherwise).
  double final_states = 0;
  /// Uncertainty-set nodes explored by the BFS.
  std::size_t explored = 0;
};

/// Breadth-first search for a synchronizing sequence: starting from
/// the full uncertainty set U = S, every input vector maps U to
/// image(U, v); a sequence is synchronizing when |U| collapses to 1.
/// Uncertainty sets are BDDs, deduplicated by canonical node id —
/// the symbolic-traversal formulation of [5].
///
/// `max_length` bounds the sequence length, `max_nodes` the number of
/// distinct uncertainty sets explored. Circuits with more than
/// `max_enumerated_inputs` primary inputs are searched over a random
/// sample of input vectors per level (plus the all-0/all-1 vectors)
/// instead of the full 2^k enumeration.
[[nodiscard]] SyncSearchResult find_synchronizing_sequence(
    const SymbolicFsm& fsm, std::size_t max_length = 32,
    std::size_t max_nodes = 4096, std::size_t max_enumerated_inputs = 10,
    std::uint64_t sample_seed = 1);

}  // namespace motsim

#endif  // MOTSIM_CORE_SYMBOLIC_FSM_H
