#ifndef MOTSIM_CORE_SYM_TRUE_VALUE_H
#define MOTSIM_CORE_SYM_TRUE_VALUE_H

#include <vector>

#include "analysis/static_xred.h"
#include "bdd/bdd.h"
#include "circuit/netlist.h"
#include "logic/val3.h"

namespace motsim {

/// Placement of the x (fault-free) and y (faulty) initial-state
/// variables in the OBDD order.
enum class VarLayout : unsigned char {
  /// x_0, y_0, x_1, y_1, ... — the paper's choice. The MOT detection
  /// function is a conjunction of [o(x) == o(y)] terms; with the two
  /// copies interleaved these near-equality relations stay linear in
  /// the number of memory elements.
  Interleaved,
  /// x_0..x_{m-1}, y_0..y_{m-1}. Same API, same results, but the
  /// equality-like structure of D(x,y) can blow up exponentially —
  /// measured by bench/ablation_var_order.
  Blocked,
};

/// Variable plan for symbolic simulation.
///
/// Each memory element i gets two BDD variables: x_i encodes the
/// unknown initial state of the fault-free machine, y_i the unknown
/// initial state of the faulty machine (used by the full MOT
/// strategy). Under either layout the substitution x_i -> y_i is
/// order-preserving, so BddManager::rename's linear fast path applies;
/// the layouts differ (dramatically) in the size of the MOT detection
/// functions.
class StateVars {
 public:
  explicit StateVars(std::size_t dff_count,
                     VarLayout layout = VarLayout::Interleaved)
      : m_(dff_count), layout_(layout) {}

  [[nodiscard]] std::size_t dff_count() const noexcept { return m_; }
  [[nodiscard]] VarLayout layout() const noexcept { return layout_; }

  /// BDD variable index of x_i / y_i.
  [[nodiscard]] bdd::VarIndex x(std::size_t i) const {
    return static_cast<bdd::VarIndex>(
        layout_ == VarLayout::Interleaved ? 2 * i : i);
  }
  [[nodiscard]] bdd::VarIndex y(std::size_t i) const {
    return static_cast<bdd::VarIndex>(
        layout_ == VarLayout::Interleaved ? 2 * i + 1 : m_ + i);
  }

  /// Total number of variables used by the plan.
  [[nodiscard]] bdd::VarIndex var_count() const {
    return static_cast<bdd::VarIndex>(2 * m_);
  }

  /// Order-preserving mapping sending every x_i to y_i (identity on
  /// the y variables), for BddManager::rename.
  [[nodiscard]] std::vector<bdd::VarIndex> x_to_y_mapping() const;

  /// All x variables / all y variables, ascending.
  [[nodiscard]] std::vector<bdd::VarIndex> x_vars() const;
  [[nodiscard]] std::vector<bdd::VarIndex> y_vars() const;

 private:
  std::size_t m_;
  VarLayout layout_ = VarLayout::Interleaved;
};

/// Evaluates one combinational gate over BDD operands.
/// `get(i)` must return the i-th operand.
template <typename Getter>
[[nodiscard]] bdd::Bdd eval_gate_sym(bdd::BddManager& mgr, GateType type,
                                     std::size_t arity, Getter get) {
  using bdd::Bdd;
  switch (type) {
    case GateType::Const0:
      return mgr.zero();
    case GateType::Const1:
      return mgr.one();
    case GateType::Buf:
      return get(0);
    case GateType::Not:
      return !get(0);
    case GateType::And:
    case GateType::Nand: {
      Bdd acc = mgr.one();
      for (std::size_t i = 0; i < arity && !acc.is_zero(); ++i) {
        acc &= get(i);
      }
      return type == GateType::Nand ? !acc : acc;
    }
    case GateType::Or:
    case GateType::Nor: {
      Bdd acc = mgr.zero();
      for (std::size_t i = 0; i < arity && !acc.is_one(); ++i) {
        acc |= get(i);
      }
      return type == GateType::Nor ? !acc : acc;
    }
    case GateType::Xor:
    case GateType::Xnor: {
      Bdd acc = mgr.zero();
      for (std::size_t i = 0; i < arity; ++i) acc ^= get(i);
      return type == GateType::Xnor ? !acc : acc;
    }
    default:
      throw std::logic_error("eval_gate_sym: not a combinational gate");
  }
}

/// Symbolic true-value (fault-free) simulator.
///
/// The present state starts fully symbolic (flip-flop i carries the
/// projection of x_i); each step() applies one *binary* input vector
/// and evaluates the combinational network over OBDDs, yielding every
/// lead's value as a function of the unknown initial state — the
/// "symbolic true value simulation" of Section IV.A.
class SymTrueValueSim {
 public:
  /// The manager must outlive the simulator. `vars` supplies the
  /// variable plan (use the same plan for the fault simulator).
  SymTrueValueSim(const Netlist& netlist, bdd::BddManager& mgr,
                  const StateVars& vars);

  /// Resets the present state to fully symbolic (bit i = x_i).
  void reset_symbolic();

  /// Overrides the present state with arbitrary functions (one per
  /// flip-flop). Used by the hybrid simulator when re-entering the
  /// symbolic mode after a three-valued window.
  void set_state(std::vector<bdd::Bdd> state);

  /// Three-valued view of the present state: constants map to 0/1,
  /// anything symbolic to X. Used when *leaving* symbolic mode.
  [[nodiscard]] std::vector<Val3> state_as_val3() const;

  /// Releases every held function (state and per-node values) so a
  /// garbage collection can reclaim the nodes; call set_state or
  /// reset_symbolic before the next step().
  void release();

  /// Ties provably-constant internal nets: a tied node's value is set
  /// to the constant OBDD instead of being evaluated. Sound only for
  /// every-frame constants (ImplicationEngine::tied_constants); by OBDD
  /// canonicity the evaluated function of such a net IS that constant,
  /// so tying changes no function — it only skips building and
  /// discarding the intermediate apply() results. Frame-input entries
  /// must be Unknown; pass an empty vector to untie. Throws
  /// std::invalid_argument on a size mismatch.
  void set_tied_constants(std::vector<ConstVal> tied);

  /// Applies one input vector (binary values only; X throws
  /// std::invalid_argument) and returns the output functions.
  std::vector<bdd::Bdd> step(const std::vector<Val3>& inputs);

  /// Per-node functions of the most recent frame.
  [[nodiscard]] const std::vector<bdd::Bdd>& values() const noexcept {
    return values_;
  }
  /// Present-state functions (after the last step's latch).
  [[nodiscard]] const std::vector<bdd::Bdd>& state() const noexcept {
    return state_;
  }
  /// Output functions of the most recent frame.
  [[nodiscard]] std::vector<bdd::Bdd> outputs() const;

  [[nodiscard]] const Netlist& netlist() const noexcept { return *netlist_; }
  [[nodiscard]] bdd::BddManager& manager() const noexcept { return *mgr_; }
  [[nodiscard]] const StateVars& vars() const noexcept { return vars_; }

 private:
  const Netlist* netlist_;
  bdd::BddManager* mgr_;
  StateVars vars_;
  std::vector<bdd::Bdd> values_;
  std::vector<bdd::Bdd> state_;
  std::vector<ConstVal> tied_;  ///< empty = nothing tied
};

}  // namespace motsim

#endif  // MOTSIM_CORE_SYM_TRUE_VALUE_H
