#include "core/symbolic_fsm.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "util/rng.h"

namespace motsim {

using bdd::Bdd;
using bdd::VarIndex;

SymbolicFsm::SymbolicFsm(const Netlist& netlist, bdd::BddManager& mgr,
                         const StateVars& vars)
    : netlist_(&netlist), mgr_(&mgr), vars_(vars) {
  if (!netlist.finalized()) {
    throw std::logic_error("SymbolicFsm requires a finalized netlist");
  }
  if (vars.dff_count() != netlist.dff_count()) {
    throw std::invalid_argument("StateVars plan does not match the netlist");
  }

  // Input variables sit above the whole state-variable block.
  mgr.ensure_vars(vars.var_count());
  input_base_ = mgr.var_count();
  for (std::size_t j = 0; j < netlist.input_count(); ++j) {
    input_vars_.push_back(input_var(j));
  }
  mgr.ensure_vars(input_base_ +
                  static_cast<VarIndex>(netlist.input_count()));
  for (std::size_t i = 0; i < vars.dff_count(); ++i) {
    x_vars_.push_back(vars.x(i));
  }

  // One symbolic evaluation of the combinational network with
  // *symbolic* inputs yields delta and lambda.
  std::vector<Bdd> values(netlist.node_count());
  for (std::size_t j = 0; j < netlist.input_count(); ++j) {
    values[netlist.inputs()[j]] = mgr.var(input_var(j));
  }
  for (std::size_t i = 0; i < netlist.dff_count(); ++i) {
    values[netlist.dffs()[i]] = mgr.var(vars.x(i));
  }
  for (NodeIndex n : netlist.topo_order()) {
    const Gate& g = netlist.gate(n);
    if (is_frame_input(g.type)) {
      if (g.type == GateType::Const0) values[n] = mgr.zero();
      if (g.type == GateType::Const1) values[n] = mgr.one();
      continue;
    }
    values[n] = eval_gate_sym(mgr, g.type, g.fanins.size(),
                              [&](std::size_t i) -> const Bdd& {
                                return values[g.fanins[i]];
                              });
  }

  delta_.reserve(netlist.dff_count());
  for (NodeIndex dff : netlist.dffs()) {
    delta_.push_back(values[netlist.gate(dff).fanins[0]]);
  }
  lambda_.reserve(netlist.output_count());
  for (NodeIndex po : netlist.outputs()) {
    lambda_.push_back(values[po]);
  }
}

double SymbolicFsm::count_states(const Bdd& states) const {
  // sat_count ranges over every manager variable; divide the free
  // (non-x) dimensions back out.
  const VarIndex total = mgr_->var_count();
  const double raw = mgr_->sat_count(states, total);
  const double free_dims =
      static_cast<double>(total) - static_cast<double>(vars_.dff_count());
  return raw / std::pow(2.0, free_dims);
}

Bdd SymbolicFsm::image_through(
    const Bdd& states, const std::vector<Bdd>& fs,
    const std::vector<VarIndex>& quantify) const {
  // Img(y) = exists quantify . S(x) /\ prod_i [y_i == fs_i(x, in)],
  // then rename y back to x (order-preserving under both layouts).
  // The last conjunction is fused with the quantification through the
  // relational product (and_exists) to avoid materializing the full
  // transition relation.
  Bdd relation = states;
  Bdd img_y;
  if (fs.empty()) {
    img_y = mgr_->exists(relation, quantify);
  } else {
    for (std::size_t i = 0; i + 1 < fs.size(); ++i) {
      relation &= mgr_->var(vars_.y(i)).xnor(fs[i]);
      if (relation.is_zero()) break;
    }
    const Bdd last =
        mgr_->var(vars_.y(fs.size() - 1)).xnor(fs[fs.size() - 1]);
    img_y = mgr_->and_exists(relation, last, quantify);
  }

  std::vector<VarIndex> y2x(mgr_->var_count());
  for (VarIndex v = 0; v < mgr_->var_count(); ++v) y2x[v] = v;
  for (std::size_t i = 0; i < vars_.dff_count(); ++i) {
    y2x[vars_.y(i)] = vars_.x(i);
  }
  return mgr_->rename(img_y, y2x);
}

Bdd SymbolicFsm::image(const Bdd& states,
                       const std::vector<Val3>& input) const {
  if (input.size() != netlist_->input_count()) {
    throw std::invalid_argument("image: wrong input vector width");
  }
  std::vector<Bdd> fs = delta_;
  for (std::size_t j = 0; j < input.size(); ++j) {
    if (!is_binary(input[j])) {
      throw std::invalid_argument("image: X in input vector");
    }
    for (Bdd& f : fs) {
      f = mgr_->restrict_var(f, input_var(j), input[j] == Val3::One);
    }
  }
  return image_through(states, fs, x_vars_);
}

Bdd SymbolicFsm::image_any_input(const Bdd& states) const {
  std::vector<VarIndex> quantify = x_vars_;
  quantify.insert(quantify.end(), input_vars_.begin(), input_vars_.end());
  return image_through(states, delta_, quantify);
}

Bdd SymbolicFsm::reachable(const Bdd& init,
                           std::size_t max_iterations) const {
  Bdd reached = init;
  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    const Bdd next = reached | image_any_input(reached);
    if (next == reached) break;
    reached = next;
  }
  return reached;
}

SyncSearchResult find_synchronizing_sequence(const SymbolicFsm& fsm,
                                             std::size_t max_length,
                                             std::size_t max_nodes,
                                             std::size_t max_enumerated_inputs,
                                             std::uint64_t sample_seed) {
  const std::size_t k = fsm.netlist().input_count();
  Rng rng(sample_seed);

  // Candidate input vectors tried at every BFS level.
  std::vector<std::vector<Val3>> candidates;
  if (k <= max_enumerated_inputs) {
    for (std::size_t bits = 0; bits < (std::size_t{1} << k); ++bits) {
      std::vector<Val3> v(k);
      for (std::size_t j = 0; j < k; ++j) {
        v[j] = to_val3(((bits >> j) & 1) != 0);
      }
      candidates.push_back(std::move(v));
    }
  } else {
    candidates.emplace_back(k, Val3::Zero);
    candidates.emplace_back(k, Val3::One);
    for (int i = 0; i < 62; ++i) {
      std::vector<Val3> v(k);
      for (std::size_t j = 0; j < k; ++j) v[j] = to_val3(rng.flip());
      candidates.push_back(std::move(v));
    }
  }

  struct Node {
    Bdd uncertainty;
    std::size_t parent;          ///< index into nodes; SIZE_MAX = root
    std::size_t via;             ///< candidate index used to get here
    std::size_t depth;
  };
  std::vector<Node> nodes;
  nodes.push_back(Node{fsm.all_states(), SIZE_MAX, 0, 0});

  std::unordered_set<bdd::NodeId> visited{nodes[0].uncertainty.id()};

  SyncSearchResult result;
  result.final_states = fsm.count_states(nodes[0].uncertainty);

  auto reconstruct = [&](std::size_t leaf) {
    TestSequence seq;
    for (std::size_t at = leaf; nodes[at].parent != SIZE_MAX;
         at = nodes[at].parent) {
      seq.push_back(candidates[nodes[at].via]);
    }
    std::reverse(seq.begin(), seq.end());
    return seq;
  };

  if (result.final_states <= 1.0) {  // degenerate: single-state machine
    result.found = true;
    result.explored = 1;
    return result;
  }

  for (std::size_t at = 0; at < nodes.size() && nodes.size() < max_nodes;
       ++at) {
    if (nodes[at].depth >= max_length) continue;
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      Bdd next = fsm.image(nodes[at].uncertainty, candidates[c]);
      if (!visited.insert(next.id()).second) continue;
      nodes.push_back(Node{next, at, c, nodes[at].depth + 1});
      const double count = fsm.count_states(next);
      result.final_states = std::min(result.final_states, count);
      if (count <= 1.0) {
        result.found = true;
        result.sequence = reconstruct(nodes.size() - 1);
        result.explored = nodes.size();
        result.final_states = count;
        return result;
      }
      if (nodes.size() >= max_nodes) break;
    }
  }

  result.explored = nodes.size();
  return result;
}

}  // namespace motsim
