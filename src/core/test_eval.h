#ifndef MOTSIM_CORE_TEST_EVAL_H
#define MOTSIM_CORE_TEST_EVAL_H

#include <cstddef>
#include <vector>

#include "bdd/bdd.h"
#include "circuit/netlist.h"
#include "logic/val3.h"

namespace motsim {

/// The symbolic output sequence o(x,1), ..., o(x,n) of the fault-free
/// machine (paper Section IV.B) — one OBDD per (frame, output),
/// functions of the unknown initial state x.
///
/// `skip_frames` reproduces the paper's partial evaluation for large
/// circuits (s5378 footnote of Table IV): the first frames are
/// simulated three-valued and contribute classic binary-mismatch
/// checks instead of symbolic terms.
class SymbolicResponse {
 public:
  SymbolicResponse(const Netlist& netlist, bdd::BddManager& mgr,
                   const std::vector<std::vector<Val3>>& sequence,
                   std::size_t skip_frames = 0);

  [[nodiscard]] std::size_t frame_count() const noexcept {
    return frames_ + skipped_;
  }
  [[nodiscard]] std::size_t skipped_frames() const noexcept {
    return skipped_;
  }
  [[nodiscard]] std::size_t output_count() const noexcept {
    return output_count_;
  }

  /// o_j(x,t); `t` is 0-based and must be >= skipped_frames().
  [[nodiscard]] const bdd::Bdd& output(std::size_t t, std::size_t j) const;

  /// Three-valued output of a skipped frame (t < skipped_frames()).
  [[nodiscard]] Val3 skipped_output(std::size_t t, std::size_t j) const;

  /// Shared DAG size of the whole stored symbolic sequence — the
  /// "BDD Size" column of the paper's Table IV.
  [[nodiscard]] std::size_t bdd_size() const;

  [[nodiscard]] bdd::BddManager& manager() const noexcept { return *mgr_; }

 private:
  bdd::BddManager* mgr_;
  std::size_t frames_ = 0;   ///< symbolic frames stored
  std::size_t skipped_ = 0;  ///< leading three-valued frames
  std::size_t output_count_ = 0;
  std::vector<bdd::Bdd> symbolic_;  ///< frames_ x output_count_
  std::vector<Val3> three_valued_;  ///< skipped_ x output_count_
};

/// Decision of the test evaluator.
enum class Verdict : unsigned char {
  Faulty,  ///< response impossible for any initial state -> CUT faulty
  Pass,    ///< response consistent with some initial state
};

/// Test evaluation per Section IV.B: the circuit-under-test's response
/// c(1..n) is checked against the symbolic fault-free sequence by
/// evaluating, frame by frame, the product
///     prod_t prod_j [o_j(x,t) == c_j(t)].
/// The CUT is declared faulty iff the product becomes the zero
/// function (no initial state of the fault-free machine could have
/// produced the response). Works for MOT-generated tests where the
/// fault-free response is not unique.
class TestEvaluator {
 public:
  explicit TestEvaluator(const SymbolicResponse& response);

  /// Evaluates a full response (frame-major, binary values). Stops at
  /// the first frame that forces the product to zero.
  [[nodiscard]] Verdict evaluate(
      const std::vector<std::vector<bool>>& response) const;

  /// Incremental interface: feed frames one at a time.
  class Session {
   public:
    explicit Session(const SymbolicResponse& response);
    /// Feeds the next frame's observed outputs; returns the verdict so
    /// far (Faulty is sticky).
    Verdict feed(const std::vector<bool>& frame_outputs);
    [[nodiscard]] Verdict verdict() const noexcept { return verdict_; }
    /// The constraint accumulated so far (zero iff Faulty).
    [[nodiscard]] const bdd::Bdd& constraint() const noexcept {
      return product_;
    }

   private:
    const SymbolicResponse* response_;
    bdd::Bdd product_;
    std::size_t t_ = 0;
    Verdict verdict_ = Verdict::Pass;
  };

 private:
  const SymbolicResponse* response_;
};

/// Standard (rMOT/SOT) test evaluation — the paper's Section IV.B
/// "easy" case and the key practical advantage of the restricted MOT
/// strategy: the CUT is faulty iff its response differs from the
/// *well-defined* fault-free output values, i.e. the (t, j) points
/// where o_j(x,t) is a constant. No symbolic computation happens at
/// evaluation time; the well-defined points are extracted from the
/// symbolic response once, up front.
class RmotEvaluator {
 public:
  explicit RmotEvaluator(const SymbolicResponse& response);

  /// Checks a full response against the well-defined points.
  [[nodiscard]] Verdict evaluate(
      const std::vector<std::vector<bool>>& response) const;

  /// Number of well-defined (t, j) observation points.
  [[nodiscard]] std::size_t well_defined_count() const noexcept {
    return points_.size();
  }

 private:
  struct Point {
    std::size_t t, j;
    bool value;
  };
  std::size_t frame_count_;
  std::size_t output_count_;
  std::vector<Point> points_;
};

}  // namespace motsim

#endif  // MOTSIM_CORE_TEST_EVAL_H
