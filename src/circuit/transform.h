#ifndef MOTSIM_CIRCUIT_TRANSFORM_H
#define MOTSIM_CIRCUIT_TRANSFORM_H

#include <string>

#include "circuit/netlist.h"

namespace motsim {

/// Design-for-test transform: adds a synchronous active-high reset.
///
/// The paper's introduction mentions the classical alternative to MOT:
/// "circuit modifications ... made to permit setting the circuit into
/// a known initial state". This transform performs exactly that
/// modification — a new primary input `reset_name` gates every
/// flip-flop's D input through AND(NOT reset, D), so asserting reset
/// for one clock drives the whole machine to the all-zero state. The
/// returned netlist is finalized; the original is untouched.
///
/// bench/ablation_reset measures the effect the paper alludes to: a
/// counter that was X01-blind becomes almost fully coverable
/// three-valued once a reset exists — at the cost of one extra pin and
/// 2m+1 gates.
[[nodiscard]] Netlist with_synchronous_reset(
    const Netlist& netlist, const std::string& reset_name = "reset");

/// Graphviz export of the netlist structure (flip-flops boxed, primary
/// outputs double-circled). For documentation and debugging.
[[nodiscard]] std::string netlist_to_dot(const Netlist& netlist);

}  // namespace motsim

#endif  // MOTSIM_CIRCUIT_TRANSFORM_H
