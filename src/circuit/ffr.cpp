#include "circuit/ffr.h"

#include <stdexcept>

namespace motsim {

namespace {

/// A net ends its region (is a head) when it cannot be followed
/// forward inside a tree: multiple sinks, no sinks, primary output, or
/// its single sink is a flip-flop (the region boundary of the
/// combinational frame).
bool net_is_head(const Netlist& nl, NodeIndex node) {
  const auto& fanouts = nl.fanouts(node);
  if (fanouts.size() != 1) return true;
  if (nl.is_output(node)) return true;
  if (nl.type(fanouts[0].node) == GateType::Dff) return true;
  return false;
}

}  // namespace

FanoutFreeRegions::FanoutFreeRegions(const Netlist& netlist)
    : netlist_(&netlist) {
  if (!netlist.finalized()) {
    throw std::logic_error("FanoutFreeRegions requires a finalized netlist");
  }
  head_.assign(netlist.node_count(), kNoNode);

  // Walk the topological order backwards: every node either is a head
  // or inherits the head of its unique sink.
  const auto& topo = netlist.topo_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const NodeIndex n = *it;
    if (net_is_head(netlist, n)) {
      head_[n] = n;
      heads_.push_back(n);
    } else {
      head_[n] = head_[netlist.fanouts(n)[0].node];
    }
  }
}

std::vector<NodeIndex> FanoutFreeRegions::members_backward(
    NodeIndex head) const {
  if (head_[head] != head) {
    throw std::invalid_argument("members_backward: node is not a region head");
  }
  // BFS from the head against fanin edges, staying inside the region.
  std::vector<NodeIndex> members{head};
  for (std::size_t i = 0; i < members.size(); ++i) {
    const Gate& g = netlist_->gate(members[i]);
    if (is_frame_input(g.type)) continue;  // region inputs stop here
    for (NodeIndex f : g.fanins) {
      if (head_[f] == head && f != head) members.push_back(f);
    }
  }
  return members;
}

}  // namespace motsim
