#ifndef MOTSIM_CIRCUIT_FFR_H
#define MOTSIM_CIRCUIT_FFR_H

#include <vector>

#include "circuit/netlist.h"

namespace motsim {

/// Fanout-free regions (FFRs) of the combinational network.
///
/// An FFR is a maximal tree of gates in which every internal net has
/// exactly one sink. Region outputs ("heads") are nets that fan out to
/// more than one sink, feed a primary output, feed a flip-flop D-pin,
/// or have no sink at all. Step 3 of the paper's ID_X-red procedure
/// computes lead observabilities *inside* each FFR by one backward
/// traversal from the head.
class FanoutFreeRegions {
 public:
  explicit FanoutFreeRegions(const Netlist& netlist);

  /// Head node of the region containing `node`'s output net.
  [[nodiscard]] NodeIndex head_of(NodeIndex node) const {
    return head_[node];
  }

  /// True if `node`'s output net is itself a region head.
  [[nodiscard]] bool is_head(NodeIndex node) const {
    return head_[node] == node;
  }

  /// All region heads.
  [[nodiscard]] const std::vector<NodeIndex>& heads() const noexcept {
    return heads_;
  }

  /// Members of the region with the given head, in reverse-topological
  /// order starting with the head itself (the traversal order needed
  /// by a backward pass).
  [[nodiscard]] std::vector<NodeIndex> members_backward(NodeIndex head) const;

 private:
  const Netlist* netlist_;
  std::vector<NodeIndex> head_;
  std::vector<NodeIndex> heads_;
};

}  // namespace motsim

#endif  // MOTSIM_CIRCUIT_FFR_H
