#ifndef MOTSIM_CIRCUIT_LEVELIZE_H
#define MOTSIM_CIRCUIT_LEVELIZE_H

#include <cstdint>
#include <vector>

#include "circuit/netlist.h"

namespace motsim {

/// Level-bucketed event queue for event-driven simulation.
///
/// Both the three-valued and the symbolic fault simulators propagate
/// fault effects in level order: a node must be (re)evaluated only
/// after all of its possibly-divergent fanins. The queue holds each
/// node at most once (a `queued` bitmap suppresses duplicates) and
/// pops nodes level by level.
class EventQueue {
 public:
  explicit EventQueue(const Netlist& netlist);

  /// Schedules `node` for evaluation; duplicates are ignored.
  void push(NodeIndex node);

  /// Pops the lowest-level pending node; kNoNode when empty.
  [[nodiscard]] NodeIndex pop();

  [[nodiscard]] bool empty() const noexcept { return pending_ == 0; }

  /// Forgets all pending events (e.g. after a fault is detected and
  /// dropped mid-propagation).
  void clear();

 private:
  const Netlist* netlist_;
  std::vector<std::vector<NodeIndex>> buckets_;  ///< one per level
  std::vector<std::uint8_t> queued_;
  std::size_t pending_ = 0;
  std::uint32_t cursor_ = 0;  ///< lowest level that may be non-empty
};

/// Nodes grouped by combinational level (level 0 = frame inputs);
/// useful for full-pass evaluations.
[[nodiscard]] std::vector<std::vector<NodeIndex>> nodes_by_level(
    const Netlist& netlist);

}  // namespace motsim

#endif  // MOTSIM_CIRCUIT_LEVELIZE_H
