#include "circuit/levelize.h"

#include <stdexcept>

namespace motsim {

EventQueue::EventQueue(const Netlist& netlist) : netlist_(&netlist) {
  if (!netlist.finalized()) {
    throw std::logic_error("EventQueue requires a finalized netlist");
  }
  buckets_.resize(netlist.max_level() + 1);
  queued_.assign(netlist.node_count(), 0);
}

void EventQueue::push(NodeIndex node) {
  if (queued_[node]) return;
  queued_[node] = 1;
  const std::uint32_t level = netlist_->level(node);
  buckets_[level].push_back(node);
  ++pending_;
  if (level < cursor_) cursor_ = level;
}

NodeIndex EventQueue::pop() {
  if (pending_ == 0) return kNoNode;
  while (buckets_[cursor_].empty()) ++cursor_;
  const NodeIndex node = buckets_[cursor_].back();
  buckets_[cursor_].pop_back();
  queued_[node] = 0;
  --pending_;
  return node;
}

void EventQueue::clear() {
  for (auto& bucket : buckets_) {
    for (NodeIndex n : bucket) queued_[n] = 0;
    bucket.clear();
  }
  pending_ = 0;
  cursor_ = 0;
}

std::vector<std::vector<NodeIndex>> nodes_by_level(const Netlist& netlist) {
  if (!netlist.finalized()) {
    throw std::logic_error("nodes_by_level requires a finalized netlist");
  }
  std::vector<std::vector<NodeIndex>> levels(netlist.max_level() + 1);
  for (NodeIndex n = 0; n < netlist.node_count(); ++n) {
    levels[netlist.level(n)].push_back(n);
  }
  return levels;
}

}  // namespace motsim
