#include "circuit/transform.h"

#include <sstream>
#include <stdexcept>

namespace motsim {

Netlist with_synchronous_reset(const Netlist& src,
                               const std::string& reset_name) {
  if (!src.finalized()) {
    throw std::logic_error("with_synchronous_reset: source not finalized");
  }
  if (src.find(reset_name) != kNoNode) {
    throw std::invalid_argument("with_synchronous_reset: signal '" +
                                reset_name + "' already exists");
  }

  Netlist out(src.name() + "+reset");

  // Clone nodes in index order; indices are preserved, so fanin lists
  // can be copied verbatim.
  for (NodeIndex n = 0; n < src.node_count(); ++n) {
    const Gate& g = src.gate(n);
    switch (g.type) {
      case GateType::Input:
        out.add_input(g.name);
        break;
      case GateType::Dff:
        out.add_dff(kNoNode, g.name);
        break;
      default:
        out.add_gate(g.type, {}, g.name);
        break;
    }
  }
  for (NodeIndex n = 0; n < src.node_count(); ++n) {
    const Gate& g = src.gate(n);
    if (g.type == GateType::Input) continue;
    if (g.type == GateType::Dff) continue;  // rewired below
    out.set_fanins(n, g.fanins);
  }

  // The reset plumbing: every D input becomes AND(NOT reset, D).
  const NodeIndex reset = out.add_input(reset_name);
  const NodeIndex nreset =
      out.add_gate(GateType::Not, {reset}, reset_name + "_n");
  for (NodeIndex dff : src.dffs()) {
    const NodeIndex d = src.gate(dff).fanins[0];
    const NodeIndex gated = out.add_gate(
        GateType::And, {nreset, d}, src.gate(dff).name + "_rst");
    out.set_fanins(dff, {gated});
  }

  for (NodeIndex po : src.outputs()) out.mark_output(po);
  out.finalize();
  return out;
}

std::string netlist_to_dot(const Netlist& nl) {
  std::ostringstream os;
  os << "digraph \"" << nl.name() << "\" {\n  rankdir=LR;\n";
  for (NodeIndex n = 0; n < nl.node_count(); ++n) {
    const Gate& g = nl.gate(n);
    const char* shape = "ellipse";
    if (g.type == GateType::Input) shape = "invtriangle";
    if (g.type == GateType::Dff) shape = "box";
    os << "  n" << n << " [label=\"" << g.name << "\\n"
       << to_cstring(g.type) << "\", shape=" << shape
       << (nl.is_output(n) ? ", peripheries=2" : "") << "];\n";
  }
  for (NodeIndex n = 0; n < nl.node_count(); ++n) {
    for (NodeIndex f : nl.gate(n).fanins) {
      os << "  n" << f << " -> n" << n
         << (nl.type(n) == GateType::Dff ? " [style=dashed]" : "") << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace motsim
