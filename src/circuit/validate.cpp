#include "circuit/validate.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace motsim {

ValidationReport validate(const Netlist& nl) {
  if (!nl.finalized()) {
    throw std::logic_error("validate requires a finalized netlist");
  }
  ValidationReport report;

  // Dangling nets: no sink and not a primary output.
  for (NodeIndex n = 0; n < nl.node_count(); ++n) {
    if (nl.fanouts(n).empty() && !nl.is_output(n)) {
      report.dangling_nets.push_back(n);
      report.messages.push_back("dangling net: " + nl.gate(n).name);
    }
  }

  // Observability: backward reachability from POs and DFF D-pins.
  // (A value can be observed either directly at an output or via the
  // state it leaves in a flip-flop.)
  std::vector<std::uint8_t> observable(nl.node_count(), 0);
  std::vector<NodeIndex> stack;
  auto seed = [&](NodeIndex n) {
    if (!observable[n]) {
      observable[n] = 1;
      stack.push_back(n);
    }
  };
  for (NodeIndex n : nl.outputs()) seed(n);
  for (NodeIndex n : nl.dffs()) seed(n);
  while (!stack.empty()) {
    const NodeIndex n = stack.back();
    stack.pop_back();
    for (NodeIndex f : nl.gate(n).fanins) seed(f);
  }
  for (NodeIndex n = 0; n < nl.node_count(); ++n) {
    if (!observable[n]) {
      report.unobservable_nodes.push_back(n);
      report.messages.push_back("unobservable node: " + nl.gate(n).name);
    }
  }

  // Duplicate fanins.
  for (NodeIndex n = 0; n < nl.node_count(); ++n) {
    const auto& fanins = nl.gate(n).fanins;
    std::unordered_set<NodeIndex> seen;
    for (NodeIndex f : fanins) {
      if (!seen.insert(f).second) {
        report.duplicate_fanin_gates.push_back(n);
        report.messages.push_back("duplicate fanin at gate: " +
                                  nl.gate(n).name);
        break;
      }
    }
  }

  return report;
}

}  // namespace motsim
