#include "circuit/validate.h"

#include "analysis/lint.h"

namespace motsim {

ValidationReport validate(const Netlist& nl) {
  const DiagnosticReport lint = run_lint(nl);
  ValidationReport report;
  for (const Diagnostic& d : lint.diagnostics()) {
    if (d.id == "lint.dangling-net" || d.id == "lint.floating-input") {
      report.dangling_nets.push_back(d.node);
    } else if (d.id == "lint.unobservable") {
      report.unobservable_nodes.push_back(d.node);
    } else if (d.id == "lint.duplicate-fanin") {
      report.duplicate_fanin_gates.push_back(d.node);
    }
    report.messages.push_back(d.id + ": " + d.name +
                              (d.message.empty() ? "" : " — " + d.message));
  }
  return report;
}

}  // namespace motsim
