#include "circuit/netlist.h"

#include <algorithm>
#include <stdexcept>

namespace motsim {

const char* to_cstring(GateType t) noexcept {
  switch (t) {
    case GateType::Input:
      return "INPUT";
    case GateType::Const0:
      return "CONST0";
    case GateType::Const1:
      return "CONST1";
    case GateType::Buf:
      return "BUF";
    case GateType::Not:
      return "NOT";
    case GateType::And:
      return "AND";
    case GateType::Nand:
      return "NAND";
    case GateType::Or:
      return "OR";
    case GateType::Nor:
      return "NOR";
    case GateType::Xor:
      return "XOR";
    case GateType::Xnor:
      return "XNOR";
    case GateType::Dff:
      return "DFF";
  }
  return "?";
}

Netlist::Netlist(std::string name) : name_(std::move(name)) {}

void Netlist::require_not_finalized() const {
  if (finalized_) {
    throw std::logic_error("Netlist is finalized; structure is frozen");
  }
}

NodeIndex Netlist::add_input(const std::string& name) {
  require_not_finalized();
  const auto idx = static_cast<NodeIndex>(gates_.size());
  gates_.push_back(Gate{GateType::Input, {}, name});
  inputs_.push_back(idx);
  by_name_.emplace(name, idx);
  return idx;
}

NodeIndex Netlist::add_gate(GateType type, std::vector<NodeIndex> fanins,
                            const std::string& name) {
  require_not_finalized();
  if (type == GateType::Input) {
    throw std::invalid_argument("use add_input for primary inputs");
  }
  if (type == GateType::Dff) {
    throw std::invalid_argument("use add_dff for flip-flops");
  }
  const auto idx = static_cast<NodeIndex>(gates_.size());
  gates_.push_back(Gate{type, std::move(fanins), name});
  by_name_.emplace(name, idx);
  return idx;
}

NodeIndex Netlist::add_dff(NodeIndex d, const std::string& name) {
  require_not_finalized();
  const auto idx = static_cast<NodeIndex>(gates_.size());
  std::vector<NodeIndex> fanins;
  if (d != kNoNode) fanins.push_back(d);
  gates_.push_back(Gate{GateType::Dff, std::move(fanins), name});
  dffs_.push_back(idx);
  by_name_.emplace(name, idx);
  return idx;
}

void Netlist::set_fanins(NodeIndex node, std::vector<NodeIndex> fanins) {
  require_not_finalized();
  gates_.at(node).fanins = std::move(fanins);
}

void Netlist::mark_output(NodeIndex node) {
  require_not_finalized();
  if (node >= gates_.size()) {
    throw std::invalid_argument("mark_output: no such node");
  }
  outputs_.push_back(node);
}

std::size_t Netlist::gate_count() const noexcept {
  std::size_t n = 0;
  for (const Gate& g : gates_) {
    if (!is_frame_input(g.type)) ++n;
  }
  return n;
}

NodeIndex Netlist::find(const std::string& name) const {
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? kNoNode : it->second;
}

bool Netlist::is_output(NodeIndex node) const {
  if (finalized_) return is_output_flag_[node] != 0;
  return std::find(outputs_.begin(), outputs_.end(), node) != outputs_.end();
}

void Netlist::finalize() {
  require_not_finalized();

  // Structural validation (arity, dangling fanins).
  for (NodeIndex n = 0; n < gates_.size(); ++n) {
    const Gate& g = gates_[n];
    for (NodeIndex f : g.fanins) {
      if (f >= gates_.size()) {
        throw std::invalid_argument("node '" + g.name +
                                    "' has a dangling fanin");
      }
    }
    switch (g.type) {
      case GateType::Input:
      case GateType::Const0:
      case GateType::Const1:
        if (!g.fanins.empty()) {
          throw std::invalid_argument("source node '" + g.name +
                                      "' must have no fanins");
        }
        break;
      case GateType::Buf:
      case GateType::Not:
      case GateType::Dff:
        if (g.fanins.size() != 1) {
          throw std::invalid_argument("node '" + g.name +
                                      "' must have exactly one fanin");
        }
        break;
      default:
        if (g.fanins.size() < 2) {
          throw std::invalid_argument("gate '" + g.name +
                                      "' needs at least two fanins");
        }
        break;
    }
  }

  compute_fanouts();
  compute_levels_and_topo();

  dff_pos_.assign(gates_.size(), 0xFFFFFFFFu);
  for (std::uint32_t i = 0; i < dffs_.size(); ++i) {
    dff_pos_[dffs_[i]] = i;
  }

  is_output_flag_.assign(gates_.size(), 0);
  for (NodeIndex n : outputs_) is_output_flag_[n] = 1;

  finalized_ = true;
}

void Netlist::compute_fanouts() {
  fanouts_.assign(gates_.size(), {});
  for (NodeIndex n = 0; n < gates_.size(); ++n) {
    const Gate& g = gates_[n];
    for (std::uint32_t pin = 0; pin < g.fanins.size(); ++pin) {
      fanouts_[g.fanins[pin]].push_back(FanoutRef{n, pin});
    }
  }
}

void Netlist::compute_levels_and_topo() {
  // Kahn's algorithm over the combinational dependency graph: DFF
  // outputs and sources have no combinational predecessors; a DFF's
  // D-fanin edge belongs to the *next* frame and is ignored here.
  levels_.assign(gates_.size(), 0);
  topo_.clear();
  topo_.reserve(gates_.size());

  std::vector<std::uint32_t> pending(gates_.size(), 0);
  std::vector<NodeIndex> ready;
  for (NodeIndex n = 0; n < gates_.size(); ++n) {
    const Gate& g = gates_[n];
    pending[n] =
        is_frame_input(g.type) ? 0 : static_cast<std::uint32_t>(g.fanins.size());
    if (pending[n] == 0) ready.push_back(n);
  }

  max_level_ = 0;
  while (!ready.empty()) {
    const NodeIndex n = ready.back();
    ready.pop_back();
    topo_.push_back(n);
    for (const FanoutRef& fo : fanouts_[n]) {
      if (is_frame_input(gates_[fo.node].type)) continue;  // DFF D-pin
      levels_[fo.node] = std::max(levels_[fo.node], levels_[n] + 1);
      if (--pending[fo.node] == 0) {
        ready.push_back(fo.node);
        max_level_ = std::max(max_level_, levels_[fo.node]);
      }
    }
  }

  if (topo_.size() != gates_.size()) {
    throw std::invalid_argument("netlist '" + name_ +
                                "' contains a combinational cycle");
  }
}

bool eval_gate2(GateType type, const std::vector<bool>& ins) {
  switch (type) {
    case GateType::Buf:
      return ins.at(0);
    case GateType::Not:
      return !ins.at(0);
    case GateType::And: {
      for (bool b : ins) {
        if (!b) return false;
      }
      return true;
    }
    case GateType::Nand: {
      for (bool b : ins) {
        if (!b) return true;
      }
      return false;
    }
    case GateType::Or: {
      for (bool b : ins) {
        if (b) return true;
      }
      return false;
    }
    case GateType::Nor: {
      for (bool b : ins) {
        if (b) return false;
      }
      return true;
    }
    case GateType::Xor: {
      bool acc = false;
      for (bool b : ins) acc = acc != b;
      return acc;
    }
    case GateType::Xnor: {
      bool acc = false;
      for (bool b : ins) acc = acc != b;
      return !acc;
    }
    case GateType::Const0:
      return false;
    case GateType::Const1:
      return true;
    default:
      throw std::logic_error("eval_gate2: not a combinational gate");
  }
}

}  // namespace motsim
