#ifndef MOTSIM_CIRCUIT_BENCH_IO_H
#define MOTSIM_CIRCUIT_BENCH_IO_H

#include <iosfwd>
#include <string>

#include "circuit/netlist.h"

namespace motsim {

/// Reads a circuit in the ISCAS-89 `.bench` format:
///
///   # comment
///   INPUT(G0)
///   OUTPUT(G17)
///   G5 = DFF(G10)
///   G8 = AND(G14, G6)
///
/// Signals may be referenced before definition (sequential feedback).
/// Supported gate keywords: AND, NAND, OR, NOR, NOT, BUF/BUFF, XOR,
/// XNOR, DFF. The returned netlist is finalized.
/// Throws std::invalid_argument with a line number on malformed input.
[[nodiscard]] Netlist parse_bench(std::istream& in,
                                  const std::string& circuit_name);

/// Convenience overload parsing from a string.
[[nodiscard]] Netlist parse_bench_string(const std::string& text,
                                         const std::string& circuit_name);

/// Writes `netlist` in `.bench` format. Round-trips with parse_bench.
void write_bench(std::ostream& out, const Netlist& netlist);

/// Convenience overload producing a string.
[[nodiscard]] std::string write_bench_string(const Netlist& netlist);

}  // namespace motsim

#endif  // MOTSIM_CIRCUIT_BENCH_IO_H
