#ifndef MOTSIM_CIRCUIT_NETLIST_H
#define MOTSIM_CIRCUIT_NETLIST_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace motsim {

/// Gate types of the ISCAS-89 netlist format plus constants.
///
/// `Dff` is a positive-edge D flip-flop; its node value is the present
/// state (Q), its single fanin the next-state input (D). A synchronous
/// sequential circuit in this library is a combinational gate network
/// whose frame inputs are the primary inputs plus the DFF outputs
/// (secondary inputs in the paper's terminology) and whose frame
/// outputs are the primary outputs plus the DFF inputs (secondary
/// outputs).
enum class GateType : std::uint8_t {
  Input,   ///< primary input
  Const0,  ///< constant 0 source
  Const1,  ///< constant 1 source
  Buf,
  Not,
  And,
  Nand,
  Or,
  Nor,
  Xor,
  Xnor,
  Dff,
};

/// Printable mnemonic ("AND", "DFF", ...).
[[nodiscard]] const char* to_cstring(GateType t) noexcept;

/// True for node kinds that act as frame inputs of the combinational
/// network (primary inputs, constants and flip-flop outputs).
[[nodiscard]] constexpr bool is_frame_input(GateType t) noexcept {
  return t == GateType::Input || t == GateType::Const0 ||
         t == GateType::Const1 || t == GateType::Dff;
}

/// Index of a node (gate, input or flip-flop) within a Netlist.
using NodeIndex = std::uint32_t;
inline constexpr NodeIndex kNoNode = 0xFFFFFFFFu;

/// One sink of a net: consuming node and the input pin it enters.
struct FanoutRef {
  NodeIndex node;
  std::uint32_t pin;

  friend bool operator==(const FanoutRef&, const FanoutRef&) = default;
};

/// A single node of the netlist.
struct Gate {
  GateType type;
  std::vector<NodeIndex> fanins;
  std::string name;
};

/// Gate-level synchronous sequential circuit.
///
/// Build with add_input/add_gate/add_dff (+ set_fanins for feedback
/// loops), mark primary outputs, then call finalize() exactly once.
/// finalize() derives fanout lists, combinational levels and a
/// topological order, and validates structure (arity, combinational
/// acyclicity). All simulators require a finalized netlist.
class Netlist {
 public:
  explicit Netlist(std::string name = "netlist");

  // ---- construction --------------------------------------------------

  /// Adds a primary input. Order of calls defines input vector order.
  NodeIndex add_input(const std::string& name);

  /// Adds a gate with the given fanins (may be empty and filled later
  /// with set_fanins, to express feedback).
  NodeIndex add_gate(GateType type, std::vector<NodeIndex> fanins,
                     const std::string& name);

  /// Adds a D flip-flop. `d` may be kNoNode and set later.
  NodeIndex add_dff(NodeIndex d, const std::string& name);

  /// Replaces the fanins of `node` (only before finalize()).
  void set_fanins(NodeIndex node, std::vector<NodeIndex> fanins);

  /// Declares `node`'s output a primary output. Order of calls defines
  /// output vector order. The same node may be marked more than once
  /// (distinct PO positions observing one net).
  void mark_output(NodeIndex node);

  /// Freezes the structure; computes fanouts, levels, topological
  /// order; throws std::invalid_argument on malformed circuits.
  void finalize();

  [[nodiscard]] bool finalized() const noexcept { return finalized_; }

  // ---- basic queries --------------------------------------------------

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  [[nodiscard]] std::size_t node_count() const noexcept {
    return gates_.size();
  }
  [[nodiscard]] const Gate& gate(NodeIndex n) const { return gates_[n]; }
  [[nodiscard]] GateType type(NodeIndex n) const { return gates_[n].type; }

  /// Primary inputs, in declaration order.
  [[nodiscard]] const std::vector<NodeIndex>& inputs() const noexcept {
    return inputs_;
  }
  /// Primary output nets, in declaration order.
  [[nodiscard]] const std::vector<NodeIndex>& outputs() const noexcept {
    return outputs_;
  }
  /// Flip-flops, in declaration order.
  [[nodiscard]] const std::vector<NodeIndex>& dffs() const noexcept {
    return dffs_;
  }

  [[nodiscard]] std::size_t input_count() const noexcept {
    return inputs_.size();
  }
  [[nodiscard]] std::size_t output_count() const noexcept {
    return outputs_.size();
  }
  [[nodiscard]] std::size_t dff_count() const noexcept {
    return dffs_.size();
  }
  /// Number of combinational gates (everything except inputs,
  /// constants and flip-flops).
  [[nodiscard]] std::size_t gate_count() const noexcept;

  /// Node by name; kNoNode if absent.
  [[nodiscard]] NodeIndex find(const std::string& name) const;

  /// True if `node` is marked as (at least one) primary output.
  /// Constant time after finalize(), linear before.
  [[nodiscard]] bool is_output(NodeIndex node) const;

  // ---- derived structure (available after finalize) -------------------

  /// Sinks of `node`'s output net.
  [[nodiscard]] const std::vector<FanoutRef>& fanouts(NodeIndex node) const {
    return fanouts_[node];
  }

  /// Combinational level: frame inputs are level 0; a gate is one
  /// above its deepest fanin.
  [[nodiscard]] std::uint32_t level(NodeIndex node) const {
    return levels_[node];
  }
  [[nodiscard]] std::uint32_t max_level() const noexcept {
    return max_level_;
  }

  /// All nodes in a topological order compatible with `level`
  /// (frame inputs first).
  [[nodiscard]] const std::vector<NodeIndex>& topo_order() const noexcept {
    return topo_;
  }

  /// Position of each flip-flop in dffs() (kNoNode-free inverse map);
  /// 0xFFFFFFFF for non-DFF nodes.
  [[nodiscard]] std::uint32_t dff_position(NodeIndex node) const {
    return dff_pos_[node];
  }

 private:
  void require_not_finalized() const;
  void compute_fanouts();
  void compute_levels_and_topo();

  std::string name_;
  std::vector<Gate> gates_;
  std::vector<NodeIndex> inputs_;
  std::vector<NodeIndex> outputs_;
  std::vector<NodeIndex> dffs_;
  std::unordered_map<std::string, NodeIndex> by_name_;

  std::vector<std::vector<FanoutRef>> fanouts_;
  std::vector<std::uint8_t> is_output_flag_;
  std::vector<std::uint32_t> levels_;
  std::vector<NodeIndex> topo_;
  std::vector<std::uint32_t> dff_pos_;
  std::uint32_t max_level_ = 0;
  bool finalized_ = false;
};

/// Evaluates one gate over bool operands (combinational semantics;
/// must not be called for frame-input kinds).
[[nodiscard]] bool eval_gate2(GateType type, const std::vector<bool>& ins);

}  // namespace motsim

#endif  // MOTSIM_CIRCUIT_NETLIST_H
