#include "circuit/bench_io.h"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "util/strings.h"

namespace motsim {

namespace {

struct PendingGate {
  std::string output;
  std::string keyword;
  std::vector<std::string> operands;
  int line;
};

[[noreturn]] void fail(int line, const std::string& message) {
  throw std::invalid_argument("bench parse error at line " +
                              std::to_string(line) + ": " + message);
}

GateType keyword_to_type(const std::string& kw, int line) {
  const std::string k = to_upper(kw);
  if (k == "AND") return GateType::And;
  if (k == "NAND") return GateType::Nand;
  if (k == "OR") return GateType::Or;
  if (k == "NOR") return GateType::Nor;
  if (k == "NOT" || k == "INV") return GateType::Not;
  if (k == "BUF" || k == "BUFF") return GateType::Buf;
  if (k == "XOR") return GateType::Xor;
  if (k == "XNOR") return GateType::Xnor;
  if (k == "DFF") return GateType::Dff;
  if (k == "CONST0") return GateType::Const0;
  if (k == "CONST1") return GateType::Const1;
  fail(line, "unknown gate keyword '" + kw + "'");
}

}  // namespace

Netlist parse_bench(std::istream& in, const std::string& circuit_name) {
  std::vector<std::string> input_names;
  std::vector<std::string> output_names;
  std::vector<PendingGate> pending;

  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    std::string_view line = trim(raw);
    if (line.empty() || line.front() == '#') continue;

    // INPUT(x) / OUTPUT(x)
    auto parse_decl = [&](std::string_view keyword) -> std::string {
      std::string_view rest = line.substr(keyword.size());
      rest = trim(rest);
      if (rest.empty() || rest.front() != '(' || rest.back() != ')') {
        fail(line_no, "expected '" + std::string(keyword) + "(signal)'");
      }
      return std::string(trim(rest.substr(1, rest.size() - 2)));
    };

    if (starts_with(to_upper(std::string(line)), "INPUT")) {
      input_names.push_back(parse_decl("INPUT"));
      continue;
    }
    if (starts_with(to_upper(std::string(line)), "OUTPUT")) {
      output_names.push_back(parse_decl("OUTPUT"));
      continue;
    }

    // out = KEYWORD(a, b, ...)
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      fail(line_no, "expected assignment or declaration");
    }
    PendingGate g;
    g.output = std::string(trim(line.substr(0, eq)));
    g.line = line_no;
    std::string_view rhs = trim(line.substr(eq + 1));
    const std::size_t open = rhs.find('(');
    const std::size_t close = rhs.rfind(')');
    if (open == std::string_view::npos || close == std::string_view::npos ||
        close < open) {
      fail(line_no, "expected 'signal = GATE(operands)'");
    }
    g.keyword = std::string(trim(rhs.substr(0, open)));
    const std::string_view args = rhs.substr(open + 1, close - open - 1);
    if (!trim(args).empty()) {
      for (std::string& op : split(args, ',')) {
        if (op.empty()) fail(line_no, "empty operand");
        g.operands.push_back(std::move(op));
      }
    }
    if (g.output.empty()) fail(line_no, "empty output signal name");
    pending.push_back(std::move(g));
  }

  // Pass 1: create all nodes so feedback references resolve.
  Netlist nl(circuit_name);
  std::unordered_map<std::string, NodeIndex> nodes;
  for (const std::string& name : input_names) {
    if (nodes.count(name) != 0) {
      throw std::invalid_argument("duplicate signal '" + name + "'");
    }
    nodes.emplace(name, nl.add_input(name));
  }
  for (const PendingGate& g : pending) {
    if (nodes.count(g.output) != 0) {
      fail(g.line, "duplicate signal '" + g.output + "'");
    }
    const GateType type = keyword_to_type(g.keyword, g.line);
    if (type == GateType::Dff) {
      nodes.emplace(g.output, nl.add_dff(kNoNode, g.output));
    } else {
      nodes.emplace(g.output, nl.add_gate(type, {}, g.output));
    }
  }

  // Pass 2: connect fanins.
  for (const PendingGate& g : pending) {
    std::vector<NodeIndex> fanins;
    fanins.reserve(g.operands.size());
    for (const std::string& op : g.operands) {
      const auto it = nodes.find(op);
      if (it == nodes.end()) {
        fail(g.line, "undefined signal '" + op + "'");
      }
      fanins.push_back(it->second);
    }
    nl.set_fanins(nodes.at(g.output), std::move(fanins));
  }

  for (const std::string& name : output_names) {
    const auto it = nodes.find(name);
    if (it == nodes.end()) {
      throw std::invalid_argument("undefined output signal '" + name + "'");
    }
    nl.mark_output(it->second);
  }

  nl.finalize();
  return nl;
}

Netlist parse_bench_string(const std::string& text,
                           const std::string& circuit_name) {
  std::istringstream in(text);
  return parse_bench(in, circuit_name);
}

void write_bench(std::ostream& out, const Netlist& netlist) {
  out << "# " << netlist.name() << "\n";
  for (NodeIndex n : netlist.inputs()) {
    out << "INPUT(" << netlist.gate(n).name << ")\n";
  }
  for (NodeIndex n : netlist.outputs()) {
    out << "OUTPUT(" << netlist.gate(n).name << ")\n";
  }
  for (NodeIndex n = 0; n < netlist.node_count(); ++n) {
    const Gate& g = netlist.gate(n);
    if (g.type == GateType::Input) continue;
    out << g.name << " = " << to_cstring(g.type) << "(";
    for (std::size_t i = 0; i < g.fanins.size(); ++i) {
      if (i != 0) out << ", ";
      out << netlist.gate(g.fanins[i]).name;
    }
    out << ")\n";
  }
}

std::string write_bench_string(const Netlist& netlist) {
  std::ostringstream os;
  write_bench(os, netlist);
  return os.str();
}

}  // namespace motsim
