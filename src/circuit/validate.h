#ifndef MOTSIM_CIRCUIT_VALIDATE_H
#define MOTSIM_CIRCUIT_VALIDATE_H

#include <string>
#include <vector>

#include "circuit/netlist.h"

namespace motsim {

/// Compatibility shim over the diagnostics framework in src/analysis/.
///
/// This used to be the structural lint pass; run_lint (analysis/lint.h)
/// absorbed and generalized it. The struct remains for the synthetic
/// circuit generator's self-check and older tests — new code should
/// call run_lint and consume DiagnosticReport directly.
struct ValidationReport {
  /// Nets with no sink that are not primary outputs (dead logic;
  /// lint.dangling-net and lint.floating-input findings).
  std::vector<NodeIndex> dangling_nets;
  /// Nodes from which no primary output or flip-flop is reachable
  /// (lint.unobservable findings).
  std::vector<NodeIndex> unobservable_nodes;
  /// Gates fed twice by the same net (lint.duplicate-fanin findings;
  /// legal but usually a generator bug, constant-producing for
  /// XOR/XNOR).
  std::vector<NodeIndex> duplicate_fanin_gates;
  /// Human-readable one-line summaries of all findings.
  std::vector<std::string> messages;

  /// True when every finding vector is empty. (Derived from the
  /// vectors, not from `messages`, so callers that filter or clear the
  /// messages keep a truthful verdict.)
  [[nodiscard]] bool clean() const noexcept {
    return dangling_nets.empty() && unobservable_nodes.empty() &&
           duplicate_fanin_gates.empty();
  }
};

/// Runs run_lint and projects the findings this legacy surface knows
/// about into a ValidationReport. Findings without a legacy vector
/// (cycles, undriven pins, constant gates) appear in `messages` only.
[[nodiscard]] ValidationReport validate(const Netlist& netlist);

}  // namespace motsim

#endif  // MOTSIM_CIRCUIT_VALIDATE_H
