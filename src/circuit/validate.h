#ifndef MOTSIM_CIRCUIT_VALIDATE_H
#define MOTSIM_CIRCUIT_VALIDATE_H

#include <string>
#include <vector>

#include "circuit/netlist.h"

namespace motsim {

/// Results of the structural lint pass.
struct ValidationReport {
  /// Nets with no sink that are not primary outputs (dead logic).
  std::vector<NodeIndex> dangling_nets;
  /// Nodes from which no primary output or flip-flop is reachable.
  std::vector<NodeIndex> unobservable_nodes;
  /// Gates fed twice by the same net (legal but usually a generator
  /// bug; constant-producing for XOR/XNOR).
  std::vector<NodeIndex> duplicate_fanin_gates;
  /// Human-readable one-line summaries of all findings.
  std::vector<std::string> messages;

  [[nodiscard]] bool clean() const noexcept { return messages.empty(); }
};

/// Structural lint beyond Netlist::finalize()'s hard checks: detects
/// dead logic, unobservable cones and duplicate fanins. Used by the
/// synthetic circuit generator's self-check and by tests.
[[nodiscard]] ValidationReport validate(const Netlist& netlist);

}  // namespace motsim

#endif  // MOTSIM_CIRCUIT_VALIDATE_H
