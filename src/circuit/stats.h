#ifndef MOTSIM_CIRCUIT_STATS_H
#define MOTSIM_CIRCUIT_STATS_H

#include <array>
#include <cstddef>
#include <string>

#include "circuit/netlist.h"

namespace motsim {

/// Structural statistics of a netlist — the numbers a user wants to
/// see before deciding between the three-valued, symbolic and hybrid
/// simulators (state width drives OBDD cost, depth drives event-driven
/// cost, fanout drives the branch-fault population).
struct CircuitStats {
  std::size_t inputs = 0;
  std::size_t outputs = 0;
  std::size_t dffs = 0;
  std::size_t gates = 0;
  /// Per-gate-kind counts, indexed by GateType.
  std::array<std::size_t, 12> by_type{};
  /// Combinational depth (maximum level).
  std::size_t depth = 0;
  std::size_t max_fanout = 0;
  double avg_fanout = 0.0;
  /// Nets with more than one sink (the stems with distinct branch
  /// faults).
  std::size_t fanout_stems = 0;
  /// Total fault sites (stems + branches) before collapsing.
  std::size_t fault_sites = 0;

  /// SCOAP testability summary (filled by attach_testability in
  /// analysis/testability.h; of() leaves it absent so circuit/ stays
  /// independent of the analysis passes).
  bool has_scoap = false;
  std::uint32_t scoap_max_cc = 0;       ///< worst finite controllability
  std::uint32_t scoap_max_co = 0;       ///< worst finite observability
  std::uint32_t scoap_max_seq_depth = 0;
  std::size_t scoap_blocked_sites = 0;  ///< sites with CO = infinity

  [[nodiscard]] static CircuitStats of(const Netlist& netlist);

  /// Multi-line human-readable report.
  [[nodiscard]] std::string to_string() const;
};

}  // namespace motsim

#endif  // MOTSIM_CIRCUIT_STATS_H
