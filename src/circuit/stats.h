#ifndef MOTSIM_CIRCUIT_STATS_H
#define MOTSIM_CIRCUIT_STATS_H

#include <array>
#include <cstddef>
#include <string>

#include "circuit/netlist.h"

namespace motsim {

/// Structural statistics of a netlist — the numbers a user wants to
/// see before deciding between the three-valued, symbolic and hybrid
/// simulators (state width drives OBDD cost, depth drives event-driven
/// cost, fanout drives the branch-fault population).
struct CircuitStats {
  std::size_t inputs = 0;
  std::size_t outputs = 0;
  std::size_t dffs = 0;
  std::size_t gates = 0;
  /// Per-gate-kind counts, indexed by GateType.
  std::array<std::size_t, 12> by_type{};
  /// Combinational depth (maximum level).
  std::size_t depth = 0;
  std::size_t max_fanout = 0;
  double avg_fanout = 0.0;
  /// Nets with more than one sink (the stems with distinct branch
  /// faults).
  std::size_t fanout_stems = 0;
  /// Total fault sites (stems + branches) before collapsing.
  std::size_t fault_sites = 0;

  /// SCOAP testability summary (filled by attach_testability in
  /// analysis/testability.h; of() leaves it absent so circuit/ stays
  /// independent of the analysis passes).
  bool has_scoap = false;
  std::uint32_t scoap_max_cc = 0;       ///< worst finite controllability
  std::uint32_t scoap_max_co = 0;       ///< worst finite observability
  std::uint32_t scoap_max_seq_depth = 0;
  std::size_t scoap_blocked_sites = 0;  ///< sites with CO = infinity

  /// S-graph summary (filled by attach_sgraph in analysis/sgraph.h;
  /// of() leaves it absent so circuit/ stays independent of the
  /// analysis passes).
  bool has_sgraph = false;
  std::size_t sgraph_sccs = 0;            ///< total s-graph SCCs
  std::size_t sgraph_nontrivial_sccs = 0; ///< size >= 2 or self-loop
  std::size_t sgraph_acyclic_ffs = 0;     ///< FFs with finite init-depth
  std::uint32_t sgraph_max_init_depth = 0;  ///< max finite init-depth
  std::size_t sgraph_feedback_estimate = 0; ///< greedy feedback-set size

  /// Fault-collapse summary (filled by attach_collapse in
  /// faults/collapse.h; of() leaves it absent so circuit/ stays
  /// independent of the fault layer).
  bool has_collapse = false;
  std::size_t uncollapsed_faults = 0;   ///< 2 * fault_sites
  std::size_t equivalence_classes = 0;  ///< equivalence-collapsed |F|
  /// Classes left after additionally dropping every class that
  /// dominates a fault of another class (accounting only; verdicts
  /// never transfer along dominance — see DominanceCollapse).
  std::size_t dominance_classes = 0;

  [[nodiscard]] static CircuitStats of(const Netlist& netlist);

  /// Multi-line human-readable report.
  [[nodiscard]] std::string to_string() const;
};

}  // namespace motsim

#endif  // MOTSIM_CIRCUIT_STATS_H
