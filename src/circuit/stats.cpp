#include "circuit/stats.h"

#include <sstream>
#include <stdexcept>

namespace motsim {

CircuitStats CircuitStats::of(const Netlist& nl) {
  if (!nl.finalized()) {
    throw std::logic_error("CircuitStats requires a finalized netlist");
  }
  CircuitStats s;
  s.inputs = nl.input_count();
  s.outputs = nl.output_count();
  s.dffs = nl.dff_count();
  s.gates = nl.gate_count();
  s.depth = nl.max_level();

  std::size_t total_fanout = 0;
  std::size_t branch_sites = 0;
  for (NodeIndex n = 0; n < nl.node_count(); ++n) {
    s.by_type[static_cast<std::size_t>(nl.type(n))] += 1;
    const std::size_t fanout = nl.fanouts(n).size();
    total_fanout += fanout;
    s.max_fanout = std::max(s.max_fanout, fanout);
    if (fanout > 1) ++s.fanout_stems;
    branch_sites += nl.gate(n).fanins.size();
  }
  s.avg_fanout = nl.node_count() == 0
                     ? 0.0
                     : static_cast<double>(total_fanout) /
                           static_cast<double>(nl.node_count());
  s.fault_sites = nl.node_count() + branch_sites;
  return s;
}

std::string CircuitStats::to_string() const {
  std::ostringstream os;
  os << "inputs " << inputs << ", outputs " << outputs << ", flip-flops "
     << dffs << ", gates " << gates << "\n";
  os << "depth " << depth << ", max fanout " << max_fanout
     << ", avg fanout ";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", avg_fanout);
  os << buf << ", fanout stems " << fanout_stems << "\n";
  os << "fault sites " << fault_sites << " (uncollapsed faults "
     << 2 * fault_sites << ")\n";
  static const GateType kKinds[] = {
      GateType::And, GateType::Nand, GateType::Or,  GateType::Nor,
      GateType::Not, GateType::Buf,  GateType::Xor, GateType::Xnor};
  os << "gate mix:";
  for (GateType t : kKinds) {
    const std::size_t count = by_type[static_cast<std::size_t>(t)];
    if (count != 0) os << " " << to_cstring(t) << "=" << count;
  }
  os << "\n";
  if (has_collapse) {
    os << "collapse: equivalence classes " << equivalence_classes
       << ", dominance classes " << dominance_classes << " (of "
       << uncollapsed_faults << " uncollapsed)\n";
  }
  if (has_scoap) {
    os << "scoap: max CC " << scoap_max_cc << ", max CO " << scoap_max_co
       << ", max seq depth " << scoap_max_seq_depth << ", blocked sites "
       << scoap_blocked_sites << "\n";
  }
  if (has_sgraph) {
    os << "sgraph: SCCs " << sgraph_sccs << " (nontrivial "
       << sgraph_nontrivial_sccs << "), acyclic FFs " << sgraph_acyclic_ffs
       << ", max init depth " << sgraph_max_init_depth
       << ", feedback estimate " << sgraph_feedback_estimate << "\n";
  }
  return os.str();
}

}  // namespace motsim
