#include "tpg/mot_tpg.h"

#include "util/rng.h"

namespace motsim {

namespace {

/// Scores a sequence: faults detected under the strategy (three-valued
/// detections count too — the hybrid simulator's fallback windows and
/// the X01 phase are part of the paper's protocol).
struct Score {
  std::size_t detected = 0;
  std::vector<FaultStatus> status;
};

Score score_sequence(const Netlist& nl, const std::vector<Fault>& faults,
                     const TestSequence& seq, const MotTpgConfig& cfg) {
  Score s;
  if (seq.empty()) {
    s.status.assign(faults.size(), FaultStatus::Undetected);
    return s;
  }
  HybridConfig hc;
  hc.strategy = cfg.strategy;
  hc.node_limit = cfg.node_limit;
  HybridFaultSim sim(nl, faults, hc);
  const HybridResult r = sim.run(seq);
  s.detected = r.detected_count;
  s.status = r.status;
  return s;
}

}  // namespace

MotTpgResult generate_mot_sequence(const Netlist& netlist,
                                   const std::vector<Fault>& faults,
                                   const MotTpgConfig& config) {
  Rng rng(config.seed);

  MotTpgResult result;
  Score best = score_sequence(netlist, faults, result.sequence, config);

  std::size_t stale = 0;
  while (stale < config.stale_rounds &&
         result.sequence.size() < config.max_length &&
         best.detected < faults.size()) {
    ++result.rounds;

    TestSequence best_candidate;
    Score best_score = best;
    for (std::size_t c = 0; c < config.candidates_per_round; ++c) {
      Rng seg_rng = rng.fork();
      TestSequence candidate = result.sequence;
      TestSequence segment =
          random_sequence(netlist, config.segment_length, seg_rng);
      for (auto& vec : segment) candidate.push_back(std::move(vec));

      Score s = score_sequence(netlist, faults, candidate, config);
      if (s.detected > best_score.detected) {
        best_score = std::move(s);
        best_candidate = std::move(candidate);
      }
    }

    if (!best_candidate.empty()) {
      result.sequence = std::move(best_candidate);
      best = std::move(best_score);
      stale = 0;
    } else {
      ++stale;
    }
  }

  result.detected = best.detected;
  result.status = std::move(best.status);
  return result;
}

}  // namespace motsim
