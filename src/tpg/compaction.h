#ifndef MOTSIM_TPG_COMPACTION_H
#define MOTSIM_TPG_COMPACTION_H

#include <cstdint>

#include "faults/fault.h"
#include "sim3/fault_simulator.h"
#include "tpg/sequences.h"

namespace motsim {

/// Parameters of the greedy sequence compactor.
struct CompactionConfig {
  /// Candidate segment length in frames.
  std::size_t segment_length = 8;
  /// Candidates tried per accepted position before giving up.
  std::size_t candidates_per_round = 4;
  /// Stop after this many consecutive rounds without a new detection.
  std::size_t stale_rounds = 6;
  /// Hard cap on the produced sequence length.
  std::size_t max_length = 4096;
  /// Minimum length: if the greedy phase stalls early the sequence is
  /// padded with random segments (they keep the committed machine
  /// state moving and may still detect faults downstream).
  std::size_t min_length = 0;
  std::uint64_t seed = 1;
  /// Fault-simulation backend for the trial segments; the produced
  /// sequence is identical on every backend (bit-identity contract).
  Sim3Backend sim3_backend = default_sim3_backend();
};

/// Outcome of the compactor.
struct CompactionResult {
  TestSequence sequence;
  std::size_t detected_faults = 0;  ///< under three-valued SOT
  std::size_t rounds = 0;
};

/// Fault-simulation-guided greedy sequence generation.
///
/// Stand-in for the deterministic (ATPG/HOPE) sequences of the paper's
/// Table III: random candidate segments are three-valued
/// fault-simulated incrementally, and a segment is appended only if it
/// detects at least one previously undetected fault. The result is a
/// short, targeted sequence with a much higher per-vector yield than a
/// raw random sequence — the property Table III exercises.
[[nodiscard]] CompactionResult generate_deterministic_sequence(
    const Netlist& netlist, const std::vector<Fault>& faults,
    const CompactionConfig& config = {});

}  // namespace motsim

#endif  // MOTSIM_TPG_COMPACTION_H
