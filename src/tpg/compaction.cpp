#include "tpg/compaction.h"

#include "sim3/fault_simulator.h"

namespace motsim {

CompactionResult generate_deterministic_sequence(
    const Netlist& netlist, const std::vector<Fault>& faults,
    const CompactionConfig& config) {
  Rng rng(config.seed);
  const std::unique_ptr<FaultSimulator3> sim =
      make_fault_simulator3(config.sim3_backend, netlist, faults);

  // Committed simulation state: fault-free machine state + surviving
  // fault indices with their state divergences, advanced only when a
  // segment is accepted. Trials open a fresh window session from this
  // snapshot, so rejected candidates leave it untouched.
  std::vector<Val3> good_state(netlist.dff_count(), Val3::X);
  std::vector<std::size_t> live(faults.size());
  for (std::size_t i = 0; i < faults.size(); ++i) live[i] = i;
  std::vector<StateDiff3> diffs(faults.size());

  CompactionResult result;
  std::size_t stale = 0;

  // Simulates `segment` in a window opened from the committed state;
  // returns the number of detections. On `commit`, the committed state
  // is replaced by the window's final state.
  auto trial = [&](const TestSequence& segment, bool commit_always) {
    sim->begin_window(good_state, live, diffs);
    std::size_t detected = 0;
    for (const auto& vec : segment) {
      for (const std::uint32_t pos : sim->step_window(vec)) {
        ++detected;
        sim->drop_window_fault(pos);
      }
      if (sim->window_live() == 0) break;
    }
    if (detected != 0 || commit_always) {
      std::vector<std::size_t> survivors;
      std::vector<StateDiff3> survivor_diffs;
      survivors.reserve(sim->window_live());
      survivor_diffs.reserve(sim->window_live());
      for (std::uint32_t pos = 0; pos < live.size(); ++pos) {
        if (!sim->window_fault_alive(pos)) continue;
        survivors.push_back(live[pos]);
        survivor_diffs.push_back(sim->window_diff(pos));
      }
      good_state = sim->window_state();
      live = std::move(survivors);
      diffs = std::move(survivor_diffs);
    }
    sim->end_window();
    return detected;
  };

  while (stale < config.stale_rounds && !live.empty() &&
         result.sequence.size() < config.max_length) {
    ++result.rounds;

    // Try a few candidate segments from the committed state; keep the
    // first that detects something new.
    bool accepted = false;
    for (std::size_t c = 0; c < config.candidates_per_round && !accepted;
         ++c) {
      Rng seg_rng = rng.fork();
      TestSequence segment =
          random_sequence(netlist, config.segment_length, seg_rng);
      const std::size_t detected = trial(segment, /*commit_always=*/false);
      if (detected != 0) {
        result.detected_faults += detected;
        for (auto& vec : segment) result.sequence.push_back(std::move(vec));
        accepted = true;
      }
    }

    stale = accepted ? 0 : stale + 1;
  }

  // Optional padding up to min_length: append random segments,
  // committing their simulation effects (and any detections).
  while (result.sequence.size() < config.min_length && !live.empty() &&
         result.sequence.size() < config.max_length) {
    Rng seg_rng = rng.fork();
    TestSequence segment =
        random_sequence(netlist, config.segment_length, seg_rng);
    result.detected_faults += trial(segment, /*commit_always=*/true);
    for (auto& vec : segment) result.sequence.push_back(std::move(vec));
  }

  return result;
}

}  // namespace motsim
