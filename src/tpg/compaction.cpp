#include "tpg/compaction.h"

#include "sim3/fault_sim3.h"
#include "sim3/good_sim3.h"

namespace motsim {

CompactionResult generate_deterministic_sequence(
    const Netlist& netlist, const std::vector<Fault>& faults,
    const CompactionConfig& config) {
  Rng rng(config.seed);
  FaultPropagator3 propagator(netlist);

  // Committed simulation state: fault-free machine + per-live-fault
  // state divergence, advanced only when a segment is accepted.
  GoodSim3 good(netlist);
  struct Live {
    std::size_t index;
    StateDiff3 diff;
  };
  std::vector<Live> live;
  live.reserve(faults.size());
  for (std::size_t i = 0; i < faults.size(); ++i) live.push_back({i, {}});

  CompactionResult result;
  std::size_t stale = 0;

  while (stale < config.stale_rounds && !live.empty() &&
         result.sequence.size() < config.max_length) {
    ++result.rounds;

    // Try a few candidate segments from the committed state; keep the
    // first that detects something new.
    bool accepted = false;
    for (std::size_t c = 0; c < config.candidates_per_round && !accepted;
         ++c) {
      Rng seg_rng = rng.fork();
      TestSequence segment =
          random_sequence(netlist, config.segment_length, seg_rng);

      // Trial simulation on copies.
      GoodSim3 trial_good = good;
      std::vector<Live> trial_live = live;
      std::vector<std::size_t> detected;
      for (const auto& vec : segment) {
        trial_good.step(vec);
        const std::vector<Val3>& values = trial_good.values();
        const std::vector<Val3>& next = trial_good.state();
        std::size_t keep = 0;
        for (std::size_t i = 0; i < trial_live.size(); ++i) {
          if (propagator.step(faults[trial_live[i].index],
                              trial_live[i].diff, values, next)) {
            detected.push_back(trial_live[i].index);
          } else {
            if (keep != i) trial_live[keep] = std::move(trial_live[i]);
            ++keep;
          }
        }
        trial_live.resize(keep);
      }

      if (!detected.empty()) {
        // Commit.
        good = std::move(trial_good);
        live = std::move(trial_live);
        result.detected_faults += detected.size();
        for (auto& vec : segment) result.sequence.push_back(std::move(vec));
        accepted = true;
      }
    }

    stale = accepted ? 0 : stale + 1;
  }

  // Optional padding up to min_length: append random segments,
  // committing their simulation effects (and any detections).
  while (result.sequence.size() < config.min_length && !live.empty() &&
         result.sequence.size() < config.max_length) {
    Rng seg_rng = rng.fork();
    TestSequence segment =
        random_sequence(netlist, config.segment_length, seg_rng);
    for (const auto& vec : segment) {
      good.step(vec);
      const std::vector<Val3>& values = good.values();
      const std::vector<Val3>& next = good.state();
      std::size_t keep = 0;
      for (std::size_t i = 0; i < live.size(); ++i) {
        if (propagator.step(faults[live[i].index], live[i].diff, values,
                            next)) {
          ++result.detected_faults;
        } else {
          if (keep != i) live[keep] = std::move(live[i]);
          ++keep;
        }
      }
      live.resize(keep);
    }
    for (auto& vec : segment) result.sequence.push_back(std::move(vec));
  }

  return result;
}

}  // namespace motsim
