#include "tpg/sequence_io.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/strings.h"

namespace motsim {

TestSequence read_sequence(std::istream& in) {
  TestSequence seq;
  std::string raw;
  int line_no = 0;
  std::size_t width = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    std::string_view line = trim(raw);
    const std::size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = trim(line.substr(0, hash));
    if (line.empty()) continue;

    std::vector<Val3> frame;
    frame.reserve(line.size());
    for (char c : line) {
      try {
        frame.push_back(val3_from_char(c));
      } catch (const std::invalid_argument&) {
        throw std::invalid_argument(
            "sequence parse error at line " + std::to_string(line_no) +
            ": unexpected character '" + c + "'");
      }
    }
    if (width == 0) {
      width = frame.size();
    } else if (frame.size() != width) {
      throw std::invalid_argument(
          "sequence parse error at line " + std::to_string(line_no) +
          ": frame width " + std::to_string(frame.size()) +
          " does not match " + std::to_string(width));
    }
    seq.push_back(std::move(frame));
  }
  return seq;
}

TestSequence read_sequence_string(const std::string& text) {
  std::istringstream in(text);
  return read_sequence(in);
}

void write_sequence(std::ostream& out, const TestSequence& sequence,
                    const std::string& comment) {
  if (!comment.empty()) out << "# " << comment << "\n";
  for (const auto& frame : sequence) {
    for (Val3 v : frame) out << to_char(v);
    out << "\n";
  }
}

std::string write_sequence_string(const TestSequence& sequence,
                                  const std::string& comment) {
  std::ostringstream os;
  write_sequence(os, sequence, comment);
  return os.str();
}

Expected<TestSequence, std::string> read_sequence_file(
    const std::string& path) {
  using Err = Unexpected<std::string>;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Err{"cannot open sequence file " + path};
  }
  try {
    TestSequence seq = read_sequence(in);
    if (in.bad()) {
      return Err{"I/O error reading sequence file " + path};
    }
    return seq;
  } catch (const std::exception& e) {
    return Err{path + ": " + e.what()};
  }
}

Expected<bool, std::string> write_sequence_file(const std::string& path,
                                                const TestSequence& sequence,
                                                const std::string& comment) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Unexpected<std::string>{"cannot open " + path + " for writing"};
  }
  write_sequence(out, sequence, comment);
  out.flush();
  if (!out) {
    return Unexpected<std::string>{"I/O error writing " + path};
  }
  return true;
}

}  // namespace motsim
