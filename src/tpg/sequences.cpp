#include "tpg/sequences.h"

namespace motsim {

TestSequence random_sequence(const Netlist& netlist, std::size_t length,
                             Rng& rng) {
  TestSequence seq(length);
  for (auto& frame : seq) {
    frame.resize(netlist.input_count());
    for (Val3& v : frame) v = to_val3(rng.flip());
  }
  return seq;
}

TestSequence sequence_from_strings(const std::vector<std::string>& rows) {
  TestSequence seq;
  seq.reserve(rows.size());
  for (const std::string& row : rows) {
    std::vector<Val3> frame;
    frame.reserve(row.size());
    for (char c : row) frame.push_back(val3_from_char(c));
    seq.push_back(std::move(frame));
  }
  return seq;
}

}  // namespace motsim
