#ifndef MOTSIM_TPG_MOT_TPG_H
#define MOTSIM_TPG_MOT_TPG_H

#include <cstdint>

#include "core/hybrid_sim.h"
#include "faults/fault.h"
#include "tpg/sequences.h"

namespace motsim {

/// Parameters of the MOT-guided greedy test generator.
struct MotTpgConfig {
  /// Observation strategy judging candidate segments.
  Strategy strategy = Strategy::Mot;
  /// Candidate segment length in frames.
  std::size_t segment_length = 8;
  /// Candidates tried per round; the best one (most new detections) is
  /// kept.
  std::size_t candidates_per_round = 3;
  /// Stop after this many consecutive rounds without improvement.
  std::size_t stale_rounds = 3;
  /// Hard cap on the produced sequence length.
  std::size_t max_length = 256;
  /// OBDD space limit of the judging hybrid simulator.
  std::size_t node_limit = 30000;
  std::uint64_t seed = 1;
};

/// Outcome of the generator.
struct MotTpgResult {
  TestSequence sequence;
  /// Faults the final sequence detects under the configured strategy
  /// (full pipeline verdict: X01 plus symbolic).
  std::size_t detected = 0;
  std::size_t rounds = 0;
  /// Final classification per fault.
  std::vector<FaultStatus> status;
};

/// MOT-guided greedy test generation — the paper's stated future work
/// ("MOT-based test generation should be supported by a MOT-based
/// fault simulation", Section I): candidate random segments are scored
/// by the *symbolic* fault simulator under the chosen observation
/// strategy, so segments are kept exactly when they improve MOT (or
/// rMOT) coverage — including faults that are three-valued
/// undetectable and therefore invisible to conventional
/// simulation-guided generators like the compactor in
/// tpg/compaction.h.
///
/// Complexity note: symbolic fault-simulation state (the detection
/// functions D~) cannot be checkpointed across candidate extensions,
/// so every candidate is scored by re-simulating the full prefix —
/// O(L^2) in the final length L. Intended for generator-scale
/// circuits, not the Table-I giants.
[[nodiscard]] MotTpgResult generate_mot_sequence(
    const Netlist& netlist, const std::vector<Fault>& faults,
    const MotTpgConfig& config = {});

}  // namespace motsim

#endif  // MOTSIM_TPG_MOT_TPG_H
