#ifndef MOTSIM_TPG_SEQUENCES_H
#define MOTSIM_TPG_SEQUENCES_H

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/netlist.h"
#include "logic/val3.h"
#include "util/rng.h"

namespace motsim {

/// A test sequence: one fully specified input vector per frame.
using TestSequence = std::vector<std::vector<Val3>>;

/// Uniform random binary sequence of `length` vectors for `netlist`'s
/// inputs — the workload of the paper's Tables I and II ("random test
/// sequences of length 200").
[[nodiscard]] TestSequence random_sequence(const Netlist& netlist,
                                           std::size_t length, Rng& rng);

/// Parses rows like {"101", "011"} into a sequence (row = frame;
/// characters 0/1/X). Used by tests and examples.
[[nodiscard]] TestSequence sequence_from_strings(
    const std::vector<std::string>& rows);

}  // namespace motsim

#endif  // MOTSIM_TPG_SEQUENCES_H
